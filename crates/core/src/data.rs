//! Dataset construction for LTFB experiments: deterministic synthetic JAG
//! samples packed into (x, y) matrices, partitioned into per-trainer
//! silos, with disjoint validation and per-trainer tournament sets.

use crate::config::{LtfbConfig, PartitionScheme};
use ltfb_gan::batch_from_samples;
use ltfb_jag::{sample_by_id, JagConfig, Sample};
use ltfb_nn::InMemoryDataset;
use ltfb_tensor::Matrix;

/// Design-space offset separating validation ids from training ids
/// (mirrors the paper's disjoint 10M train / 1M validation split).
pub const VAL_DESIGN_OFFSET: u64 = 1 << 40;

/// Materialise samples `start..start+count` (training design region).
pub fn train_samples(cfg: &JagConfig, start: u64, count: u64) -> Vec<Sample> {
    (0..count)
        .map(|i| sample_by_id(cfg, 0, start + i))
        .collect()
}

/// Materialise validation samples `start..start+count` (disjoint region).
pub fn val_samples(cfg: &JagConfig, start: u64, count: u64) -> Vec<Sample> {
    (0..count)
        .map(|i| sample_by_id(cfg, VAL_DESIGN_OFFSET, start + i))
        .collect()
}

/// Pack samples into an `InMemoryDataset` of (x, y) rows.
pub fn pack(cfg: &ltfb_gan::CycleGanConfig, samples: &[Sample]) -> InMemoryDataset {
    let refs: Vec<&Sample> = samples.iter().collect();
    let (x, y) = batch_from_samples(cfg, &refs);
    InMemoryDataset::new(x, y)
}

/// Everything one trainer needs: its training silo, the global validation
/// set, and its local tournament set.
pub struct TrainerData {
    /// This trainer's training partition.
    pub train: InMemoryDataset,
    /// The *global* validation set (quality is always judged globally).
    pub val: InMemoryDataset,
    /// The trainer-local tournament set.
    pub tournament: InMemoryDataset,
}

/// Build the data for trainer `t` of `cfg.n_trainers`.
///
/// * training: contiguous `1/K` slice of the training design range;
/// * validation: the same global set for every trainer;
/// * tournament: a per-trainer slice of a *separate* validation region,
///   so tournament decisions and reported quality never share samples.
pub fn build_trainer_data(cfg: &LtfbConfig, t: usize) -> TrainerData {
    assert!(t < cfg.n_trainers);
    let part = cfg.partition_len();
    let ids = partition_ids(cfg, t);
    assert_eq!(ids.len() as u64, part);
    let train: Vec<Sample> = ids
        .iter()
        .map(|&id| sample_by_id(&cfg.gan.jag, 0, id))
        .collect();
    let val = val_samples(&cfg.gan.jag, 0, cfg.val_samples);
    // Tournament region starts after the validation samples.
    let tstart = cfg.val_samples + t as u64 * cfg.tournament_samples;
    let tournament = val_samples(&cfg.gan.jag, tstart, cfg.tournament_samples);
    TrainerData {
        train: pack(&cfg.gan, &train),
        val: pack(&cfg.gan, &val),
        tournament: pack(&cfg.gan, &tournament),
    }
}

/// Global training sample ids belonging to trainer `t`'s silo.
///
/// `ByIndex` slices the design sequence directly; `ByRegion` first sorts
/// all training ids by the primary design axis (laser drive), so each
/// silo is a contiguous *region* of parameter space — the realistic,
/// hard case the paper's Fig. 13 exercises.
pub fn partition_ids(cfg: &LtfbConfig, t: usize) -> Vec<u64> {
    let part = cfg.partition_len();
    match cfg.partition {
        PartitionScheme::ByIndex => (t as u64 * part..(t as u64 + 1) * part).collect(),
        PartitionScheme::ByRegion => {
            let mut ids: Vec<u64> = (0..cfg.partition_len() * cfg.n_trainers as u64).collect();
            ids.sort_by(|&a, &b| {
                let pa = ltfb_jag::r2_point(a)[0];
                let pb = ltfb_jag::r2_point(b)[0];
                pa.total_cmp(&pb).then(a.cmp(&b))
            });
            ids[(t as u64 * part) as usize..((t as u64 + 1) * part) as usize].to_vec()
        }
    }
}

/// The dataset the shared autoencoder is pre-trained on: a strided
/// subsample of the *global* training design range ("a multimodal
/// autoencoder of all outputs", trained a priori), capped for laptop
/// runs.
pub fn ae_dataset(cfg: &LtfbConfig) -> InMemoryDataset {
    let count = cfg.train_samples.min(512);
    let stride = (cfg.train_samples / count).max(1);
    let samples: Vec<Sample> = (0..count)
        .map(|i| sample_by_id(&cfg.gan.jag, 0, i * stride))
        .collect();
    pack(&cfg.gan, &samples)
}

/// Evaluate helper: split a dataset into (x, y) references.
pub fn xy(ds: &InMemoryDataset) -> (&Matrix, &Matrix) {
    (&ds.inputs, &ds.targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_disjoint_across_trainers() {
        let cfg = LtfbConfig::small(4);
        let d0 = build_trainer_data(&cfg, 0);
        let d1 = build_trainer_data(&cfg, 1);
        assert_eq!(d0.train.len() as u64, cfg.partition_len());
        assert_ne!(
            d0.train.inputs.row(0),
            d1.train.inputs.row(0),
            "trainers must see different silos"
        );
        // Validation is shared.
        assert_eq!(d0.val.inputs.as_slice(), d1.val.inputs.as_slice());
        // Tournament sets are per-trainer.
        assert_ne!(
            d0.tournament.inputs.as_slice(),
            d1.tournament.inputs.as_slice()
        );
    }

    #[test]
    fn train_and_val_design_regions_disjoint() {
        let cfg = LtfbConfig::small(2);
        let tr = train_samples(&cfg.gan.jag, 0, 10);
        let va = val_samples(&cfg.gan.jag, 0, 10);
        for (a, b) in tr.iter().zip(&va) {
            assert_ne!(
                a.params, b.params,
                "validation must not repeat training inputs"
            );
        }
    }

    #[test]
    fn pack_dims_match_config() {
        let cfg = LtfbConfig::small(2);
        let d = build_trainer_data(&cfg, 0);
        assert_eq!(d.train.inputs.cols(), 5);
        assert_eq!(d.train.targets.cols(), cfg.gan.y_dim());
        assert_eq!(d.val.len() as u64, cfg.val_samples);
        assert_eq!(d.tournament.len() as u64, cfg.tournament_samples);
    }
}
