//! Checkpoint/restart integration tests.

use ltfb_core::{
    load_population, resume_ltfb_serial, run_ltfb_partial, run_ltfb_serial, save_population,
    CheckpointError, LtfbConfig,
};
use ltfb_jag::{cleanup_dataset_dir, temp_dataset_dir};

fn cfg(k: usize) -> LtfbConfig {
    let mut c = LtfbConfig::small(k);
    c.train_samples = 256;
    c.val_samples = 64;
    c.tournament_samples = 32;
    c.ae_steps = 30;
    c.steps = 40;
    c.exchange_interval = 10;
    c.eval_interval = 20;
    c
}

#[test]
fn save_load_round_trips_population_state() {
    let c = cfg(2);
    let trainers = run_ltfb_partial(&c, 20);
    let dir = temp_dataset_dir("ckpt-rt");
    let path = dir.join("pop.ltcp");
    save_population(&path, &c, &trainers).unwrap();
    let restored = load_population(&path, &c).unwrap();
    assert_eq!(restored.len(), trainers.len());
    for (orig, rest) in trainers.iter().zip(&restored) {
        assert_eq!(orig.id, rest.id);
        assert_eq!(orig.step, rest.step);
        assert_eq!(orig.wins, rest.wins);
        assert_eq!(orig.losses, rest.losses);
        assert_eq!(orig.history.points(), rest.history.points());
        assert_eq!(
            orig.gan.generator_fingerprint(),
            rest.gan.generator_fingerprint(),
            "generator weights must round-trip"
        );
        for (a, b) in orig.gan.networks().iter().zip(rest.gan.networks().iter()) {
            assert_eq!(a.weights_fingerprint(), b.weights_fingerprint());
        }
    }
    cleanup_dataset_dir(&dir);
}

#[test]
fn resumed_run_tracks_uninterrupted_run() {
    // Interrupt at step 20 of 40, checkpoint, resume. Optimizer moments
    // restart from zero (as in LBANN's default restart), so the resumed
    // trajectory is close but not bit-identical; histories and counters
    // up to the checkpoint are identical, and the resumed run must still
    // converge comparably.
    let c = cfg(2);
    let reference = run_ltfb_serial(&c);

    let trainers = run_ltfb_partial(&c, 20);
    let dir = temp_dataset_dir("ckpt-resume");
    let path = dir.join("pop.ltcp");
    save_population(&path, &c, &trainers).unwrap();
    let resumed = resume_ltfb_serial(&path, &c).unwrap();

    // History prefix (steps <= 20) identical to the reference run.
    for (hr, hs) in reference.histories.iter().zip(&resumed.histories) {
        let pre_ref: Vec<_> = hr.points().iter().filter(|&&(s, _)| s <= 20).collect();
        let pre_res: Vec<_> = hs.points().iter().filter(|&&(s, _)| s <= 20).collect();
        assert_eq!(
            pre_ref, pre_res,
            "pre-checkpoint history must match exactly"
        );
    }
    // Final quality comparable (within a generous band — Adam moments
    // were dropped at the restart point).
    for (r, s) in reference.final_val.iter().zip(&resumed.final_val) {
        assert!(
            (r - s).abs() < 0.3 * (1.0 + r.abs()),
            "resumed run diverged: {r} vs {s}"
        );
    }
    cleanup_dataset_dir(&dir);
}

#[test]
fn corrupt_checkpoint_rejected() {
    let c = cfg(2);
    let trainers = run_ltfb_partial(&c, 5);
    let dir = temp_dataset_dir("ckpt-corrupt");
    let path = dir.join("pop.ltcp");
    save_population(&path, &c, &trainers).unwrap();
    let mut raw = std::fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    match load_population(&path, &c) {
        Err(CheckpointError::BadChecksum) | Err(CheckpointError::ConfigMismatch(_)) => {}
        Err(e) => panic!("unexpected error kind: {e}"),
        Ok(_) => panic!("corruption not detected"),
    }
    cleanup_dataset_dir(&dir);
}

#[test]
fn mismatched_config_rejected() {
    let c2 = cfg(2);
    let c3 = cfg(3);
    let trainers = run_ltfb_partial(&c2, 5);
    let dir = temp_dataset_dir("ckpt-mismatch");
    let path = dir.join("pop.ltcp");
    save_population(&path, &c2, &trainers).unwrap();
    assert!(matches!(
        load_population(&path, &c3),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    // Wrong seed too.
    let mut c_seed = c2;
    c_seed.seed = 999;
    assert!(matches!(
        load_population(&path, &c_seed),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    cleanup_dataset_dir(&dir);
}

#[test]
fn truncated_checkpoint_rejected() {
    let c = cfg(2);
    let trainers = run_ltfb_partial(&c, 5);
    let dir = temp_dataset_dir("ckpt-trunc");
    let path = dir.join("pop.ltcp");
    save_population(&path, &c, &trainers).unwrap();
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
    assert!(load_population(&path, &c).is_err());
    cleanup_dataset_dir(&dir);
}
