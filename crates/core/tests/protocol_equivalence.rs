//! The flagship correctness test: the distributed LTFB driver (one rank
//! per trainer, generators exchanged over the simulated MPI fabric) must
//! produce *bit-identical* results to the serial reference driver. Both
//! run the same deterministic per-trainer computation; the only difference
//! is how generators move — so equality proves the exchange protocol is
//! faithful.

use ltfb_core::{run_k_independent, run_ltfb_distributed, run_ltfb_serial, LtfbConfig};

fn cfg(k: usize) -> LtfbConfig {
    let mut c = LtfbConfig::small(k);
    c.train_samples = 256;
    c.val_samples = 64;
    c.tournament_samples = 32;
    c.ae_steps = 30;
    c.steps = 30;
    c.exchange_interval = 10;
    c.eval_interval = 15;
    c
}

#[test]
fn distributed_matches_serial_bit_for_bit() {
    for k in [2usize, 3, 4] {
        let c = cfg(k);
        let serial = run_ltfb_serial(&c);
        let dist = run_ltfb_distributed(&c);
        assert_eq!(
            serial.final_val, dist.final_val,
            "k={k} final losses differ"
        );
        assert_eq!(serial.wins, dist.wins, "k={k} win counts differ");
        assert_eq!(
            serial.adoptions, dist.adoptions,
            "k={k} adoption counts differ"
        );
        assert_eq!(serial.matches.len(), dist.matches.len());
        for (s, d) in serial.matches.iter().zip(&dist.matches) {
            assert_eq!(s.0, d.0, "round mismatch");
            assert_eq!(s.1, d.1, "trainer mismatch");
            assert_eq!(s.2.partner, d.2.partner);
            assert_eq!(s.2.own_score, d.2.own_score, "k={k} own score differs");
            assert_eq!(s.2.foreign_score, d.2.foreign_score);
            assert_eq!(s.2.adopted_foreign, d.2.adopted_foreign);
        }
        for (hs, hd) in serial.histories.iter().zip(&dist.histories) {
            assert_eq!(hs.points(), hd.points(), "k={k} histories differ");
        }
    }
}

#[test]
fn ltfb_beats_k_independent_on_partitioned_data() {
    // The Fig. 13 headline at miniature scale: same seeds, same silos,
    // same step budget — the only difference is the tournament. LTFB's
    // best trainer should generalize at least as well as the best
    // independent trainer, because winners have effectively seen several
    // silos.
    let mut c = cfg(4);
    c.steps = 120;
    c.ae_steps = 120;
    c.exchange_interval = 15;
    let ltfb = run_ltfb_serial(&c);
    let kind = run_k_independent(&c);
    let (_, ltfb_best) = ltfb.best();
    let (_, kind_best) = kind.best();
    assert!(
        ltfb_best <= kind_best * 1.02,
        "LTFB best {ltfb_best} should not lose to K-independent best {kind_best}"
    );
    // And the population average should clearly favour LTFB (adopted
    // winners lift weak members).
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(
        avg(&ltfb.final_val) < avg(&kind.final_val),
        "LTFB population mean {} should beat K-independent mean {}",
        avg(&ltfb.final_val),
        avg(&kind.final_val)
    );
}

#[test]
fn adoption_actually_occurs_in_heterogeneous_population() {
    // With several trainers and multiple rounds, at least one generator
    // adoption should happen — otherwise the tournament is vacuous.
    let mut c = cfg(4);
    c.steps = 60;
    let out = run_ltfb_serial(&c);
    assert!(
        out.adoptions > 0,
        "no generator was ever adopted across {} matches",
        out.matches.len()
    );
}

#[test]
fn classifier_distributed_matches_serial_bit_for_bit() {
    use ltfb_core::{run_classifier_distributed, run_classifier_population};
    for k in [2usize, 3] {
        let mut c = cfg(k);
        c.steps = 60;
        c.exchange_interval = 20;
        let serial = run_classifier_population(&c, true);
        let dist = run_classifier_distributed(&c);
        assert_eq!(serial.final_ce, dist.final_ce, "k={k}");
        assert_eq!(serial.final_accuracy, dist.final_accuracy, "k={k}");
        assert_eq!(serial.adoptions, dist.adoptions, "k={k}");
        for (a, b) in serial.histories.iter().zip(&dist.histories) {
            assert_eq!(a.points(), b.points());
        }
    }
}
