//! Hot-swapping the served model under live traffic must lose no
//! in-flight request: every request submitted before, during, and after
//! a sequence of publishes gets a well-formed answer from *some* model
//! version — never an error, never a hang.

use ltfb_gan::{CycleGan, CycleGanConfig};
use ltfb_serve::{BatchPolicy, ModelRegistry, PublishError, Server};
use ltfb_tensor::seeded_rng;
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn hot_swap_under_load_loses_no_requests() {
    let cfg = CycleGanConfig::small(4);
    let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1));
    let server = Server::start(
        Arc::clone(&registry),
        BatchPolicy {
            workers: 2,
            max_batch: 16,
            ..BatchPolicy::default()
        },
    );
    let x_dim = registry.current().x_dim();
    let y_dim = registry.current().y_dim();

    const CLIENTS: usize = 6;
    const REQS: usize = 200;
    const SWAPS: u64 = 8;
    let stop_swapping = Arc::new(AtomicBool::new(false));

    let per_client: Vec<(u64, u64)> = std::thread::scope(|s| {
        // Publisher: keeps swapping models while clients hammer the server.
        {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop_swapping);
            s.spawn(move || {
                let mut version = 2u64;
                while version < 2 + SWAPS && !stop.load(Ordering::Relaxed) {
                    registry
                        .publish(CycleGan::new(cfg, version), version)
                        .unwrap();
                    version += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                s.spawn(move || {
                    let mut rng = seeded_rng(100 + c as u64);
                    let mut answered = 0u64;
                    let mut failed = 0u64;
                    for i in 0..REQS {
                        let resp = if i % 3 == 0 {
                            let y: Vec<f32> =
                                (0..y_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
                            client.submit_inverse(&y)
                        } else {
                            let x: Vec<f32> =
                                (0..x_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
                            client.submit_forward(&x)
                        };
                        match resp.and_then(|p| p.wait()) {
                            Ok(out) => {
                                assert!(!out.is_empty());
                                assert!(
                                    out.iter().all(|v| v.is_finite()),
                                    "non-finite output mid-swap"
                                );
                                answered += 1;
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    (answered, failed)
                })
            })
            .collect();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop_swapping.store(true, Ordering::Relaxed);
        results
    });

    let answered: u64 = per_client.iter().map(|&(a, _)| a).sum();
    let failed: u64 = per_client.iter().map(|&(_, f)| f).sum();
    assert_eq!(failed, 0, "requests failed during hot-swap");
    assert_eq!(answered, (CLIENTS * REQS) as u64);

    assert!(
        registry.swap_count() >= 1,
        "no swap actually happened during the test"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed, (CLIENTS * REQS) as u64);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn stale_publish_does_not_disturb_serving() {
    let cfg = CycleGanConfig::small(4);
    let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 5));
    let server = Server::start(Arc::clone(&registry), BatchPolicy::default());
    let client = server.client();
    let x_dim = registry.current().x_dim();

    assert!(matches!(
        registry.publish(CycleGan::new(cfg, 9), 5),
        Err(PublishError::StaleVersion { .. })
    ));
    assert_eq!(registry.version(), 5);
    assert_eq!(registry.swap_count(), 0);

    let out = client.forward(&vec![0.5; x_dim]).unwrap();
    assert!(out.iter().all(|v| v.is_finite()));
    server.shutdown();
}

#[test]
fn requests_straddling_a_swap_see_old_or_new_model_consistently() {
    // A request answered by version v must match a fresh infer on version
    // v's weights exactly — responses are never a blend of two models.
    let cfg = CycleGanConfig::small(4);
    let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 10), 1));
    // Single worker + generous flush deadline so queued requests straddle
    // the publish below.
    let server = Server::start(
        Arc::clone(&registry),
        BatchPolicy {
            workers: 1,
            max_batch: 4,
            flush_deadline: Duration::from_millis(5),
            ..BatchPolicy::default()
        },
    );
    let client = server.client();
    let x_dim = registry.current().x_dim();
    let mut rng = seeded_rng(55);
    let inputs: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..x_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect())
        .collect();

    let pending: Vec<_> = inputs
        .iter()
        .take(32)
        .map(|x| client.submit_forward(x).unwrap())
        .collect();
    registry.publish(CycleGan::new(cfg, 20), 2).unwrap();
    let pending_after: Vec<_> = inputs
        .iter()
        .skip(32)
        .map(|x| client.submit_forward(x).unwrap())
        .collect();

    let old = CycleGan::new(cfg, 10);
    let new = CycleGan::new(cfg, 20);
    let mut from_old = 0usize;
    let mut from_new = 0usize;
    for (x, p) in inputs.iter().zip(pending.into_iter().chain(pending_after)) {
        let got = p.wait().unwrap();
        let m = ltfb_tensor::Matrix::from_vec(1, x_dim, x.clone());
        let want_old = old.infer_forward(&m);
        let want_new = new.infer_forward(&m);
        let is_old = got
            .iter()
            .zip(want_old.row(0))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let is_new = got
            .iter()
            .zip(want_new.row(0))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(is_old || is_new, "response matches neither model version");
        if is_old {
            from_old += 1;
        }
        if is_new {
            from_new += 1;
        }
    }
    // Requests submitted after the publish must all see the new model.
    assert!(
        from_new >= 32,
        "post-swap requests served by the old model ({from_new} new, {from_old} old)"
    );
    server.shutdown();
}
