//! Batched inference must be bit-identical to sequential single-sample
//! inference. This is the contract that makes micro-batching a pure
//! throughput lever: a client cannot tell (even comparing raw f32 bits)
//! whether its request was served alone or packed into a 32-row GEMM.

use ltfb_gan::{CycleGan, CycleGanConfig};
use ltfb_serve::{BatchPolicy, ModelRegistry, Server};
use ltfb_tensor::{seeded_rng, Matrix};
use rand::Rng;
use std::sync::Arc;

fn random_rows(rng: &mut impl Rng, n: usize, width: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..width).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

/// Serve `inputs` through a server with the given policy at full
/// concurrency (all requests in flight at once) and return the responses
/// in input order. The model is rebuilt from `(cfg, seed)` — CycleGan
/// construction is deterministic, so this yields the same weights as any
/// other instance built from the same pair.
fn serve_all(
    cfg: CycleGanConfig,
    seed: u64,
    policy: BatchPolicy,
    inputs: &[Vec<f32>],
    inverse: bool,
) -> Vec<Vec<f32>> {
    let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, seed), 1));
    let server = Server::start(registry, policy);
    let client = server.client();
    let pending: Vec<_> = inputs
        .iter()
        .map(|row| {
            if inverse {
                client.submit_inverse(row).expect("submit")
            } else {
                client.submit_forward(row).expect("submit")
            }
        })
        .collect();
    let out: Vec<Vec<f32>> = pending
        .into_iter()
        .map(|p| p.wait().expect("reply"))
        .collect();
    server.shutdown();
    out
}

fn assert_rows_bit_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {i} width");
        for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: row {i} col {j}: {va} vs {vb}"
            );
        }
    }
}

#[test]
fn batched_forward_matches_sequential_and_reference() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 42);
    let mut rng = seeded_rng(7);
    let inputs = random_rows(&mut rng, 48, cfg.x_dim());

    // Reference: the training-path predict(), one sample at a time.
    let reference: Vec<Vec<f32>> = inputs
        .iter()
        .map(|row| {
            let m = Matrix::from_vec(1, cfg.x_dim(), row.clone());
            gan.predict(&m).row(0).to_vec()
        })
        .collect();

    let batched = serve_all(cfg, 42, BatchPolicy::default(), &inputs, false);
    let sequential = serve_all(cfg, 42, BatchPolicy::sequential(), &inputs, false);

    assert_rows_bit_equal(&batched, &reference, "batched vs predict()");
    assert_rows_bit_equal(&sequential, &reference, "sequential vs predict()");
}

#[test]
fn batched_inverse_matches_sequential_and_reference() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 43);
    let mut rng = seeded_rng(8);
    let inputs = random_rows(&mut rng, 48, cfg.y_dim());

    let reference: Vec<Vec<f32>> = inputs
        .iter()
        .map(|row| {
            let m = Matrix::from_vec(1, cfg.y_dim(), row.clone());
            gan.invert(&m).row(0).to_vec()
        })
        .collect();

    let batched = serve_all(cfg, 43, BatchPolicy::default(), &inputs, true);
    let sequential = serve_all(cfg, 43, BatchPolicy::sequential(), &inputs, true);

    assert_rows_bit_equal(&batched, &reference, "batched vs invert()");
    assert_rows_bit_equal(&sequential, &reference, "sequential vs invert()");
}

#[test]
fn whole_matrix_infer_matches_row_at_a_time() {
    // The underlying property the server relies on: infer on an n-row
    // matrix equals n independent 1-row infers, bitwise.
    let cfg = CycleGanConfig::small(4);
    let gan = CycleGan::new(cfg, 44);
    let mut rng = seeded_rng(9);
    let inputs = random_rows(&mut rng, 16, cfg.x_dim());
    let flat: Vec<f32> = inputs.iter().flatten().copied().collect();
    let packed = gan.infer_forward(&Matrix::from_vec(inputs.len(), cfg.x_dim(), flat));
    for (i, row) in inputs.iter().enumerate() {
        let single = gan.infer_forward(&Matrix::from_vec(1, cfg.x_dim(), row.clone()));
        for (j, (a, b)) in packed.row(i).iter().zip(single.row(0)).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i} col {j}");
        }
    }
}
