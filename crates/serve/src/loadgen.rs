//! Multi-threaded load generator for the serving engine.
//!
//! Two driving modes: **closed-loop** (each client thread waits for its
//! response before issuing the next request — measures sustainable
//! throughput at a given concurrency) and **open-loop** (submissions are
//! paced on a fixed schedule regardless of completions — exposes
//! queueing and backpressure under overload; rejected and shed requests
//! are counted, not retried).
//!
//! # Coordinated omission
//!
//! Open-loop latency is measured from the request's **intended arrival
//! time** on the schedule, not from whenever the generator got around to
//! sending it. An earlier revision submitted on schedule but then waited
//! for each response *inline* before the next submission — under a slow
//! server the generator itself fell behind its own schedule, so the
//! queueing delay every on-schedule client would have suffered was
//! silently dropped from the percentiles (the classic coordinated
//! omission bug). The fixed path never waits inline: responses are
//! harvested after the schedule completes, and each carries a
//! server-side completion timestamp so late harvesting costs nothing.
//! [`LoadGenConfig::co_baseline`] re-enables the old inline-wait
//! measurement on demand, so benches can report the before/after delta.
//!
//! For fleet benchmarks, [`run_traffic`] layers a traffic model on the
//! open-loop engine: heavy-tailed (Pareto) interarrival gaps, a diurnal
//! rate schedule, and Zipf-skewed hot keys drawn from a shared catalog
//! (so the LRU response cache sees realistic repeat traffic).

use crate::batcher::{Response, ServeClient, ServeError};
use crate::telemetry::ReqKind;
use ltfb_tensor::{seeded_rng, TensorRng};

use rand::Rng;
use std::time::{Duration, Instant};

/// Anything the load generator can drive: a single server's client or a
/// fleet router.
pub trait LoadTarget: Sync {
    /// Blocking submit (closed-loop driving).
    fn submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError>;
    /// Non-blocking submit (open-loop driving).
    fn try_submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError>;
}

impl LoadTarget for ServeClient {
    fn submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        self.submit(kind, input)
    }
    fn try_submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        self.try_submit(kind, input)
    }
}

/// How client threads pace their requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Next request only after the previous response.
    Closed,
    /// Fixed aggregate submission rate (requests/second) across all
    /// clients; uses non-blocking submits and counts rejections.
    Open { rate_per_sec: f64 },
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Fraction of requests taking the inverse path (`y -> x`).
    pub inverse_fraction: f64,
    /// Pacing mode.
    pub mode: LoadMode,
    /// RNG seed for the request streams.
    pub seed: u64,
    /// Re-enable the coordinated-omission-biased measurement in open
    /// mode: wait for each response inline and time it from the actual
    /// send. Exists ONLY so benches and the regression test can report
    /// the before/after percentile delta; leave `false` for honest
    /// numbers.
    pub co_baseline: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 8,
            requests_per_client: 250,
            inverse_fraction: 0.25,
            mode: LoadMode::Closed,
            seed: 7,
            co_baseline: false,
        }
    }
}

/// Aggregate outcome of one load run, including client-side latency
/// percentiles. In open mode `lat_*` percentiles are measured from the
/// intended arrival times (coordinated-omission free) and `send_lat_*`
/// from the actual send instants; in closed mode the two coincide.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    pub submitted: u64,
    pub completed: u64,
    /// Backpressure rejections (open-loop only).
    pub rejected: u64,
    /// SLO admission-control sheds (fleet targets only).
    pub shed: u64,
    /// Submissions that failed for non-backpressure reasons.
    pub errors: u64,
    pub wall_secs: f64,
    /// Latency from the *intended* schedule slot, µs.
    pub lat_p50_us: f64,
    pub lat_p99_us: f64,
    pub lat_p999_us: f64,
    /// Latency from the actual send instant, µs (the coordinated-
    /// omission-biased view, kept to quantify the correction).
    pub send_lat_p50_us: f64,
    pub send_lat_p99_us: f64,
    pub send_lat_p999_us: f64,
}

impl LoadReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.completed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Completions per second of *offered* wall time — under overload
    /// this is the goodput the shedding policy preserved.
    pub fn goodput_rps(&self) -> f64 {
        self.throughput_rps()
    }
}

/// Per-client raw outcome, merged by the runners before percentiles.
#[derive(Default)]
struct ClientOut {
    submitted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    errors: u64,
    corrected_us: Vec<f64>,
    send_us: Vec<f64>,
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn merge(outs: Vec<ClientOut>, wall_secs: f64) -> LoadReport {
    let mut total = LoadReport {
        wall_secs,
        ..Default::default()
    };
    let mut corrected = Vec::new();
    let mut send = Vec::new();
    for o in outs {
        total.submitted += o.submitted;
        total.completed += o.completed;
        total.rejected += o.rejected;
        total.shed += o.shed;
        total.errors += o.errors;
        corrected.extend(o.corrected_us);
        send.extend(o.send_us);
    }
    corrected.sort_by(f64::total_cmp);
    send.sort_by(f64::total_cmp);
    total.lat_p50_us = pct(&corrected, 0.50);
    total.lat_p99_us = pct(&corrected, 0.99);
    total.lat_p999_us = pct(&corrected, 0.999);
    total.send_lat_p50_us = pct(&send, 0.50);
    total.send_lat_p99_us = pct(&send, 0.99);
    total.send_lat_p999_us = pct(&send, 0.999);
    total
}

/// Drive `target` from `cfg.clients` threads; blocks until every thread
/// finishes its quota. `x_dim`/`y_dim` size the generated request
/// payloads (query them from the server's registry).
pub fn run_load<T: LoadTarget>(
    target: &T,
    cfg: &LoadGenConfig,
    x_dim: usize,
    y_dim: usize,
) -> LoadReport {
    assert!(cfg.clients >= 1, "need at least one client");
    assert!(
        (0.0..=1.0).contains(&cfg.inverse_fraction),
        "inverse_fraction in [0,1]"
    );
    let start = Instant::now();
    let outs: Vec<ClientOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let cfg = *cfg;
                s.spawn(move || client_loop(target, cfg, c, x_dim, y_dim))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("invariant: load clients do not panic"))
            .collect()
    });
    merge(outs, start.elapsed().as_secs_f64())
}

fn gen_input(rng: &mut TensorRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(0.0f32..1.0)).collect()
}

fn record_outcome(out: &mut ClientOut, err: &ServeError) {
    match err {
        ServeError::Overloaded => out.rejected += 1,
        ServeError::Shed { .. } => out.shed += 1,
        _ => out.errors += 1,
    }
}

fn client_loop<T: LoadTarget>(
    target: &T,
    cfg: LoadGenConfig,
    client_idx: usize,
    x_dim: usize,
    y_dim: usize,
) -> ClientOut {
    let mut rng = seeded_rng(
        cfg.seed
            .wrapping_add(client_idx as u64)
            .wrapping_mul(0x9E37),
    );
    let mut out = ClientOut::default();
    // Open-loop pacing: each client covers 1/clients of the aggregate
    // rate, submissions scheduled on a fixed grid from the start time.
    let interval = match cfg.mode {
        LoadMode::Open { rate_per_sec } => {
            assert!(rate_per_sec > 0.0, "open-loop rate must be positive");
            Some(Duration::from_secs_f64(cfg.clients as f64 / rate_per_sec))
        }
        LoadMode::Closed => None,
    };
    let started = Instant::now();
    // Open mode: responses are harvested after the schedule completes
    // (never inline — see the module docs on coordinated omission).
    let mut pending: Vec<(Duration, Instant, Response)> = Vec::new();
    for i in 0..cfg.requests_per_client {
        let inverse = rng.gen_bool(cfg.inverse_fraction);
        let due = interval.map(|iv| iv * i as u32);
        if let Some(due) = due {
            // Absolute schedule, not sleep-after-completion: an open-loop
            // generator must not slow down when the server does.
            let now = started.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let (kind, input) = if inverse {
            (ReqKind::Inverse, gen_input(&mut rng, y_dim))
        } else {
            (ReqKind::Forward, gen_input(&mut rng, x_dim))
        };
        out.submitted += 1;
        let sent = Instant::now();
        match due {
            Some(due) => match target.try_submit_req(kind, &input) {
                Ok(resp) if cfg.co_baseline => {
                    // Deliberately reproduce the coordinated-omission
                    // bug: wait inline (stalling this client's own
                    // schedule), measure from the send.
                    match resp.wait_completion() {
                        Ok(c) => {
                            let us = c.finished.saturating_duration_since(sent).as_secs_f64() * 1e6;
                            out.corrected_us.push(us);
                            out.send_us.push(us);
                            out.completed += 1;
                        }
                        Err(_) => out.errors += 1,
                    }
                }
                Ok(resp) => pending.push((due, sent, resp)),
                Err(e) => record_outcome(&mut out, &e),
            },
            // Closed mode: submit-to-completion is the honest latency
            // (the next request is not due until this one answers).
            None => match target.submit_req(kind, &input) {
                Ok(resp) => match resp.wait_completion() {
                    Ok(c) => {
                        let us = c.finished.saturating_duration_since(sent).as_secs_f64() * 1e6;
                        out.corrected_us.push(us);
                        out.send_us.push(us);
                        out.completed += 1;
                    }
                    Err(_) => out.errors += 1,
                },
                Err(e) => record_outcome(&mut out, &e),
            },
        }
    }
    harvest(&mut out, started, pending);
    out
}

/// Drain the open-loop backlog: completion timestamps were taken
/// server-side, so late harvesting does not distort latency.
fn harvest(out: &mut ClientOut, started: Instant, pending: Vec<(Duration, Instant, Response)>) {
    for (due, sent, resp) in pending {
        match resp.wait_completion() {
            Ok(c) => {
                let intended = started + due;
                out.corrected_us
                    .push(c.finished.saturating_duration_since(intended).as_secs_f64() * 1e6);
                out.send_us
                    .push(c.finished.saturating_duration_since(sent).as_secs_f64() * 1e6);
                out.completed += 1;
            }
            Err(_) => out.errors += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet traffic model: heavy tails, diurnal rate, Zipf hot keys
// ---------------------------------------------------------------------------

/// Open-loop traffic shape for fleet benchmarks: a diurnal sinusoid over
/// the aggregate rate, bounded-Pareto (heavy-tailed) interarrival gaps,
/// and Zipf-skewed draws from a fixed catalog of hot request vectors so
/// the LRU response cache sees realistic repeat traffic.
#[derive(Debug, Clone, Copy)]
pub struct TrafficModel {
    /// Mean aggregate request rate (requests/second) at the diurnal
    /// midpoint.
    pub base_rate: f64,
    /// Diurnal modulation fraction in `[0, 1)`: the instantaneous rate is
    /// `base_rate * (1 + amp * sin(2πt/period))`.
    pub diurnal_amp: f64,
    /// Period of the diurnal cycle (compressed from 24h to bench scale).
    pub diurnal_period: Duration,
    /// Pareto tail index for interarrival gaps; must exceed 1 so the
    /// mean exists. Larger = closer to deterministic pacing.
    pub tail_alpha: f64,
    /// Size of the hot-key catalog; 0 makes every request unique
    /// (cache-hostile traffic).
    pub hot_keys: usize,
    /// Zipf exponent over catalog ranks (1.0–1.2 is web-like skew).
    pub zipf_exponent: f64,
    /// Fraction of requests taking the inverse path.
    pub inverse_fraction: f64,
    pub seed: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            base_rate: 2000.0,
            diurnal_amp: 0.3,
            diurnal_period: Duration::from_secs(2),
            tail_alpha: 1.5,
            hot_keys: 256,
            zipf_exponent: 1.1,
            inverse_fraction: 0.25,
            seed: 7,
        }
    }
}

/// One bounded-Pareto gap with the given mean: scale `xm = m(α-1)/α`,
/// sample `xm · u^(-1/α)`, cap at `50·m` so a single astronomical gap
/// cannot stall a bench (the tail is heavy, not unbounded).
fn bounded_pareto_gap(rng: &mut TensorRng, mean_secs: f64, alpha: f64) -> Duration {
    debug_assert!(alpha > 1.0);
    let xm = mean_secs * (alpha - 1.0) / alpha;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    Duration::from_secs_f64((xm * u.powf(-1.0 / alpha)).min(50.0 * mean_secs))
}

/// Cumulative (normalized) Zipf weights over `n` ranks: rank `r` carries
/// weight `1/(r+1)^s`.
fn zipf_cum(n: usize, s: f64) -> Vec<f64> {
    let mut cum: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += ((r + 1) as f64).powf(-s);
        cum.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    for c in &mut cum {
        *c /= total;
    }
    cum
}

fn zipf_sample(cum: &[f64], u: f64) -> usize {
    cum.partition_point(|&c| c < u).min(cum.len() - 1)
}

/// Shared hot-key catalog: one fixed request vector per rank and kind.
struct Catalog {
    fwd: Vec<Vec<f32>>,
    inv: Vec<Vec<f32>>,
    cum: Vec<f64>,
}

impl Catalog {
    fn build(tm: &TrafficModel, x_dim: usize, y_dim: usize) -> Option<Catalog> {
        if tm.hot_keys == 0 {
            return None;
        }
        let mut rng = seeded_rng(tm.seed.wrapping_mul(0xC0FFEE).wrapping_add(1));
        Some(Catalog {
            fwd: (0..tm.hot_keys)
                .map(|_| gen_input(&mut rng, x_dim))
                .collect(),
            inv: (0..tm.hot_keys)
                .map(|_| gen_input(&mut rng, y_dim))
                .collect(),
            cum: zipf_cum(tm.hot_keys, tm.zipf_exponent),
        })
    }
}

/// Drive `target` with `total_requests` spread over `clients` threads of
/// modeled open-loop traffic. Latency is coordinated-omission corrected
/// exactly as in [`run_load`]'s open mode.
pub fn run_traffic<T: LoadTarget>(
    target: &T,
    tm: &TrafficModel,
    clients: usize,
    total_requests: usize,
    x_dim: usize,
    y_dim: usize,
) -> LoadReport {
    assert!(clients >= 1, "need at least one client");
    assert!(tm.base_rate > 0.0, "base rate must be positive");
    assert!(tm.tail_alpha > 1.0, "Pareto tail index must exceed 1");
    assert!(
        (0.0..1.0).contains(&tm.diurnal_amp),
        "diurnal amplitude in [0,1)"
    );
    let catalog = Catalog::build(tm, x_dim, y_dim);
    let per_client = total_requests.div_ceil(clients);
    let start = Instant::now();
    let outs: Vec<ClientOut> = std::thread::scope(|s| {
        let catalog = &catalog;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let tm = *tm;
                s.spawn(move || {
                    traffic_loop(target, &tm, clients, per_client, c, catalog, x_dim, y_dim)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("invariant: load clients do not panic"))
            .collect()
    });
    merge(outs, start.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_arguments)] // one dispatch site, mirrors run_traffic state
fn traffic_loop<T: LoadTarget>(
    target: &T,
    tm: &TrafficModel,
    clients: usize,
    requests: usize,
    client_idx: usize,
    catalog: &Option<Catalog>,
    x_dim: usize,
    y_dim: usize,
) -> ClientOut {
    let mut rng = seeded_rng(tm.seed.wrapping_add(client_idx as u64).wrapping_mul(0x9E37));
    let mut out = ClientOut::default();
    let started = Instant::now();
    let mut pending: Vec<(Duration, Instant, Response)> = Vec::new();
    let mut due = Duration::ZERO;
    for _ in 0..requests {
        let now = started.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let inverse = rng.gen_bool(tm.inverse_fraction);
        let kind = if inverse {
            ReqKind::Inverse
        } else {
            ReqKind::Forward
        };
        // Hot-key skew: draw from the Zipf catalog when one exists, else
        // generate a fresh (cache-hostile) vector.
        let fresh;
        let input: &[f32] = match catalog {
            Some(cat) => {
                let rank = zipf_sample(&cat.cum, rng.gen_range(0.0..1.0));
                if inverse {
                    &cat.inv[rank]
                } else {
                    &cat.fwd[rank]
                }
            }
            None => {
                fresh = gen_input(&mut rng, if inverse { y_dim } else { x_dim });
                &fresh
            }
        };
        out.submitted += 1;
        let sent = Instant::now();
        match target.try_submit_req(kind, input) {
            Ok(resp) => pending.push((due, sent, resp)),
            Err(e) => record_outcome(&mut out, &e),
        }
        // Advance the schedule: instantaneous diurnal rate at the
        // *intended* time, heavy-tailed gap around its mean.
        let t = due.as_secs_f64();
        let phase = std::f64::consts::TAU * t / tm.diurnal_period.as_secs_f64().max(1e-9);
        let rate = tm.base_rate * (1.0 + tm.diurnal_amp * phase.sin());
        let mean_gap = clients as f64 / rate.max(1e-9);
        due += bounded_pareto_gap(&mut rng, mean_gap, tm.tail_alpha);
    }
    harvest(&mut out, started, pending);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchPolicy, Server};
    use crate::registry::ModelRegistry;
    use ltfb_gan::{CycleGan, CycleGanConfig};
    use std::sync::Arc;

    fn tiny_server(policy: BatchPolicy) -> Server {
        let cfg = CycleGanConfig::small(4);
        Server::start(
            Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1)),
            policy,
        )
    }

    fn dims(server: &Server) -> (usize, usize) {
        let m = server.registry().current();
        (m.x_dim(), m.y_dim())
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let server = tiny_server(BatchPolicy::default());
        let (x_dim, y_dim) = dims(&server);
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 25,
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.client(), &cfg, x_dim, y_dim);
        assert_eq!(report.submitted, 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.errors, 0);
        assert!(report.lat_p50_us > 0.0);
        assert!(report.lat_p99_us >= report.lat_p50_us);
        // Closed mode: both measurement bases coincide.
        assert_eq!(report.lat_p99_us, report.send_lat_p99_us);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 100);
    }

    #[test]
    fn open_loop_counts_rejections_under_overload() {
        // Tiny queue + slow single worker: a fast open-loop schedule must
        // overflow and be counted, never block the generator.
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 1,
            queue_cap: 2,
            flush_deadline: Duration::ZERO,
            service_floor: Duration::from_millis(2),
            ..BatchPolicy::default()
        });
        let (x_dim, y_dim) = dims(&server);
        let cfg = LoadGenConfig {
            clients: 2,
            requests_per_client: 100,
            mode: LoadMode::Open {
                rate_per_sec: 5_000.0,
            },
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.client(), &cfg, x_dim, y_dim);
        assert_eq!(report.submitted, 200);
        assert!(report.rejected > 0, "overload never rejected: {report:?}");
        assert_eq!(
            report.completed + report.rejected + report.errors,
            report.submitted
        );
        server.shutdown();
    }

    #[test]
    fn corrected_percentiles_expose_queueing_the_inline_wait_hid() {
        // Coordinated-omission regression: a deliberately stalled server
        // (4ms per single-request batch = 250 rps capacity) driven at
        // 500 rps. The old inline-wait measurement reports ~the service
        // floor because the generator stalls its own schedule; the
        // corrected measurement charges every request from its intended
        // arrival and sees the queue ramp.
        let stalled = || {
            tiny_server(BatchPolicy {
                workers: 1,
                max_batch: 1,
                queue_cap: 1024,
                flush_deadline: Duration::ZERO,
                service_floor: Duration::from_millis(4),
                ..BatchPolicy::default()
            })
        };
        let cfg = LoadGenConfig {
            clients: 1,
            requests_per_client: 100,
            inverse_fraction: 0.0,
            mode: LoadMode::Open {
                rate_per_sec: 500.0,
            },
            seed: 11,
            co_baseline: true,
        };
        let server = stalled();
        let (x_dim, y_dim) = dims(&server);
        let before = run_load(&server.client(), &cfg, x_dim, y_dim);
        server.shutdown();

        let server = stalled();
        let after = run_load(
            &server.client(),
            &LoadGenConfig {
                co_baseline: false,
                ..cfg
            },
            x_dim,
            y_dim,
        );
        server.shutdown();

        assert_eq!(before.completed, 100);
        assert_eq!(after.completed, 100);
        // Inline wait hides the queue: percentiles sit near the 4ms
        // floor. The corrected view must show the ~100ms+ ramp.
        assert!(
            after.lat_p99_us > 5.0 * before.lat_p99_us,
            "corrected p99 {:.0}us does not expose queueing over baseline {:.0}us",
            after.lat_p99_us,
            before.lat_p99_us
        );
        assert!(
            after.lat_p99_us > 50_000.0,
            "expected >50ms corrected p99, got {:.0}us",
            after.lat_p99_us
        );
        // The baseline generator fell behind its own 200ms schedule —
        // the signature of the bug.
        assert!(
            before.wall_secs > 0.3,
            "baseline wall {:.3}s",
            before.wall_secs
        );
    }

    #[test]
    fn traffic_model_hits_the_cache_and_completes() {
        let server = tiny_server(BatchPolicy {
            cache_capacity: 512,
            ..BatchPolicy::default()
        });
        let (x_dim, y_dim) = dims(&server);
        let tm = TrafficModel {
            base_rate: 4000.0,
            hot_keys: 8,
            ..TrafficModel::default()
        };
        let report = run_traffic(&server.client(), &tm, 2, 300, x_dim, y_dim);
        assert_eq!(report.submitted, 300);
        assert_eq!(
            report.completed + report.rejected + report.shed + report.errors,
            report.submitted
        );
        assert_eq!(report.errors, 0);
        let stats = server.shutdown();
        // 8 hot keys under Zipf skew: repeats must hit the LRU cache.
        assert!(stats.cache_hits > 0, "no cache hits: {stats:?}");
    }

    #[test]
    fn pareto_gaps_are_positive_and_bounded() {
        let mut rng = seeded_rng(42);
        let mean = 0.001;
        let mut total = 0.0;
        for _ in 0..10_000 {
            let g = bounded_pareto_gap(&mut rng, mean, 1.5).as_secs_f64();
            assert!(g > 0.0 && g <= 50.0 * mean, "gap {g} out of bounds");
            total += g;
        }
        // Sample mean lands near the configured mean (loose: heavy tail).
        let sample_mean = total / 10_000.0;
        assert!(
            sample_mean > 0.3 * mean && sample_mean < 3.0 * mean,
            "sample mean {sample_mean} vs {mean}"
        );
    }

    #[test]
    fn zipf_catalog_is_skewed_toward_low_ranks() {
        let cum = zipf_cum(64, 1.1);
        assert_eq!(cum.len(), 64);
        assert!((cum[63] - 1.0).abs() < 1e-12);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        // Rank 0 alone carries a big share under s=1.1.
        assert!(cum[0] > 0.15, "rank-0 mass {}", cum[0]);
        assert_eq!(zipf_sample(&cum, 0.0), 0);
        assert_eq!(zipf_sample(&cum, 1.0), 63);
        let mut rng = seeded_rng(9);
        let mut low = 0;
        for _ in 0..1000 {
            if zipf_sample(&cum, rng.gen_range(0.0..1.0)) < 8 {
                low += 1;
            }
        }
        assert!(low > 500, "top-8 ranks drew only {low}/1000");
    }
}
