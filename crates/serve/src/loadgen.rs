//! Multi-threaded load generator for the serving engine.
//!
//! Two driving modes: **closed-loop** (each client thread waits for its
//! response before issuing the next request — measures sustainable
//! throughput at a given concurrency) and **open-loop** (each client
//! paces submissions at a fixed aggregate rate regardless of completions
//! — exposes queueing and backpressure under overload; rejected requests
//! are counted, not retried).

use crate::batcher::{ServeClient, ServeError};
use ltfb_tensor::seeded_rng;
use rand::Rng;
use std::time::{Duration, Instant};

/// How client threads pace their requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Next request only after the previous response.
    Closed,
    /// Fixed aggregate submission rate (requests/second) across all
    /// clients; uses non-blocking submits and counts rejections.
    Open { rate_per_sec: f64 },
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Fraction of requests taking the inverse path (`y -> x`).
    pub inverse_fraction: f64,
    /// Pacing mode.
    pub mode: LoadMode,
    /// RNG seed for the request streams.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 8,
            requests_per_client: 250,
            inverse_fraction: 0.25,
            mode: LoadMode::Closed,
            seed: 7,
        }
    }
}

/// Aggregate outcome of one load run (client-side view; the server's own
/// telemetry holds latency percentiles).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    pub submitted: u64,
    pub completed: u64,
    /// Backpressure rejections (open-loop only).
    pub rejected: u64,
    /// Submissions that failed for non-backpressure reasons.
    pub errors: u64,
    pub wall_secs: f64,
}

impl LoadReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.completed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Drive `client` from `cfg.clients` threads; blocks until every thread
/// finishes its quota. `x_dim`/`y_dim` size the generated request
/// payloads (query them from the server's registry).
pub fn run_load(
    client: &ServeClient,
    cfg: &LoadGenConfig,
    x_dim: usize,
    y_dim: usize,
) -> LoadReport {
    assert!(cfg.clients >= 1, "need at least one client");
    assert!(
        (0.0..=1.0).contains(&cfg.inverse_fraction),
        "inverse_fraction in [0,1]"
    );
    let start = Instant::now();
    let reports: Vec<LoadReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let client = client.clone();
                let cfg = *cfg;
                s.spawn(move || client_loop(client, cfg, c, x_dim, y_dim))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("invariant: load clients do not panic"))
            .collect()
    });
    let mut total = LoadReport {
        wall_secs: start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    for r in reports {
        total.submitted += r.submitted;
        total.completed += r.completed;
        total.rejected += r.rejected;
        total.errors += r.errors;
    }
    total
}

fn client_loop(
    client: ServeClient,
    cfg: LoadGenConfig,
    client_idx: usize,
    x_dim: usize,
    y_dim: usize,
) -> LoadReport {
    let mut rng = seeded_rng(
        cfg.seed
            .wrapping_add(client_idx as u64)
            .wrapping_mul(0x9E37),
    );
    let mut report = LoadReport::default();
    // Open-loop pacing: each client covers 1/clients of the aggregate
    // rate, submissions scheduled on a fixed grid from the start time.
    let interval = match cfg.mode {
        LoadMode::Open { rate_per_sec } => {
            assert!(rate_per_sec > 0.0, "open-loop rate must be positive");
            Some(Duration::from_secs_f64(cfg.clients as f64 / rate_per_sec))
        }
        LoadMode::Closed => None,
    };
    let started = Instant::now();
    for i in 0..cfg.requests_per_client {
        let inverse = rng.gen_bool(cfg.inverse_fraction);
        if let Some(interval) = interval {
            // Absolute schedule, not sleep-after-completion: an open-loop
            // generator must not slow down when the server does.
            let due = interval * i as u32;
            let now = started.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let outcome = if inverse {
            let y: Vec<f32> = (0..y_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            report.submitted += 1;
            match interval {
                Some(_) => client.try_submit_inverse(&y).map(|p| p.wait()),
                None => client.submit_inverse(&y).map(|p| p.wait()),
            }
        } else {
            let x: Vec<f32> = (0..x_dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            report.submitted += 1;
            match interval {
                Some(_) => client.try_submit_forward(&x).map(|p| p.wait()),
                None => client.submit_forward(&x).map(|p| p.wait()),
            }
        };
        match outcome {
            Ok(Ok(_)) => report.completed += 1,
            Ok(Err(_)) => report.errors += 1,
            Err(ServeError::Overloaded) => report.rejected += 1,
            Err(_) => report.errors += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchPolicy, Server};
    use crate::registry::ModelRegistry;
    use ltfb_gan::{CycleGan, CycleGanConfig};
    use std::sync::Arc;

    fn tiny_server(policy: BatchPolicy) -> Server {
        let cfg = CycleGanConfig::small(4);
        Server::start(
            Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1)),
            policy,
        )
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let server = tiny_server(BatchPolicy::default());
        let (x_dim, y_dim) = {
            let m = server.registry().current();
            (m.x_dim(), m.y_dim())
        };
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 25,
            inverse_fraction: 0.3,
            mode: LoadMode::Closed,
            seed: 11,
        };
        let report = run_load(&server.client(), &cfg, x_dim, y_dim);
        assert_eq!(report.submitted, 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.rejected + report.errors, 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 100);
        assert!(stats.forward > 0 && stats.inverse > 0);
    }

    #[test]
    fn open_loop_counts_rejections_under_overload() {
        // One worker, tiny queue, absurd rate: rejections must show up.
        let server = tiny_server(BatchPolicy {
            workers: 1,
            queue_cap: 2,
            max_batch: 2,
            ..BatchPolicy::default()
        });
        let (x_dim, y_dim) = {
            let m = server.registry().current();
            (m.x_dim(), m.y_dim())
        };
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 100,
            inverse_fraction: 0.0,
            mode: LoadMode::Open {
                rate_per_sec: 1.0e6,
            },
            seed: 13,
        };
        let report = run_load(&server.client(), &cfg, x_dim, y_dim);
        assert_eq!(report.submitted, 400);
        assert_eq!(report.completed + report.rejected + report.errors, 400);
        assert!(report.completed > 0, "server served nothing");
        server.shutdown();
    }
}
