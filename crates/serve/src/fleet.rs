//! The sharded serving fleet: N micro-batching servers behind one
//! SLO-driven router.
//!
//! A [`Fleet`] owns `shards` independent [`Server`]s, each backed by its
//! own [`ModelRegistry`] replica. The [`FleetClient`] routes every
//! request by **consistent hashing** over its quantized input key (the
//! same key the LRU cache uses, so repeats of a hot input land on the
//! shard whose cache holds its response), with two load-aware escapes:
//!
//! - **Hot-key spill**: when the primary shard's queue exceeds
//!   [`SloPolicy::spill_depth`], the request spills to the currently
//!   least-loaded shard — a skewed key distribution must not serialize
//!   the whole fleet behind one hot shard.
//! - **Admission control**: when even the least-loaded queue is at or
//!   beyond [`SloPolicy::shed_depth`], the request is **shed** with
//!   [`ServeError::Shed`] instead of queued. Under sustained overload an
//!   accepted request only grows every queue without bound and blows the
//!   latency SLO for everyone already admitted; shedding keeps goodput
//!   near capacity while the excess is refused cheaply.
//!
//! An optional **adaptive batching controller** retunes each shard's
//! [`BatchKnobs`] (max batch size / flush deadline) against
//! [`SloPolicy::p99_target_us`]: queue growth doubles the batch and
//! shrinks the flush window (throughput first), a p99 above target
//! shrinks the window (latency first), and a comfortably-below-target
//! p99 relaxes the window to win coalescing back.
//!
//! With an observability registry attached, per-shard telemetry exports
//! under `serve.s{i}.*` metric families, each replica's registry is a
//! distinct causal actor (`serve.s{i}.registry`), and the router stamps
//! **edge-triggered** overload episodes onto the causal trace as actor
//! `serve.fleet`: `fleet.slo` (budget, at attach), `fleet.overload` /
//! `fleet.shed` (first shed of an episode), `fleet.relief` (queues
//! drained back under half budget), and `fleet.resize` (controller
//! retune). `ltfb-analyze trace` certifies the shed-implies-overload
//! invariant over these stamps.

use crate::batcher::{BatchKnobs, BatchPolicy, Response, ServeClient, ServeError, Server};
use crate::cache::CacheKey;
use crate::loadgen::LoadTarget;
use crate::registry::{ModelRegistry, PublishError, PublishOutcome};
use crate::telemetry::{ReqKind, ServeStats, Telemetry};
use ltfb_gan::{CycleGan, CycleGanConfig};
use ltfb_obs::CausalHandle;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The fleet's service-level objective and the control limits derived
/// from it.
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// p99 latency target the adaptive controller steers toward, µs.
    pub p99_target_us: f64,
    /// Queue depth beyond which a primary shard spills to the least
    /// loaded shard (hot-key relief).
    pub spill_depth: usize,
    /// Queue-depth budget: when every shard is at or beyond this, new
    /// requests are shed ([`ServeError::Shed`]).
    pub shed_depth: usize,
    /// Run the adaptive batch controller.
    pub adaptive: bool,
    /// Controller cadence.
    pub tune_every: Duration,
    /// Upper bound the controller may grow `max_batch` to.
    pub max_batch_ceiling: usize,
    /// Upper bound the controller may relax `flush_deadline` to.
    pub flush_ceiling: Duration,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p99_target_us: 5_000.0,
            spill_depth: 16,
            shed_depth: 512,
            adaptive: true,
            tune_every: Duration::from_millis(50),
            max_batch_ceiling: 256,
            flush_ceiling: Duration::from_millis(2),
        }
    }
}

/// Full fleet configuration: shard count, per-shard batching policy, and
/// the SLO driving routing/shedding/adaptation.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    pub shards: usize,
    pub policy: BatchPolicy,
    pub slo: SloPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            policy: BatchPolicy::default(),
            slo: SloPolicy::default(),
        }
    }
}

/// Consistent-hash ring: each shard owns `VNODES` pseudo-randomly placed
/// points; a key maps to the first point clockwise from its hash. Adding
/// or removing one shard moves only ~1/N of the key space, and the
/// vnode spread keeps per-shard load within a few percent of even.
struct HashRing {
    points: Vec<(u64, usize)>,
}

const VNODES: usize = 64;

fn hash_of(v: impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl HashRing {
    fn new(shards: usize) -> HashRing {
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| (0..VNODES).map(move |v| (hash_of((s, v, 0x51EDu16)), s)))
            .collect();
        points.sort_unstable();
        HashRing { points }
    }

    fn shard(&self, key_hash: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key_hash);
        self.points[i % self.points.len()].1
    }
}

/// Router state shared by every [`FleetClient`] clone and the controller.
struct FleetShared {
    slo: SloPolicy,
    ring: HashRing,
    cache_quantum: f32,
    routed: AtomicU64,
    spills: AtomicU64,
    sheds: AtomicU64,
    /// Causal stamping handle for actor `serve.fleet` (None when no obs
    /// registry is attached).
    causal: Option<CausalHandle>,
    /// Per-shard overload-episode flags. Episode *transitions* are
    /// stamped under this lock so a racing relief cannot interleave
    /// between a shed's `fleet.overload` and `fleet.shed` stamps and
    /// forge a causality violation that never happened.
    episodes: Mutex<Vec<bool>>,
}

impl FleetShared {
    /// First shed of an overload episode stamps `fleet.overload` then
    /// `fleet.shed`; later sheds of the same episode only count.
    fn note_shed(&self, shard: usize, depth: usize) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.causal {
            let mut ep = self.episodes.lock();
            if !ep[shard] {
                ep[shard] = true;
                c.local("fleet.overload", shard as u64, depth as u64);
                c.local("fleet.shed", shard as u64, depth as u64);
            }
        }
    }

    /// An accepted route with a comfortably-drained queue ends the
    /// shard's overload episode.
    fn note_accepted(&self, shard: usize, depth: usize) {
        if let Some(c) = &self.causal {
            if depth * 2 <= self.slo.shed_depth {
                let mut ep = self.episodes.lock();
                if ep[shard] {
                    ep[shard] = false;
                    c.local("fleet.relief", shard as u64, depth as u64);
                }
            }
        }
    }
}

/// Cloneable routing handle over the whole fleet. Implements
/// [`LoadTarget`], so the load generators drive a fleet exactly like a
/// single server.
#[derive(Clone)]
pub struct FleetClient {
    clients: Vec<ServeClient>,
    shared: Arc<FleetShared>,
}

impl FleetClient {
    fn key_hash(&self, kind: ReqKind, input: &[f32]) -> u64 {
        let tag = match kind {
            ReqKind::Forward => 0u8,
            ReqKind::Inverse => 1u8,
        };
        hash_of(CacheKey::quantized(tag, input, self.shared.cache_quantum))
    }

    /// Pick a shard: consistent-hash primary, spill to the least-loaded
    /// shard past `spill_depth`, shed past `shed_depth` (unless
    /// `may_shed` is false — blocking submits always queue somewhere).
    fn route(&self, kind: ReqKind, input: &[f32], may_shed: bool) -> Result<usize, ServeError> {
        let primary = self.shared.ring.shard(self.key_hash(kind, input));
        let depth = self.clients[primary].queue_depth();
        if depth <= self.shared.slo.spill_depth {
            self.shared.routed.fetch_add(1, Ordering::Relaxed);
            self.shared.note_accepted(primary, depth);
            return Ok(primary);
        }
        let (best, best_depth) = (0..self.clients.len())
            .map(|i| (i, self.clients[i].queue_depth()))
            .min_by_key(|&(_, d)| d)
            .expect("invariant: fleets have at least one shard");
        if may_shed && best_depth >= self.shared.slo.shed_depth {
            self.clients[primary].telemetry().record_shed();
            self.shared.note_shed(primary, best_depth);
            return Err(ServeError::Shed {
                depth: best_depth,
                budget: self.shared.slo.shed_depth,
            });
        }
        self.shared.routed.fetch_add(1, Ordering::Relaxed);
        if best != primary {
            self.shared.spills.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.note_accepted(best, best_depth);
        Ok(best)
    }

    /// Non-blocking submit through the router; sheds under fleet-wide
    /// overload, reports [`ServeError::Overloaded`] if the chosen
    /// shard's queue fills in the race window after routing.
    pub fn try_submit(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        let shard = self.route(kind, input, true)?;
        self.clients[shard].try_submit(kind, input)
    }

    /// Blocking submit: routes (with spill) but never sheds — the caller
    /// opted into waiting.
    pub fn submit(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        let shard = self.route(kind, input, false)?;
        self.clients[shard].submit(kind, input)
    }

    /// Blocking round-trip forward inference through the router.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.submit(ReqKind::Forward, x)?.wait()
    }

    /// Blocking round-trip inverse inference through the router.
    pub fn inverse(&self, y: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.submit(ReqKind::Inverse, y)?.wait()
    }
}

impl LoadTarget for FleetClient {
    fn submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        self.submit(kind, input)
    }
    fn try_submit_req(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        self.try_submit(kind, input)
    }
}

/// Aggregate fleet outcome: per-shard serving stats plus router counters.
#[derive(Debug, Clone)]
pub struct FleetStats {
    pub per_shard: Vec<ServeStats>,
    /// Requests the router admitted to some shard.
    pub routed: u64,
    /// Admitted requests that left their primary shard for a less loaded
    /// one.
    pub spills: u64,
    /// Requests refused by admission control.
    pub sheds: u64,
}

impl FleetStats {
    pub fn completed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.completed).sum()
    }
}

/// The sharded serving fleet (see the module docs).
pub struct Fleet {
    servers: Vec<Server>,
    shared: Arc<FleetShared>,
    stop: Arc<AtomicBool>,
    tuner: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Start one server per registry replica. `registries.len()` is the
    /// shard count; [`FleetConfig::shards`] must agree.
    pub fn start(registries: Vec<Arc<ModelRegistry>>, cfg: FleetConfig) -> Fleet {
        Self::start_inner(registries, cfg, None)
    }

    /// [`Fleet::start`] with per-shard telemetry exported under
    /// `serve.s{i}.*`, per-shard registry causal actors, and router
    /// episode stamps under actor `serve.fleet`.
    pub fn start_with_obs(
        registries: Vec<Arc<ModelRegistry>>,
        cfg: FleetConfig,
        metrics: &ltfb_obs::Registry,
    ) -> Fleet {
        Self::start_inner(registries, cfg, Some(metrics))
    }

    fn start_inner(
        registries: Vec<Arc<ModelRegistry>>,
        cfg: FleetConfig,
        metrics: Option<&ltfb_obs::Registry>,
    ) -> Fleet {
        assert!(!registries.is_empty(), "fleet needs at least one shard");
        assert_eq!(
            registries.len(),
            cfg.shards,
            "one registry replica per shard"
        );
        let causal = metrics.map(|m| {
            let handle = m.causal_actor("serve.fleet");
            // Root of the fleet's causal history: every overload/shed/
            // resize stamp must happen-after the budget announcement.
            handle.local("fleet.slo", cfg.slo.shed_depth as u64, cfg.shards as u64);
            handle
        });
        let servers: Vec<Server> = registries
            .into_iter()
            .enumerate()
            .map(|(i, reg)| match metrics {
                Some(m) => {
                    reg.attach_obs_named(m, &format!("serve.s{i}.registry"));
                    let tele = Telemetry::with_registry_prefixed(m, &format!("serve.s{i}."));
                    Server::start_with_telemetry(reg, cfg.policy, tele)
                }
                None => Server::start(reg, cfg.policy),
            })
            .collect();
        let shared = Arc::new(FleetShared {
            slo: cfg.slo,
            ring: HashRing::new(cfg.shards),
            cache_quantum: cfg.policy.cache_quantum,
            routed: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            causal,
            episodes: Mutex::new(vec![false; cfg.shards]),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let tuner = cfg.slo.adaptive.then(|| {
            let shards: Vec<(Arc<BatchKnobs>, Arc<Telemetry>, ServeClient)> = servers
                .iter()
                .map(|s| (Arc::clone(s.knobs()), Arc::clone(s.telemetry()), s.client()))
                .collect();
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ltfb-fleet-tuner".into())
                .spawn(move || tuner_loop(shards, shared, stop))
                .expect("invariant: OS can spawn the fleet controller")
        });
        Fleet {
            servers,
            shared,
            stop,
            tuner,
        }
    }

    /// A new routing client over all shards.
    pub fn client(&self) -> FleetClient {
        FleetClient {
            clients: self.servers.iter().map(|s| s.client()).collect(),
            shared: Arc::clone(&self.shared),
        }
    }

    pub fn shards(&self) -> usize {
        self.servers.len()
    }

    /// Per-shard registries (replicas), in shard order.
    pub fn registries(&self) -> Vec<Arc<ModelRegistry>> {
        self.servers
            .iter()
            .map(|s| Arc::clone(s.registry()))
            .collect()
    }

    /// Live model version of every shard, in shard order.
    pub fn versions(&self) -> Vec<u64> {
        self.servers
            .iter()
            .map(|s| s.registry().version())
            .collect()
    }

    /// Publish one freshly built model per shard as `version`, through
    /// each replica's probed publish path. The factory runs once per
    /// shard (models are not clonable — rebuild or reload per replica).
    pub fn publish_with(
        &self,
        version: u64,
        mut make: impl FnMut(usize) -> CycleGan,
    ) -> Vec<Result<(), PublishError>> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| s.registry().publish(make(i), version))
            .collect()
    }

    /// Fan a checkpoint out to every replica via
    /// [`ModelRegistry::publish_or_fallback`]: shards that cannot load or
    /// probe it keep serving their last good model.
    pub fn publish_or_fallback(&self, path: &Path, cfg: &CycleGanConfig) -> Vec<PublishOutcome> {
        self.servers
            .iter()
            .map(|s| s.registry().publish_or_fallback(path, cfg))
            .collect()
    }

    /// Roll every replica back to its previous good model.
    pub fn rollback(&self) -> Vec<Result<u64, PublishError>> {
        self.servers
            .iter()
            .map(|s| s.registry().rollback())
            .collect()
    }

    /// Router counters so far: (routed, spills, sheds).
    pub fn router_counts(&self) -> (u64, u64, u64) {
        (
            self.shared.routed.load(Ordering::Relaxed),
            self.shared.spills.load(Ordering::Relaxed),
            self.shared.sheds.load(Ordering::Relaxed),
        )
    }

    /// Stop the controller, drain and shut down every shard, and return
    /// the aggregate stats.
    pub fn shutdown(mut self) -> FleetStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.tuner.take() {
            let _ = t.join();
        }
        let per_shard: Vec<ServeStats> = self.servers.drain(..).map(|s| s.shutdown()).collect();
        FleetStats {
            per_shard,
            routed: self.shared.routed.load(Ordering::Relaxed),
            spills: self.shared.spills.load(Ordering::Relaxed),
            sheds: self.shared.sheds.load(Ordering::Relaxed),
        }
    }
}

/// The adaptive batching controller: every `tune_every`, steer each
/// shard's live [`BatchKnobs`] against the p99 target using only the
/// completions that arrived since the previous tick (a stale window
/// would keep punishing a shard for a transient it already escaped).
fn tuner_loop(
    shards: Vec<(Arc<BatchKnobs>, Arc<Telemetry>, ServeClient)>,
    shared: Arc<FleetShared>,
    stop: Arc<AtomicBool>,
) {
    let slo = shared.slo;
    let mut cursors = vec![0usize; shards.len()];
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(slo.tune_every);
        for (i, (knobs, tele, client)) in shards.iter().enumerate() {
            let (stream_len, p99) = tele.p99_since(cursors[i]);
            let fresh = stream_len - cursors[i];
            cursors[i] = stream_len;
            let depth = client.queue_depth();
            let max_batch = knobs.max_batch();
            let flush = knobs.flush_deadline();
            let (new_batch, new_flush) = if depth > max_batch {
                // Queue outruns the batch: trade latency headroom for
                // throughput — bigger packs, tighter window.
                ((max_batch * 2).min(slo.max_batch_ceiling), flush / 2)
            } else if fresh > 0 && p99 > slo.p99_target_us {
                // Over target without queue growth: the coalescing wait
                // itself is the latency — shrink it.
                (max_batch, flush / 2)
            } else if fresh > 0 && p99 < slo.p99_target_us / 2.0 {
                // Comfortably under target: relax the window to win
                // coalescing (and GEMM efficiency) back.
                (
                    max_batch,
                    (flush * 2)
                        .max(Duration::from_micros(10))
                        .min(slo.flush_ceiling),
                )
            } else {
                (max_batch, flush)
            };
            if (new_batch, new_flush) != (max_batch, flush) {
                knobs.set(new_batch, new_flush);
                if let Some(c) = &shared.causal {
                    let packed =
                        ((new_batch as u64) << 32) | (new_flush.as_micros() as u64 & 0xFFFF_FFFF);
                    c.local("fleet.resize", i as u64, packed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::Completion;
    use std::collections::HashMap;

    fn replicas(n: usize) -> Vec<Arc<ModelRegistry>> {
        let cfg = CycleGanConfig::small(4);
        (0..n)
            .map(|_| Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1)))
            .collect()
    }

    fn quiet_slo() -> SloPolicy {
        SloPolicy {
            adaptive: false,
            ..SloPolicy::default()
        }
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(4);
        let mut seen = [false; 4];
        for k in 0..4096u64 {
            let s = ring.shard(hash_of(k));
            assert_eq!(s, ring.shard(hash_of(k)), "routing must be stable");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard owns no keys: {seen:?}");
    }

    #[test]
    fn fleet_serves_and_routes_deterministically() {
        let fleet = Fleet::start(
            replicas(3),
            FleetConfig {
                shards: 3,
                slo: quiet_slo(),
                ..FleetConfig::default()
            },
        );
        let client = fleet.client();
        for i in 0..30 {
            let y = client.forward(&[i as f32 * 0.03; 5]).unwrap();
            assert!(y.iter().all(|v| v.is_finite()));
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.completed(), 30);
        assert_eq!(stats.routed, 30);
        assert_eq!(stats.sheds, 0);
    }

    #[test]
    fn admission_control_sheds_when_every_queue_is_over_budget() {
        let fleet = Fleet::start(
            replicas(2),
            FleetConfig {
                shards: 2,
                policy: BatchPolicy {
                    workers: 1,
                    max_batch: 1,
                    queue_cap: 64,
                    flush_deadline: Duration::ZERO,
                    service_floor: Duration::from_millis(5),
                    ..BatchPolicy::default()
                },
                slo: SloPolicy {
                    spill_depth: 1,
                    shed_depth: 4,
                    adaptive: false,
                    ..SloPolicy::default()
                },
            },
        );
        let client = fleet.client();
        let mut shed = 0u64;
        let mut pending = Vec::new();
        for i in 0..200 {
            match client.try_submit(ReqKind::Forward, &[i as f32 * 1e-3; 5]) {
                Ok(r) => pending.push(r),
                Err(ServeError::Shed { depth, budget }) => {
                    assert!(depth >= budget, "shed below budget: {depth} < {budget}");
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed > 0, "storm over 2 stalled shards never shed");
        for p in pending {
            p.wait().unwrap();
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.sheds, shed);
        let shed_counted: u64 = stats.per_shard.iter().map(|s| s.shed).sum();
        assert_eq!(shed_counted, shed, "telemetry lost sheds");
        // Shed requests were never queued: everyone admitted completed.
        assert_eq!(stats.completed(), 200 - shed);
    }

    #[test]
    fn adaptive_controller_grows_batches_under_queue_pressure() {
        let fleet = Fleet::start(
            replicas(1),
            FleetConfig {
                shards: 1,
                policy: BatchPolicy {
                    workers: 1,
                    max_batch: 1,
                    queue_cap: 1024,
                    flush_deadline: Duration::from_micros(50),
                    service_floor: Duration::from_millis(1),
                    ..BatchPolicy::default()
                },
                slo: SloPolicy {
                    spill_depth: usize::MAX, // routing out of scope here
                    shed_depth: usize::MAX,
                    adaptive: true,
                    tune_every: Duration::from_millis(5),
                    ..SloPolicy::default()
                },
            },
        );
        let client = fleet.client();
        let knobs_before = 1;
        let mut pending = Vec::new();
        for i in 0..300 {
            if let Ok(r) = client.try_submit(ReqKind::Forward, &[i as f32 * 1e-3; 5]) {
                pending.push(r);
            }
        }
        // Deep queue + 5ms cadence: the controller must double max_batch
        // within a few ticks.
        let mut grew = false;
        for _ in 0..100 {
            if fleet.servers[0].knobs().max_batch() > knobs_before {
                grew = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(grew, "controller never grew max_batch under pressure");
        for p in pending {
            p.wait().unwrap();
        }
        fleet.shutdown();
    }

    #[test]
    fn publish_fans_out_and_rollback_restores_every_replica() {
        let fleet = Fleet::start(
            replicas(2),
            FleetConfig {
                shards: 2,
                slo: quiet_slo(),
                ..FleetConfig::default()
            },
        );
        assert_eq!(fleet.versions(), vec![1, 1]);
        let cfg = CycleGanConfig::small(4);
        let results = fleet.publish_with(2, |_| CycleGan::new(cfg, 99));
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(fleet.versions(), vec![2, 2]);
        let back = fleet.rollback();
        assert!(back.iter().all(|r| r.is_ok()));
        assert_eq!(fleet.versions(), vec![1, 1]);
        fleet.shutdown();
    }

    /// Replica-divergence coverage: publish races a shard's
    /// `publish_or_fallback` degrade while readers hammer the fleet.
    /// Completions carry (version, batch id); since batch ids are unique
    /// across shards, grouping by id and asserting one version per group
    /// proves no reader ever observed mixed versions within one batch.
    #[test]
    fn no_mixed_versions_within_a_batch_during_publish_race() {
        let fleet = Arc::new(Fleet::start(
            replicas(2),
            FleetConfig {
                shards: 2,
                policy: BatchPolicy {
                    workers: 1,
                    max_batch: 8,
                    flush_deadline: Duration::from_micros(500),
                    ..BatchPolicy::default()
                },
                slo: quiet_slo(),
            },
        ));
        let cfg = CycleGanConfig::small(4);
        let stop = Arc::new(AtomicBool::new(false));
        let completions: Vec<Completion> = std::thread::scope(|s| {
            // Publisher: fans fresh versions out across the fleet.
            let f = Arc::clone(&fleet);
            let st = Arc::clone(&stop);
            s.spawn(move || {
                let mut v = 2;
                while !st.load(Ordering::Relaxed) {
                    let r = f.publish_with(v, |_| CycleGan::new(cfg, v));
                    assert!(r.iter().all(|x| x.is_ok()));
                    v += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            // Degrader: one shard repeatedly attempts a checkpoint that
            // cannot load, exercising the fallback path mid-publish.
            let f = Arc::clone(&fleet);
            let st = Arc::clone(&stop);
            s.spawn(move || {
                let bogus = Path::new("/nonexistent/ltfb-fleet-divergence.ckpt");
                while !st.load(Ordering::Relaxed) {
                    let out = f.registries()[1].publish_or_fallback(bogus, &cfg);
                    assert!(matches!(out, PublishOutcome::FellBack { .. }));
                    std::thread::sleep(Duration::from_micros(300));
                }
            });
            // Readers: collect provenance-carrying completions.
            let client = fleet.client();
            let mut all = Vec::new();
            for i in 0..400 {
                if let Ok(r) = client.try_submit(ReqKind::Forward, &[(i % 97) as f32 * 1e-2; 5]) {
                    if let Ok(c) = r.wait_completion() {
                        all.push(c);
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
            all
        });
        assert!(!completions.is_empty());
        let mut by_batch: HashMap<u64, Vec<u64>> = HashMap::new();
        for c in &completions {
            by_batch.entry(c.batch_id).or_default().push(c.version);
        }
        for (batch, versions) in &by_batch {
            assert!(
                versions.windows(2).all(|w| w[0] == w[1]),
                "batch {batch} mixed model versions: {versions:?}"
            );
        }
        if let Ok(f) = Arc::try_unwrap(fleet).map_err(|_| ()) {
            f.shutdown();
        }
    }

    #[test]
    fn obs_fleet_stamps_slo_and_edge_triggered_shed_episodes() {
        let metrics = ltfb_obs::Registry::new();
        let fleet = Fleet::start_with_obs(
            replicas(2),
            FleetConfig {
                shards: 2,
                policy: BatchPolicy {
                    workers: 1,
                    max_batch: 1,
                    queue_cap: 64,
                    flush_deadline: Duration::ZERO,
                    service_floor: Duration::from_millis(5),
                    ..BatchPolicy::default()
                },
                slo: SloPolicy {
                    spill_depth: 1,
                    shed_depth: 4,
                    adaptive: false,
                    ..SloPolicy::default()
                },
            },
            &metrics,
        );
        let client = fleet.client();
        let mut pending = Vec::new();
        let mut shed = 0;
        for i in 0..200 {
            match client.try_submit(ReqKind::Forward, &[i as f32 * 1e-3; 5]) {
                Ok(r) => pending.push(r),
                Err(ServeError::Shed { .. }) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed > 0);
        for p in pending {
            p.wait().unwrap();
        }
        let events = metrics.causal().events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"fleet.slo"), "missing slo stamp");
        assert!(kinds.contains(&"fleet.overload"), "missing overload stamp");
        assert!(kinds.contains(&"fleet.shed"), "missing shed stamp");
        // Edge-triggered: far fewer shed stamps than shed requests.
        let shed_stamps = kinds.iter().filter(|k| **k == "fleet.shed").count();
        assert!(
            (shed_stamps as u64) <= shed,
            "more stamps than sheds: {shed_stamps} > {shed}"
        );
        // Per-shard metric families exist and counted the sheds.
        let s0 = metrics.counter("serve.s0.shed_count").get();
        let s1 = metrics.counter("serve.s1.shed_count").get();
        assert_eq!(s0 + s1, shed);
        fleet.shutdown();
    }
}
