//! LRU response cache keyed on quantized inputs.
//!
//! Surrogate inference is deterministic, so repeated queries are pure
//! waste; and in design-space exploration, queries cluster. Inputs are
//! quantized onto a uniform grid before hashing, so requests within half
//! a quantum of each other share an entry — the served value is whichever
//! exact input populated the entry first. Set `quantum` small (or use
//! [`CacheKey::exact`]) when approximate sharing is unacceptable.

use std::collections::HashMap;

/// Cache key: request kind tag + quantized input coordinates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    kind: u8,
    cells: Vec<i64>,
}

impl CacheKey {
    /// Quantize `input` onto a grid of the given `quantum`.
    pub fn quantized(kind: u8, input: &[f32], quantum: f32) -> Self {
        assert!(quantum > 0.0, "quantum must be positive");
        let inv = 1.0 / quantum;
        CacheKey {
            kind,
            cells: input
                .iter()
                .map(|&v| (v as f64 * inv as f64).round() as i64)
                .collect(),
        }
    }

    /// Bit-exact key (no sharing between nearby inputs).
    pub fn exact(kind: u8, input: &[f32]) -> Self {
        CacheKey {
            kind,
            cells: input.iter().map(|&v| v.to_bits() as i64).collect(),
        }
    }
}

struct Node {
    key: CacheKey,
    value: Vec<f32>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Fixed-capacity least-recently-used map from [`CacheKey`] to a response
/// vector. Intrusive doubly-linked list over a slab: O(1) get/put.
pub struct LruCache {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "use Option<LruCache> to disable caching");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a response, promoting the entry to most-recently-used.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<f32>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(self.slab[idx].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a response, evicting the least-recently-used entry at
    /// capacity. Inserting an existing key refreshes its value/recency.
    pub fn put(&mut self, key: CacheKey, value: Vec<f32>) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        let idx = if self.map.len() >= self.capacity {
            // Reuse the LRU node in place.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slab[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slab[idx].value = value;
            idx
        } else {
            self.slab.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: f32) -> CacheKey {
        CacheKey::quantized(0, &[v], 0.1)
    }

    #[test]
    fn hit_returns_cached_value() {
        let mut c = LruCache::new(4);
        c.put(k(1.0), vec![42.0]);
        assert_eq!(c.get(&k(1.0)), Some(vec![42.0]));
        assert_eq!((c.hits(), c.misses()), (1, 0));
    }

    #[test]
    fn quantization_shares_nearby_inputs() {
        let mut c = LruCache::new(4);
        c.put(CacheKey::quantized(0, &[1.00], 0.1), vec![7.0]);
        // 1.04 rounds to the same 0.1-cell as 1.00.
        assert_eq!(
            c.get(&CacheKey::quantized(0, &[1.04], 0.1)),
            Some(vec![7.0])
        );
        // 1.06 rounds to the next cell.
        assert_eq!(c.get(&CacheKey::quantized(0, &[1.06], 0.1)), None);
        // Different kind tag never collides.
        assert_eq!(c.get(&CacheKey::quantized(1, &[1.00], 0.1)), None);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruCache::new(2);
        c.put(k(1.0), vec![1.0]);
        c.put(k(2.0), vec![2.0]);
        assert!(c.get(&k(1.0)).is_some()); // 1 is now MRU
        c.put(k(3.0), vec![3.0]); // evicts 2
        assert!(c.get(&k(2.0)).is_none());
        assert!(c.get(&k(1.0)).is_some());
        assert!(c.get(&k(3.0)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_existing_refreshes() {
        let mut c = LruCache::new(2);
        c.put(k(1.0), vec![1.0]);
        c.put(k(2.0), vec![2.0]);
        c.put(k(1.0), vec![10.0]); // refresh: 2 becomes LRU
        c.put(k(3.0), vec![3.0]); // evicts 2
        assert_eq!(c.get(&k(1.0)), Some(vec![10.0]));
        assert!(c.get(&k(2.0)).is_none());
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(16);
        for i in 0..1000 {
            c.put(k(i as f32), vec![i as f32]);
            if i % 3 == 0 {
                let _ = c.get(&k((i / 2) as f32));
            }
            assert!(c.len() <= 16);
        }
    }
}
