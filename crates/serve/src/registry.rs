//! Versioned model registry with atomic hot-swap.
//!
//! The registry owns the currently servable CycleGAN surrogate behind an
//! `RwLock<Arc<_>>`. Readers (batch workers) clone the `Arc` once per
//! batch, so a [`ModelRegistry::publish`] mid-traffic is atomic from the
//! workers' point of view: every in-flight batch finishes on the model it
//! started with, and the next batch picks up the new version. No request
//! is ever dropped by a swap.

use ltfb_core::checkpoint::{load_surrogate, CheckpointError};
use ltfb_gan::{CycleGan, CycleGanConfig};
use parking_lot::RwLock;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, shareable inference snapshot: one CycleGAN plus its
/// registry version.
pub struct ServableModel {
    gan: CycleGan,
    version: u64,
}

impl ServableModel {
    pub fn new(gan: CycleGan, version: u64) -> Self {
        ServableModel { gan, version }
    }

    pub fn gan(&self) -> &CycleGan {
        &self.gan
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    /// Input width of forward requests (experiment design parameters).
    pub fn x_dim(&self) -> usize {
        self.gan.cfg.x_dim()
    }

    /// Input width of inverse requests (output bundles).
    pub fn y_dim(&self) -> usize {
        self.gan.cfg.y_dim()
    }
}

/// Error from [`ModelRegistry::publish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// Published version must strictly increase.
    StaleVersion { current: u64, offered: u64 },
    /// Published model must have the same input/output geometry as the
    /// one it replaces — clients hold width expectations.
    GeometryMismatch(String),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::StaleVersion { current, offered } => {
                write!(f, "stale publish: version {offered} <= current {current}")
            }
            PublishError::GeometryMismatch(s) => write!(f, "geometry mismatch: {s}"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Holds the live model; hot-swappable under traffic.
pub struct ModelRegistry {
    current: RwLock<Arc<ServableModel>>,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// Start serving `gan` as `version`.
    pub fn new(gan: CycleGan, version: u64) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ServableModel::new(gan, version))),
            swaps: AtomicU64::new(0),
        }
    }

    /// Load the initial model from a surrogate checkpoint
    /// (see `ltfb_core::checkpoint::save_surrogate`).
    pub fn from_checkpoint(path: &Path, cfg: &CycleGanConfig) -> Result<Self, CheckpointError> {
        let (gan, version) = load_surrogate(path, cfg)?;
        Ok(ModelRegistry::new(gan, version))
    }

    /// The live model. Cheap (`Arc` clone under a read lock); callers
    /// keep the snapshot for the duration of one batch.
    pub fn current(&self) -> Arc<ServableModel> {
        Arc::clone(&self.current.read())
    }

    /// Version of the live model.
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// How many successful hot-swaps have happened.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Atomically replace the live model. Versions must strictly
    /// increase and geometry must match, so racing publishers resolve to
    /// the newest model and clients' width expectations stay valid.
    pub fn publish(&self, gan: CycleGan, version: u64) -> Result<(), PublishError> {
        let mut cur = self.current.write();
        if version <= cur.version() {
            return Err(PublishError::StaleVersion {
                current: cur.version(),
                offered: version,
            });
        }
        if gan.cfg.x_dim() != cur.x_dim() || gan.cfg.y_dim() != cur.y_dim() {
            return Err(PublishError::GeometryMismatch(format!(
                "offered {}x{}, serving {}x{}",
                gan.cfg.x_dim(),
                gan.cfg.y_dim(),
                cur.x_dim(),
                cur.y_dim()
            )));
        }
        *cur = Arc::new(ServableModel::new(gan, version));
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Load a surrogate checkpoint and publish it.
    pub fn publish_checkpoint(
        &self,
        path: &Path,
        cfg: &CycleGanConfig,
    ) -> Result<u64, Box<dyn std::error::Error + Send + Sync>> {
        let (gan, version) = load_surrogate(path, cfg)?;
        self.publish(gan, version)?;
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gan(seed: u64) -> CycleGan {
        CycleGan::new(CycleGanConfig::small(4), seed)
    }

    #[test]
    fn publish_requires_increasing_version() {
        let reg = ModelRegistry::new(tiny_gan(1), 5);
        assert_eq!(reg.version(), 5);
        assert!(matches!(
            reg.publish(tiny_gan(2), 5),
            Err(PublishError::StaleVersion {
                current: 5,
                offered: 5
            })
        ));
        reg.publish(tiny_gan(2), 6).unwrap();
        assert_eq!(reg.version(), 6);
        assert_eq!(reg.swap_count(), 1);
    }

    #[test]
    fn publish_rejects_geometry_change() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        let other = CycleGan::new(CycleGanConfig::small(8), 9);
        assert!(matches!(
            reg.publish(other, 2),
            Err(PublishError::GeometryMismatch(_))
        ));
    }

    #[test]
    fn snapshot_outlives_swap() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        let old = reg.current();
        reg.publish(tiny_gan(2), 2).unwrap();
        // The pre-swap snapshot still answers with its own version.
        assert_eq!(old.version(), 1);
        assert_eq!(reg.current().version(), 2);
    }

    #[test]
    fn checkpoint_round_trip() {
        let cfg = CycleGanConfig::small(4);
        let gan = CycleGan::new(cfg, 3);
        let fp = gan.generator_fingerprint();
        let dir = std::env::temp_dir().join(format!("ltfb-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ltsv");
        ltfb_core::checkpoint::save_surrogate(&path, &gan, 7).unwrap();
        let reg = ModelRegistry::from_checkpoint(&path, &cfg).unwrap();
        assert_eq!(reg.version(), 7);
        assert_eq!(reg.current().gan().generator_fingerprint(), fp);
        std::fs::remove_dir_all(&dir).ok();
    }
}
