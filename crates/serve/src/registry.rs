//! Versioned model registry with atomic hot-swap.
//!
//! The registry owns the currently servable CycleGAN surrogate behind an
//! `RwLock<Arc<_>>`. Readers (batch workers) clone the `Arc` once per
//! batch, so a [`ModelRegistry::publish`] mid-traffic is atomic from the
//! workers' point of view: every in-flight batch finishes on the model it
//! started with, and the next batch picks up the new version. No request
//! is ever dropped by a swap.

use ltfb_core::checkpoint::{load_surrogate, CheckpointError};
use ltfb_gan::{CycleGan, CycleGanConfig, QuantCycleGan};
use ltfb_obs::CausalHandle;
use ltfb_tensor::{mix_seed, seeded_rng, uniform, Matrix};
use parking_lot::RwLock;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Numeric path a [`ModelRegistry`] serves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full-precision inference (bit-identical to training eval).
    #[default]
    F32,
    /// Int8-weight inference: each publish re-quantizes the model and
    /// probe-checks it against its analytic error bound; a model that
    /// fails either step serves f32 instead of serving garbage.
    Int8,
}

/// An immutable, shareable inference snapshot: one CycleGAN plus its
/// registry version, optionally carrying an int8 shadow of the
/// inference networks.
pub struct ServableModel {
    gan: CycleGan,
    quant: Option<QuantCycleGan>,
    version: u64,
}

impl ServableModel {
    pub fn new(gan: CycleGan, version: u64) -> Self {
        ServableModel {
            gan,
            quant: None,
            version,
        }
    }

    /// Build a snapshot honoring `mode`. Under [`QuantMode::Int8`] the
    /// model is quantized and validated by [`check_quantized`]; any
    /// failure degrades this snapshot to f32 (serving stays correct,
    /// just slower) and the reason is returned alongside.
    pub fn with_mode(gan: CycleGan, version: u64, mode: QuantMode) -> (Self, Option<String>) {
        let (quant, degraded) = match mode {
            QuantMode::F32 => (None, None),
            QuantMode::Int8 => match gan.quantize_int8() {
                Ok(q) => match check_quantized(&gan, &q, version) {
                    Ok(()) => (Some(q), None),
                    Err(reason) => (None, Some(reason)),
                },
                Err(e) => (None, Some(e.to_string())),
            },
        };
        (
            ServableModel {
                gan,
                quant,
                version,
            },
            degraded,
        )
    }

    pub fn gan(&self) -> &CycleGan {
        &self.gan
    }

    /// Whether requests run on the int8 path.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Forward prediction `Dec(F(x))` on whichever numeric path this
    /// snapshot carries.
    pub fn infer_forward(&self, x: &Matrix) -> Matrix {
        match &self.quant {
            Some(q) => q.infer_forward(x),
            None => self.gan.infer_forward(x),
        }
    }

    /// Inversion `G(E(y))` on whichever numeric path this snapshot
    /// carries.
    pub fn infer_inverse(&self, y: &Matrix) -> Matrix {
        match &self.quant {
            Some(q) => q.infer_inverse(y),
            None => self.gan.infer_inverse(y),
        }
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    /// Input width of forward requests (experiment design parameters).
    pub fn x_dim(&self) -> usize {
        self.gan.cfg.x_dim()
    }

    /// Input width of inverse requests (output bundles).
    pub fn y_dim(&self) -> usize {
        self.gan.cfg.y_dim()
    }
}

/// Validate an int8 snapshot against its own accuracy contract: run a
/// deterministic probe batch through both numeric paths and assert the
/// realised error against the analytic bound from
/// [`QuantCycleGan::infer_forward_bounded`]. A non-finite or violated
/// bound means the quantization math can't vouch for this model — the
/// caller should serve f32.
///
/// The probe is seeded from `version` so repeated publishes of the same
/// weights give the same verdict.
pub fn check_quantized(gan: &CycleGan, q: &QuantCycleGan, version: u64) -> Result<(), String> {
    let mut rng = seeded_rng(mix_seed(&[version, 0x51_8a7e]));
    let probe_rows = 8;
    let x = uniform(probe_rows, gan.cfg.x_dim(), 0.0, 1.0, &mut rng);
    let y = uniform(probe_rows, gan.cfg.y_dim(), -1.0, 1.0, &mut rng);

    let check = |name: &str, got: &Matrix, want: &Matrix, bound: f32| -> Result<(), String> {
        if !bound.is_finite() {
            return Err(format!("int8 {name} error bound is non-finite ({bound})"));
        }
        let worst = got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Tiny absolute slack: the bound itself is computed in f32.
        if worst > bound + 1e-4 {
            return Err(format!(
                "int8 {name} probe error {worst} exceeds analytic bound {bound}"
            ));
        }
        Ok(())
    };

    let (yq, ef) = q.infer_forward_bounded(&x);
    check("forward", &yq, &gan.infer_forward(&x), ef)?;
    let (xq, ei) = q.infer_inverse_bounded(&y);
    check("inverse", &xq, &gan.infer_inverse(&y), ei)?;
    Ok(())
}

/// Error from [`ModelRegistry::publish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// Published version must strictly increase.
    StaleVersion { current: u64, offered: u64 },
    /// Published model must have the same input/output geometry as the
    /// one it replaces — clients hold width expectations.
    GeometryMismatch(String),
    /// A fallback was requested but no previous good model has been
    /// recorded (nothing was ever successfully published).
    NoFallback,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::StaleVersion { current, offered } => {
                write!(f, "stale publish: version {offered} <= current {current}")
            }
            PublishError::GeometryMismatch(s) => write!(f, "geometry mismatch: {s}"),
            PublishError::NoFallback => write!(f, "no last-good model to fall back to"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Holds the live model; hot-swappable under traffic.
///
/// Fault tolerance: every successful [`ModelRegistry::publish`] records
/// the *previous* live model as last-good, so when an upstream trainer
/// dies mid-run and its next checkpoint is corrupt or never arrives,
/// [`ModelRegistry::publish_or_fallback`] keeps serving the last model
/// that worked instead of taking the service down.
pub struct ModelRegistry {
    current: RwLock<Arc<ServableModel>>,
    last_good: RwLock<Option<Arc<ServableModel>>>,
    quant_mode: QuantMode,
    swaps: AtomicU64,
    fallbacks: AtomicU64,
    quant_degrades: AtomicU64,
    /// Causal-trace stamping handle (actor `serve.registry`), attached
    /// via [`ModelRegistry::attach_obs`]. All registry state transitions
    /// are stamped through one actor so the trace auditor sees them as a
    /// single serialized history.
    causal: RwLock<Option<CausalHandle>>,
}

impl ModelRegistry {
    /// Start serving `gan` as `version` on the f32 path.
    pub fn new(gan: CycleGan, version: u64) -> Self {
        ModelRegistry::with_mode(gan, version, QuantMode::F32)
    }

    /// Start serving `gan` as `version`, requesting `mode` for this and
    /// every future publish. The mode is fixed for the registry's
    /// lifetime so response caches never mix numeric paths within a
    /// version.
    pub fn with_mode(gan: CycleGan, version: u64, mode: QuantMode) -> Self {
        let quant_degrades = AtomicU64::new(0);
        let (model, degraded) = ServableModel::with_mode(gan, version, mode);
        if degraded.is_some() {
            // Release: invariant checks and telemetry read this counter
            // from other threads and pair it with degrade events.
            quant_degrades.fetch_add(1, Ordering::Release);
        }
        ModelRegistry {
            current: RwLock::new(Arc::new(model)),
            last_good: RwLock::new(None),
            quant_mode: mode,
            swaps: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            quant_degrades,
            causal: RwLock::new(None),
        }
    }

    /// Attach this registry to an observability [`ltfb_obs::Registry`]:
    /// every future publish/rollback/degrade transition is stamped onto
    /// the causal event trace as actor `serve.registry`. The state the
    /// registry is *already* in is stamped retroactively, so a trace
    /// that begins mid-lifetime still roots every later transition in a
    /// certified history.
    pub fn attach_obs(&self, obs: &ltfb_obs::Registry) {
        self.attach_obs_named(obs, "serve.registry");
    }

    /// [`ModelRegistry::attach_obs`] under an explicit actor name. Fleet
    /// shards use this (`serve.s{i}.registry`) so each replica's
    /// publish/rollback history forms its own totally-ordered actor line
    /// in the causal trace instead of colliding on one name.
    pub fn attach_obs_named(&self, obs: &ltfb_obs::Registry, actor: &str) {
        let handle = obs.causal_actor(actor);
        {
            let cur = self.current.read();
            let version = cur.version();
            if cur.is_quantized() {
                handle.local("serve.probe_ok", version, 0);
                handle.local("serve.publish", version, 1);
            } else {
                if self.quant_mode == QuantMode::Int8 {
                    handle.local("serve.probe_failed", version, 0);
                    handle.local("serve.degrade", version, 0);
                }
                handle.local("serve.publish", version, 0);
            }
        }
        *self.causal.write() = Some(handle);
    }

    /// Stamp one registry-lifecycle event if a causal trace is attached.
    fn stamp(&self, kind: &'static str, info: u64, aux: u64) {
        if let Some(c) = self.causal.read().as_ref() {
            c.local(kind, info, aux);
        }
    }

    /// Load the initial model from a surrogate checkpoint
    /// (see `ltfb_core::checkpoint::save_surrogate`).
    pub fn from_checkpoint(path: &Path, cfg: &CycleGanConfig) -> Result<Self, CheckpointError> {
        let (gan, version) = load_surrogate(path, cfg)?;
        Ok(ModelRegistry::new(gan, version))
    }

    /// The numeric path requested at construction.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant_mode
    }

    /// How many publishes were forced down to f32 because quantization
    /// failed or missed its accuracy bound.
    pub fn quant_degrade_count(&self) -> u64 {
        self.quant_degrades.load(Ordering::Acquire)
    }

    /// The live model. Cheap (`Arc` clone under a read lock); callers
    /// keep the snapshot for the duration of one batch.
    pub fn current(&self) -> Arc<ServableModel> {
        Arc::clone(&self.current.read())
    }

    /// Version of the live model.
    pub fn version(&self) -> u64 {
        self.current.read().version()
    }

    /// How many successful hot-swaps have happened.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Acquire)
    }

    /// How many times the registry fell back to the last-good model.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Acquire)
    }

    /// Atomically replace the live model. Versions must strictly
    /// increase and geometry must match, so racing publishers resolve to
    /// the newest model and clients' width expectations stay valid.
    pub fn publish(&self, gan: CycleGan, version: u64) -> Result<(), PublishError> {
        let mut cur = self.current.write();
        if version <= cur.version() {
            return Err(PublishError::StaleVersion {
                current: cur.version(),
                offered: version,
            });
        }
        if gan.cfg.x_dim() != cur.x_dim() || gan.cfg.y_dim() != cur.y_dim() {
            return Err(PublishError::GeometryMismatch(format!(
                "offered {}x{}, serving {}x{}",
                gan.cfg.x_dim(),
                gan.cfg.y_dim(),
                cur.x_dim(),
                cur.y_dim()
            )));
        }
        let (fresh, degraded) = ServableModel::with_mode(gan, version, self.quant_mode);
        if degraded.is_some() {
            self.quant_degrades.fetch_add(1, Ordering::Release);
        }
        // Stamp the probe verdict *before* the publish: the auditor's
        // probe-edge invariant requires every int8 publish to causally
        // descend from a probe_ok of the same version (and every degrade
        // from a probe_failed).
        match (self.quant_mode, &degraded) {
            (QuantMode::Int8, None) => self.stamp("serve.probe_ok", version, 0),
            (QuantMode::Int8, Some(_)) => {
                self.stamp("serve.probe_failed", version, 0);
                self.stamp("serve.degrade", version, 0);
            }
            _ => {}
        }
        let quantized = fresh.is_quantized();
        let fresh = Arc::new(fresh);
        *self.last_good.write() = Some(Arc::clone(&cur));
        *cur = fresh;
        self.swaps.fetch_add(1, Ordering::Release);
        self.stamp("serve.publish", version, u64::from(quantized));
        Ok(())
    }

    /// Test-only seam: hot-swap `gan` in with an int8 shadow **without**
    /// running the quantization probe. This deliberately violates the
    /// registry's probe protocol — the causality auditor's selftest uses
    /// it to prove that a quantized publish with no `serve.probe_ok`
    /// ancestor is detected and certified as a violation. Never call
    /// this from serving code.
    #[doc(hidden)]
    pub fn publish_unprobed(&self, gan: CycleGan, version: u64) -> Result<(), PublishError> {
        let mut cur = self.current.write();
        if version <= cur.version() {
            return Err(PublishError::StaleVersion {
                current: cur.version(),
                offered: version,
            });
        }
        let quant = gan.quantize_int8().ok();
        let quantized = quant.is_some();
        let fresh = Arc::new(ServableModel {
            gan,
            quant,
            version,
        });
        *self.last_good.write() = Some(Arc::clone(&cur));
        *cur = fresh;
        self.swaps.fetch_add(1, Ordering::Release);
        // No probe stamp on purpose: a quantized publish (aux = 1) with
        // no matching probe_ok is exactly the ordering bug the auditor
        // must catch.
        self.stamp("serve.publish", version, u64::from(quantized));
        Ok(())
    }

    /// Load a surrogate checkpoint and publish it.
    pub fn publish_checkpoint(
        &self,
        path: &Path,
        cfg: &CycleGanConfig,
    ) -> Result<u64, Box<dyn std::error::Error + Send + Sync>> {
        let (gan, version) = load_surrogate(path, cfg)?;
        self.publish(gan, version)?;
        Ok(version)
    }

    /// Reinstate the last-good model (the one the most recent publish
    /// replaced), for when the live model turns out to be bad — e.g. a
    /// trainer died mid-checkpoint and published garbage scores. The
    /// reinstated model is consumed: two consecutive rollbacks without a
    /// publish in between return [`PublishError::NoFallback`].
    pub fn rollback(&self) -> Result<u64, PublishError> {
        let mut cur = self.current.write();
        let prev = self
            .last_good
            .write()
            .take()
            .ok_or(PublishError::NoFallback)?;
        let version = prev.version();
        *cur = prev;
        self.fallbacks.fetch_add(1, Ordering::Release);
        self.stamp("serve.rollback", version, 0);
        Ok(version)
    }

    /// Try to publish a surrogate checkpoint; on *any* failure — file
    /// missing or corrupt (the upstream trainer died mid-write), stale
    /// version, geometry drift — keep serving the current model and count
    /// a fallback. Serving never goes down because training faltered.
    pub fn publish_or_fallback(&self, path: &Path, cfg: &CycleGanConfig) -> PublishOutcome {
        match self.publish_checkpoint(path, cfg) {
            Ok(version) => PublishOutcome::Published(version),
            Err(e) => {
                self.fallbacks.fetch_add(1, Ordering::Release);
                PublishOutcome::FellBack {
                    serving: self.version(),
                    reason: e.to_string(),
                }
            }
        }
    }
}

/// What [`ModelRegistry::publish_or_fallback`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The checkpoint was loaded and is now live as this version.
    Published(u64),
    /// The checkpoint was unusable; the registry kept serving `serving`.
    FellBack { serving: u64, reason: String },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gan(seed: u64) -> CycleGan {
        CycleGan::new(CycleGanConfig::small(4), seed)
    }

    #[test]
    fn publish_requires_increasing_version() {
        let reg = ModelRegistry::new(tiny_gan(1), 5);
        assert_eq!(reg.version(), 5);
        assert!(matches!(
            reg.publish(tiny_gan(2), 5),
            Err(PublishError::StaleVersion {
                current: 5,
                offered: 5
            })
        ));
        reg.publish(tiny_gan(2), 6).unwrap();
        assert_eq!(reg.version(), 6);
        assert_eq!(reg.swap_count(), 1);
    }

    #[test]
    fn publish_rejects_geometry_change() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        let other = CycleGan::new(CycleGanConfig::small(8), 9);
        assert!(matches!(
            reg.publish(other, 2),
            Err(PublishError::GeometryMismatch(_))
        ));
    }

    #[test]
    fn snapshot_outlives_swap() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        let old = reg.current();
        reg.publish(tiny_gan(2), 2).unwrap();
        // The pre-swap snapshot still answers with its own version.
        assert_eq!(old.version(), 1);
        assert_eq!(reg.current().version(), 2);
    }

    #[test]
    fn rollback_reinstates_the_previous_model() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        let fp_v1 = reg.current().gan().generator_fingerprint();
        assert!(
            matches!(reg.rollback(), Err(PublishError::NoFallback)),
            "nothing published yet, nothing to roll back to"
        );
        reg.publish(tiny_gan(2), 2).unwrap();
        assert_eq!(reg.rollback().unwrap(), 1);
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.current().gan().generator_fingerprint(), fp_v1);
        assert_eq!(reg.fallback_count(), 1);
        // The reinstated model was consumed; a second rollback is typed.
        assert!(matches!(reg.rollback(), Err(PublishError::NoFallback)));
        // And publishing the once-rejected version again now works.
        reg.publish(tiny_gan(3), 2).unwrap();
        assert_eq!(reg.version(), 2);
    }

    #[test]
    fn publish_or_fallback_keeps_serving_on_bad_checkpoints() {
        let cfg = CycleGanConfig::small(4);
        let reg = ModelRegistry::new(CycleGan::new(cfg, 1), 3);
        let dir = std::env::temp_dir().join(format!("ltfb-serve-fb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing checkpoint: the dead trainer never wrote one.
        let out = reg.publish_or_fallback(&dir.join("never-written.ltsv"), &cfg);
        assert!(
            matches!(out, PublishOutcome::FellBack { serving: 3, .. }),
            "got {out:?}"
        );
        // Corrupt checkpoint: the trainer died mid-write.
        let torn = dir.join("torn.ltsv");
        std::fs::write(&torn, b"LTSVnot really a checkpoint").unwrap();
        let out = reg.publish_or_fallback(&torn, &cfg);
        assert!(matches!(out, PublishOutcome::FellBack { serving: 3, .. }));
        assert_eq!(reg.version(), 3, "still serving the last good model");
        assert_eq!(reg.fallback_count(), 2);

        // A healthy checkpoint resumes normal publishing.
        let good = dir.join("good.ltsv");
        ltfb_core::checkpoint::save_surrogate(&good, &CycleGan::new(cfg, 9), 4).unwrap();
        assert_eq!(
            reg.publish_or_fallback(&good, &cfg),
            PublishOutcome::Published(4)
        );
        assert_eq!(reg.version(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn int8_mode_serves_quantized_and_requantizes_on_publish() {
        let reg = ModelRegistry::with_mode(tiny_gan(1), 1, QuantMode::Int8);
        assert_eq!(reg.quant_mode(), QuantMode::Int8);
        assert!(reg.current().is_quantized());
        assert_eq!(reg.quant_degrade_count(), 0);

        // Outputs follow the int8 path but stay near the f32 answer.
        let mut rng = ltfb_tensor::seeded_rng(3);
        let x = ltfb_tensor::uniform(4, reg.current().x_dim(), 0.0, 1.0, &mut rng);
        let q_out = reg.current().infer_forward(&x);
        let f_out = reg.current().gan().infer_forward(&x);
        assert_eq!(q_out.shape(), f_out.shape());
        for (a, b) in q_out.as_slice().iter().zip(f_out.as_slice()) {
            assert!((a - b).abs() < 0.5, "int8 drifted: {a} vs {b}");
        }

        // Publishing re-quantizes the fresh weights.
        reg.publish(tiny_gan(2), 2).unwrap();
        assert!(reg.current().is_quantized());
    }

    #[test]
    fn unquantizable_publish_degrades_to_f32_but_keeps_serving() {
        let reg = ModelRegistry::with_mode(tiny_gan(1), 1, QuantMode::Int8);
        let mut bad = tiny_gan(2);
        bad.networks_mut()[2].params_mut()[0].value.as_mut_slice()[0] = f32::NAN;
        reg.publish(bad, 2).unwrap();
        assert_eq!(reg.version(), 2, "publish itself succeeds");
        assert!(
            !reg.current().is_quantized(),
            "NaN weights must not serve int8"
        );
        assert_eq!(reg.quant_degrade_count(), 1);
    }

    #[test]
    fn f32_mode_never_quantizes() {
        let reg = ModelRegistry::new(tiny_gan(1), 1);
        assert_eq!(reg.quant_mode(), QuantMode::F32);
        assert!(!reg.current().is_quantized());
        reg.publish(tiny_gan(2), 2).unwrap();
        assert!(!reg.current().is_quantized());
    }

    #[test]
    fn registry_transitions_stamp_the_causal_trace() {
        let obs = ltfb_obs::Registry::new();
        let reg = ModelRegistry::with_mode(tiny_gan(1), 1, QuantMode::Int8);
        reg.attach_obs(&obs);
        reg.publish(tiny_gan(2), 2).unwrap();
        reg.rollback().unwrap();
        let kinds: Vec<&str> = obs.causal().events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                "serve.probe_ok",
                "serve.publish", // retroactive stamp of the initial v1
                "serve.probe_ok",
                "serve.publish", // v2 goes live, probed
                "serve.rollback",
            ]
        );
        let publishes: Vec<(u64, u64)> = obs
            .causal()
            .events()
            .iter()
            .filter(|e| e.kind == "serve.publish")
            .map(|e| (e.info, e.aux))
            .collect();
        assert_eq!(publishes, [(1, 1), (2, 1)], "both publishes served int8");
    }

    #[test]
    fn unprobed_publish_skips_the_probe_stamp() {
        let obs = ltfb_obs::Registry::new();
        let reg = ModelRegistry::with_mode(tiny_gan(1), 1, QuantMode::Int8);
        reg.attach_obs(&obs);
        reg.publish_unprobed(tiny_gan(2), 2).unwrap();
        assert!(reg.current().is_quantized());
        let v2: Vec<&str> = obs
            .causal()
            .events()
            .iter()
            .filter(|e| e.info == 2)
            .map(|e| e.kind)
            .collect();
        assert_eq!(v2, ["serve.publish"], "no probe event precedes v2");
    }

    #[test]
    fn checkpoint_round_trip() {
        let cfg = CycleGanConfig::small(4);
        let gan = CycleGan::new(cfg, 3);
        let fp = gan.generator_fingerprint();
        let dir = std::env::temp_dir().join(format!("ltfb-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ltsv");
        ltfb_core::checkpoint::save_surrogate(&path, &gan, 7).unwrap();
        let reg = ModelRegistry::from_checkpoint(&path, &cfg).unwrap();
        assert_eq!(reg.version(), 7);
        assert_eq!(reg.current().gan().generator_fingerprint(), fp);
        std::fs::remove_dir_all(&dir).ok();
    }
}
