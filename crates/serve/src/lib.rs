//! `ltfb-serve` — batched surrogate inference serving.
//!
//! Once LTFB training (see `ltfb-train`) has produced a winning CycleGAN
//! surrogate, the model's value is in answering *queries*: forward
//! (`x -> Dec(F(x))`, design parameters to predicted output bundle) and
//! inverse (`y -> G(E(y))`, desired outputs back to design parameters).
//! This crate turns a checkpointed surrogate into a low-latency,
//! high-throughput in-process service:
//!
//! - [`registry`] — versioned [`ModelRegistry`](registry::ModelRegistry)
//!   with atomic hot-swap: training can publish improved checkpoints
//!   mid-traffic without dropping a single in-flight request.
//! - [`batcher`] — the micro-batching engine: a bounded request queue,
//!   worker threads that coalesce concurrent requests into GEMM-friendly
//!   batches under a max-batch-size / flush-deadline policy, with
//!   backpressure and graceful shutdown.
//! - [`cache`] — an LRU response cache keyed on quantized inputs, for
//!   workloads that revisit the same neighbourhoods of design space.
//! - [`telemetry`] — latency percentiles, throughput, queue depth, and
//!   the batch-size histogram, exportable as CSV or JSON.
//! - [`loadgen`] — a multi-threaded closed-/open-loop load generator
//!   (coordinated-omission-corrected latency, heavy-tailed diurnal
//!   Zipf traffic models) for benchmarking the above.
//! - [`fleet`] — the sharded serving fleet: consistent-hash routing with
//!   hot-key load spill across N servers, SLO admission control
//!   ([`ServeError::Shed`](batcher::ServeError::Shed)), and adaptive
//!   micro-batch sizing against a p99 target.
//!
//! Batched inference is bit-identical to one-at-a-time inference (the
//! GEMM kernels compute each output row independently in the same k-tile
//! order), so batching is purely a throughput lever — never an accuracy
//! trade.
//!
//! ```no_run
//! use ltfb_serve::{BatchPolicy, ModelRegistry, Server};
//! use ltfb_gan::{CycleGan, CycleGanConfig};
//! use std::sync::Arc;
//!
//! let cfg = CycleGanConfig::small(4);
//! let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1));
//! let server = Server::start(registry, BatchPolicy::default());
//! let client = server.client();
//! let y = client.forward(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
//! println!("predicted {} outputs", y.len());
//! let stats = server.shutdown();
//! println!("p99 latency: {:.1}us", stats.latency_p99_us);
//! ```

#![forbid(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod fleet;
pub mod loadgen;
pub mod registry;
pub mod telemetry;

pub use batcher::{BatchKnobs, BatchPolicy, Completion, Response, ServeClient, ServeError, Server};
pub use cache::{CacheKey, LruCache};
pub use fleet::{Fleet, FleetClient, FleetConfig, FleetStats, SloPolicy};
pub use loadgen::{
    run_load, run_traffic, LoadGenConfig, LoadMode, LoadReport, LoadTarget, TrafficModel,
};
pub use registry::{
    check_quantized, ModelRegistry, PublishError, PublishOutcome, QuantMode, ServableModel,
};
pub use telemetry::{ReqKind, ServeStats, Telemetry};
