//! The micro-batching engine: bounded request queue, coalescing workers,
//! and the client handle.
//!
//! Requests (forward `x -> y` and inverse `y -> x`) land on one bounded
//! MPMC queue. Each worker blocks for a first request, then coalesces up
//! to `max_batch - 1` more until the flush deadline lapses, packs each
//! kind's inputs into a single matrix, and runs **one** forward pass per
//! kind over the whole pack — row-independent GEMM kernels make the
//! batched results bit-identical to sequential single-sample inference
//! while amortising per-call overhead into GEMM-friendly shapes.
//!
//! Backpressure: the queue is bounded; blocking submits stall producers
//! and [`ServeClient::try_submit_forward`]/[`try_submit_inverse`] report
//! [`ServeError::Overloaded`] instead. Shutdown is graceful by
//! construction: dropping the server's sender lets workers drain every
//! queued request before exiting, so no accepted request goes
//! unanswered.
//!
//! [`try_submit_inverse`]: ServeClient::try_submit_inverse

use crate::cache::{CacheKey, LruCache};
use crate::registry::{ModelRegistry, ServableModel};
use crate::telemetry::{ReqKind, ServeStats, Telemetry};
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ltfb_tensor::Matrix;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coalescing policy of the micro-batching engine.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest number of requests packed into one forward pass.
    pub max_batch: usize,
    /// How long a partially filled batch waits for company before it is
    /// flushed anyway. Bounds the batching-induced latency.
    pub flush_deadline: Duration,
    /// Bound of the request queue (backpressure threshold).
    pub queue_cap: usize,
    /// Number of batch-worker threads.
    pub workers: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Quantization grid of cache keys (see `cache` module docs).
    pub cache_quantum: f32,
    /// Synthetic per-batch service-time floor: each worker sleeps this
    /// long before dispatching a batch. ZERO in production — the knob
    /// exists so tests and load experiments can model a slow or stalled
    /// backend deterministically (the coordinated-omission regression
    /// test stalls a server this way).
    pub service_floor: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            flush_deadline: Duration::from_micros(50),
            queue_cap: 1024,
            workers: 2,
            cache_capacity: 0,
            cache_quantum: 1.0e-3,
            service_floor: Duration::ZERO,
        }
    }
}

impl BatchPolicy {
    /// Degenerate policy processing every request alone — the "no
    /// micro-batching" baseline for benchmarks.
    pub fn sequential() -> Self {
        BatchPolicy {
            max_batch: 1,
            flush_deadline: Duration::ZERO,
            ..BatchPolicy::default()
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Input width does not match the live model's geometry.
    WrongWidth { expected: usize, got: usize },
    /// Input contains a NaN or infinity at the given index. Rejected at
    /// submission: non-finite coordinates would quantize onto arbitrary
    /// cache cells (`NaN.round() as i64` is 0) and poison cached
    /// responses for legitimate nearby inputs.
    NonFinite { index: usize },
    /// Queue full (only from the non-blocking submit paths).
    Overloaded,
    /// Shed by SLO admission control: every fleet shard's queue was at
    /// or beyond the configured budget, so accepting the request could
    /// only grow the queues without bound and blow the latency SLO for
    /// everyone already queued. `depth` is the shallowest queue observed.
    Shed { depth: usize, budget: usize },
    /// Server shut down before the request could be accepted.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WrongWidth { expected, got } => {
                write!(f, "input width {got}, model expects {expected}")
            }
            ServeError::NonFinite { index } => {
                write!(f, "input[{index}] is not finite")
            }
            ServeError::Overloaded => write!(f, "request queue full"),
            ServeError::Shed { depth, budget } => {
                write!(
                    f,
                    "shed by admission control (depth {depth} >= budget {budget})"
                )
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

struct Request {
    kind: ReqKind,
    input: Vec<f32>,
    reply: Sender<Completion>,
    enqueued: Instant,
}

/// A completed request with its serving provenance: which model version
/// answered, which worker micro-batch it rode in, and when the worker
/// finished it. The timestamp is taken server-side at reply time, so a
/// client that harvests responses late (an open-loop load generator
/// draining a backlog) still measures true completion times.
pub struct Completion {
    pub output: Vec<f32>,
    /// Registry version of the model snapshot that served this request.
    pub version: u64,
    /// Server-wide id of the micro-batch this request was packed into;
    /// all requests of one batch share a model snapshot (and this id).
    pub batch_id: u64,
    /// When the worker sent the reply.
    pub finished: Instant,
}

/// A completed inference response.
pub struct Response {
    rx: Receiver<Completion>,
}

impl Response {
    /// Block until the result arrives.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        self.wait_completion().map(|c| c.output)
    }

    /// Block until the result arrives, keeping the serving provenance
    /// (model version, batch id, completion timestamp).
    pub fn wait_completion(self) -> Result<Completion, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }
}

/// Cloneable client handle; all clones feed the same queue.
///
/// Holds the queue's sender only weakly: the server owns the sole strong
/// reference, so [`Server::shutdown`] disconnects the channel even while
/// client handles are still alive — their submits then fail fast with
/// [`ServeError::ShuttingDown`] instead of queueing into the void.
#[derive(Clone)]
pub struct ServeClient {
    tx: Weak<Sender<Request>>,
    registry: Arc<ModelRegistry>,
    telemetry: Arc<Telemetry>,
}

impl ServeClient {
    fn expected_width(&self, kind: ReqKind) -> usize {
        let m = self.registry.current();
        match kind {
            ReqKind::Forward => m.x_dim(),
            ReqKind::Inverse => m.y_dim(),
        }
    }

    fn make_request(
        &self,
        kind: ReqKind,
        input: &[f32],
    ) -> Result<(Request, Response), ServeError> {
        let expected = self.expected_width(kind);
        if input.len() != expected {
            return Err(ServeError::WrongWidth {
                expected,
                got: input.len(),
            });
        }
        if let Some(index) = input.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFinite { index });
        }
        let (reply, rx) = bounded(1);
        let req = Request {
            kind,
            input: input.to_vec(),
            reply,
            enqueued: Instant::now(),
        };
        Ok((req, Response { rx }))
    }

    /// Submit a forward request (`x -> Dec(F(x))`), blocking while the
    /// queue is full; returns a waitable [`Response`].
    pub fn submit_forward(&self, x: &[f32]) -> Result<Response, ServeError> {
        self.submit(ReqKind::Forward, x)
    }

    /// Submit an inverse request (`y -> G(E(y))`), blocking while the
    /// queue is full.
    pub fn submit_inverse(&self, y: &[f32]) -> Result<Response, ServeError> {
        self.submit(ReqKind::Inverse, y)
    }

    /// Blocking submit of either kind (the load generator's generic
    /// entry point; see [`ServeClient::submit_forward`]).
    pub fn submit(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        let (req, resp) = self.make_request(kind, input)?;
        let tx = self.tx.upgrade().ok_or(ServeError::ShuttingDown)?;
        self.telemetry.record_arrival();
        self.telemetry.record_queue_depth(tx.len());
        tx.send(req).map_err(|_| ServeError::ShuttingDown)?;
        Ok(resp)
    }

    /// Non-blocking submit: [`ServeError::Overloaded`] when the queue is
    /// at capacity (open-loop load generators use this).
    pub fn try_submit_forward(&self, x: &[f32]) -> Result<Response, ServeError> {
        self.try_submit(ReqKind::Forward, x)
    }

    /// Non-blocking inverse submit.
    pub fn try_submit_inverse(&self, y: &[f32]) -> Result<Response, ServeError> {
        self.try_submit(ReqKind::Inverse, y)
    }

    /// Non-blocking submit of either kind.
    pub fn try_submit(&self, kind: ReqKind, input: &[f32]) -> Result<Response, ServeError> {
        let (req, resp) = self.make_request(kind, input)?;
        let tx = self.tx.upgrade().ok_or(ServeError::ShuttingDown)?;
        self.telemetry.record_arrival();
        self.telemetry.record_queue_depth(tx.len());
        match tx.try_send(req) {
            Ok(()) => Ok(resp),
            Err(TrySendError::Full(_)) => {
                self.telemetry.record_rejected();
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Requests currently queued behind this client's server (0 after
    /// shutdown). The fleet router reads this for spill/shed decisions.
    pub fn queue_depth(&self) -> usize {
        self.tx.upgrade().map_or(0, |t| t.len())
    }

    /// Shared telemetry sink of this client's server.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Blocking round-trip forward inference.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.submit_forward(x)?.wait()
    }

    /// Blocking round-trip inverse inference.
    pub fn inverse(&self, y: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.submit_inverse(y)?.wait()
    }

    /// Version of the model answering new requests.
    pub fn model_version(&self) -> u64 {
        self.registry.version()
    }
}

/// The live-tunable half of a [`BatchPolicy`]: workers re-read these at
/// every batch boundary, so the fleet's adaptive controller can retune
/// the coalescing window against a p99 target without restarting the
/// server. Plain tuning knobs — they synchronise no other data, so
/// relaxed loads/stores are sufficient (a worker reading a knob one
/// batch late is indistinguishable from the controller running later).
pub struct BatchKnobs {
    max_batch: AtomicUsize,
    flush_us: AtomicU64,
}

impl BatchKnobs {
    fn new(policy: &BatchPolicy) -> Self {
        BatchKnobs {
            max_batch: AtomicUsize::new(policy.max_batch),
            flush_us: AtomicU64::new(policy.flush_deadline.as_micros() as u64),
        }
    }

    pub fn max_batch(&self) -> usize {
        self.max_batch.load(Ordering::Relaxed).max(1)
    }

    pub fn flush_deadline(&self) -> Duration {
        Duration::from_micros(self.flush_us.load(Ordering::Relaxed))
    }

    /// Install new knob values (takes effect at the next batch boundary).
    pub fn set(&self, max_batch: usize, flush_deadline: Duration) {
        self.max_batch.store(max_batch.max(1), Ordering::Relaxed);
        self.flush_us
            .store(flush_deadline.as_micros() as u64, Ordering::Relaxed);
    }
}

/// The serving engine: registry + workers + telemetry under one policy.
pub struct Server {
    tx: Option<Arc<Sender<Request>>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ModelRegistry>,
    telemetry: Arc<Telemetry>,
    knobs: Arc<BatchKnobs>,
}

impl Server {
    /// Spawn the batch workers and start serving the registry's current
    /// model.
    pub fn start(registry: Arc<ModelRegistry>, policy: BatchPolicy) -> Server {
        Self::start_inner(registry, policy, Telemetry::new())
    }

    /// [`Server::start`] with the telemetry sink mirrored into a shared
    /// `ltfb-obs` registry (see [`Telemetry::with_registry`]), so serving
    /// metrics join the unified cross-subsystem export.
    pub fn start_with_obs(
        registry: Arc<ModelRegistry>,
        policy: BatchPolicy,
        metrics: &ltfb_obs::Registry,
    ) -> Server {
        Self::start_inner(registry, policy, Telemetry::with_registry(metrics))
    }

    /// [`Server::start`] with a caller-built telemetry sink — the fleet
    /// uses this to give each shard its own metric-family prefix.
    pub(crate) fn start_with_telemetry(
        registry: Arc<ModelRegistry>,
        policy: BatchPolicy,
        telemetry: Telemetry,
    ) -> Server {
        Self::start_inner(registry, policy, telemetry)
    }

    fn start_inner(
        registry: Arc<ModelRegistry>,
        policy: BatchPolicy,
        telemetry: Telemetry,
    ) -> Server {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.workers >= 1, "need at least one worker");
        assert!(policy.queue_cap >= 1, "queue_cap must be at least 1");
        let (tx, rx) = bounded::<Request>(policy.queue_cap);
        let telemetry = Arc::new(telemetry);
        let knobs = Arc::new(BatchKnobs::new(&policy));
        // Batch ids are unique across every server in the process (each
        // server gets its own 2^40-wide namespace), so a fleet client
        // can group completions from different shards by batch id alone.
        static NEXT_SERVER_ID: AtomicU64 = AtomicU64::new(0);
        let server_id = NEXT_SERVER_ID.fetch_add(1, Ordering::Relaxed);
        let batch_ids = Arc::new(AtomicU64::new(server_id << 40));
        let cache = if policy.cache_capacity > 0 {
            Some(Arc::new(Mutex::new(LruCache::new(policy.cache_capacity))))
        } else {
            None
        };
        let workers = (0..policy.workers)
            .map(|i| {
                let rx = rx.clone();
                let registry = Arc::clone(&registry);
                let telemetry = Arc::clone(&telemetry);
                let knobs = Arc::clone(&knobs);
                let batch_ids = Arc::clone(&batch_ids);
                let cache = cache.clone();
                std::thread::Builder::new()
                    .name(format!("ltfb-serve-{i}"))
                    .spawn(move || {
                        worker_loop(rx, registry, telemetry, cache, policy, knobs, batch_ids)
                    })
                    .expect("invariant: OS can spawn the batch workers")
            })
            .collect();
        Server {
            tx: Some(Arc::new(tx)),
            workers,
            registry,
            telemetry,
            knobs,
        }
    }

    /// A new client handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: Arc::downgrade(
                self.tx
                    .as_ref()
                    .expect("invariant: client() is only callable before shutdown"),
            ),
            registry: Arc::clone(&self.registry),
            telemetry: Arc::clone(&self.telemetry),
        }
    }

    /// The registry backing this server (for hot-swaps under traffic).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live telemetry sink.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The live-tunable coalescing knobs (see [`BatchKnobs`]).
    pub fn knobs(&self) -> &Arc<BatchKnobs> {
        &self.knobs
    }

    /// Requests currently queued (0 after shutdown).
    pub fn queue_depth(&self) -> usize {
        self.tx.as_ref().map_or(0, |t| t.len())
    }

    /// Stop accepting requests, drain everything already queued, join the
    /// workers, and return the final stats. Requests accepted before the
    /// call are all answered.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.telemetry.summary()
    }

    fn shutdown_in_place(&mut self) {
        // The server holds the only strong reference to the sender
        // (clients hold weak ones), so dropping it disconnects the
        // channel: workers finish the backlog, then exit. A submit racing
        // the drop either lands before disconnect (and is served from the
        // backlog) or fails fast with ShuttingDown — never hangs.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    rx: Receiver<Request>,
    registry: Arc<ModelRegistry>,
    telemetry: Arc<Telemetry>,
    cache: Option<Arc<Mutex<LruCache>>>,
    policy: BatchPolicy,
    knobs: Arc<BatchKnobs>,
    batch_ids: Arc<AtomicU64>,
) {
    loop {
        // Block for work; a disconnect with an empty queue ends the loop.
        let first = match rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        // Knobs are re-read at every batch boundary so the adaptive
        // controller's retuning takes effect without a restart.
        let max_batch = knobs.max_batch();
        let flush = knobs.flush_deadline();
        let mut batch = Vec::with_capacity(max_batch);
        batch.push(first);
        if flush.is_zero() {
            // Zero-deadline fast path: dispatch immediately with
            // whatever is already queued — no clock reads, no timed
            // waits. (The general path below computed a deadline and
            // consulted the clock twice per request even when the
            // deadline was zero-width.)
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(r) => batch.push(r),
                    Err(_) => break,
                }
            }
        } else {
            // Coalesce until the batch is full or the deadline lapses.
            let deadline = Instant::now() + flush;
            while batch.len() < max_batch {
                let now = Instant::now();
                let got = if now >= deadline {
                    rx.try_recv().ok()
                } else {
                    match rx.recv_timeout(deadline - now) {
                        Ok(r) => Some(r),
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            None
                        }
                    }
                };
                match got {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
        }
        if !policy.service_floor.is_zero() {
            // Synthetic stall (see BatchPolicy::service_floor docs).
            std::thread::sleep(policy.service_floor);
        }
        // One model snapshot for the whole batch: a concurrent hot-swap
        // takes effect at the next batch boundary. Every reply of this
        // batch carries the snapshot's version and the shared batch id,
        // so clients can verify the no-mixed-versions contract.
        let model = registry.current();
        let batch_id = batch_ids.fetch_add(1, Ordering::Relaxed);
        let quantum = policy.cache_quantum;
        process_kind(
            &batch,
            ReqKind::Forward,
            &model,
            &telemetry,
            cache.as_deref(),
            quantum,
            batch_id,
        );
        process_kind(
            &batch,
            ReqKind::Inverse,
            &model,
            &telemetry,
            cache.as_deref(),
            quantum,
            batch_id,
        );
    }
}

/// Serve every request of `kind` in the batch: answer cache hits, pack
/// the misses into one matrix, run a single batched forward pass, reply,
/// and backfill the cache.
#[allow(clippy::too_many_arguments)] // one dispatch site, mirrors worker_loop state
fn process_kind(
    batch: &[Request],
    kind: ReqKind,
    model: &ServableModel,
    telemetry: &Telemetry,
    cache: Option<&Mutex<LruCache>>,
    cache_quantum: f32,
    batch_id: u64,
) {
    let reqs: Vec<&Request> = batch.iter().filter(|r| r.kind == kind).collect();
    if reqs.is_empty() {
        return;
    }
    let kind_tag = match kind {
        ReqKind::Forward => 0u8,
        ReqKind::Inverse => 1u8,
    };
    // Cache pass: answer hits immediately, collect misses for the pack.
    let mut misses: Vec<&Request> = Vec::with_capacity(reqs.len());
    let mut miss_keys: Vec<Option<CacheKey>> = Vec::with_capacity(reqs.len());
    for r in reqs {
        if let Some(c) = cache {
            let key = CacheKey::quantized(kind_tag, &r.input, cache_quantum);
            if let Some(hit) = c.lock().get(&key) {
                let finished = Instant::now();
                let latency = finished.duration_since(r.enqueued).as_secs_f64() * 1e6;
                let _ = r.reply.send(Completion {
                    output: hit,
                    version: model.version(),
                    batch_id,
                    finished,
                });
                telemetry.record_request(kind, latency, true);
                continue;
            }
            miss_keys.push(Some(key));
        } else {
            miss_keys.push(None);
        }
        misses.push(r);
    }
    if misses.is_empty() {
        return;
    }
    // Pack misses row-wise into one matrix and run a single forward pass.
    let width = misses[0].input.len();
    let mut flat = Vec::with_capacity(misses.len() * width);
    for r in &misses {
        flat.extend_from_slice(&r.input);
    }
    let packed = Matrix::from_vec(misses.len(), width, flat);
    // The snapshot dispatches to its own numeric path (f32 or int8).
    let out = match kind {
        ReqKind::Forward => model.infer_forward(&packed),
        ReqKind::Inverse => model.infer_inverse(&packed),
    };
    telemetry.record_batch(misses.len());
    for (i, r) in misses.iter().enumerate() {
        let row = out.row(i).to_vec();
        if let (Some(c), Some(key)) = (cache, miss_keys[i].take()) {
            c.lock().put(key, row.clone());
        }
        let finished = Instant::now();
        let latency = finished.duration_since(r.enqueued).as_secs_f64() * 1e6;
        let _ = r.reply.send(Completion {
            output: row,
            version: model.version(),
            batch_id,
            finished,
        });
        telemetry.record_request(kind, latency, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltfb_gan::{CycleGan, CycleGanConfig};

    fn tiny_server(policy: BatchPolicy) -> Server {
        let cfg = CycleGanConfig::small(4);
        let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1));
        Server::start(registry, policy)
    }

    #[test]
    fn round_trip_forward_and_inverse() {
        let server = tiny_server(BatchPolicy::default());
        let client = server.client();
        let y_dim = server.registry().current().y_dim();
        let y = client.forward(&[0.3, 0.5, 0.2, 0.8, 0.1]).unwrap();
        assert_eq!(y.len(), y_dim);
        assert!(y.iter().all(|v| v.is_finite()));
        let x = client.inverse(&vec![0.25; y_dim]).unwrap();
        assert_eq!(x.len(), 5);
        // Inverse model ends in a sigmoid: outputs are design params in (0,1).
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        server.shutdown();
    }

    #[test]
    fn wrong_width_rejected_without_queueing() {
        let server = tiny_server(BatchPolicy::default());
        let client = server.client();
        assert_eq!(
            client.forward(&[1.0, 2.0]),
            Err(ServeError::WrongWidth {
                expected: 5,
                got: 2
            })
        );
        let stats = server.shutdown();
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn non_finite_inputs_rejected_at_submit() {
        // Regression: a NaN coordinate used to quantize onto cell 0
        // (`NaN.round() as i64 == 0`) and could poison the response cache
        // for legitimate near-zero inputs.
        let server = tiny_server(BatchPolicy {
            cache_capacity: 64,
            ..BatchPolicy::default()
        });
        let client = server.client();
        assert_eq!(
            client.forward(&[0.1, f32::NAN, 0.3, 0.4, 0.5]),
            Err(ServeError::NonFinite { index: 1 })
        );
        let y_dim = server.registry().current().y_dim();
        let mut y = vec![0.2; y_dim];
        y[y_dim - 1] = f32::INFINITY;
        assert_eq!(
            client.inverse(&y),
            Err(ServeError::NonFinite { index: y_dim - 1 })
        );
        assert_eq!(
            client.try_submit_forward(&[f32::NEG_INFINITY; 5]).err(),
            Some(ServeError::NonFinite { index: 0 })
        );
        // A legitimate near-zero input is unaffected by the rejects.
        let clean = client.forward(&[0.0; 5]).unwrap();
        assert!(clean.iter().all(|v| v.is_finite()));
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1, "rejected requests never queued");
    }

    #[test]
    fn obs_server_mirrors_traffic_into_registry() {
        let metrics = ltfb_obs::Registry::new();
        let cfg = CycleGanConfig::small(4);
        let registry = Arc::new(ModelRegistry::new(CycleGan::new(cfg, 1), 1));
        let server = Server::start_with_obs(registry, BatchPolicy::default(), &metrics);
        let client = server.client();
        for i in 0..5 {
            client.forward(&[i as f32 * 0.1; 5]).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(metrics.counter("serve.forward").get(), 5);
        assert_eq!(
            metrics
                .histogram("serve.latency_us", ltfb_obs::Buckets::latency_us())
                .count(),
            stats.completed
        );
    }

    #[test]
    fn batch_of_concurrent_requests_coalesces() {
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 16,
            flush_deadline: Duration::from_millis(20),
            ..BatchPolicy::default()
        });
        let client = server.client();
        let pending: Vec<Response> = (0..8)
            .map(|i| client.submit_forward(&[i as f32 * 0.1; 5]).unwrap())
            .collect();
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 8);
        // One worker + 20ms deadline: requests must have shared batches.
        assert!(stats.mean_batch > 1.0, "no coalescing happened: {stats:?}");
    }

    #[test]
    fn sequential_policy_never_batches() {
        let server = tiny_server(BatchPolicy::sequential());
        let client = server.client();
        for i in 0..6 {
            client.forward(&[i as f32 * 0.1; 5]).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.max_batch, 1);
    }

    #[test]
    fn cache_serves_repeats_without_inference() {
        let server = tiny_server(BatchPolicy {
            cache_capacity: 64,
            ..BatchPolicy::default()
        });
        let client = server.client();
        let x = [0.4, 0.1, 0.9, 0.2, 0.6];
        let first = client.forward(&x).unwrap();
        let second = client.forward(&x).unwrap();
        assert_eq!(first, second);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn shutdown_answers_all_accepted_requests() {
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 4,
            flush_deadline: Duration::from_micros(50),
            ..BatchPolicy::default()
        });
        let client = server.client();
        let pending: Vec<Response> = (0..32)
            .map(|_| client.submit_forward(&[0.5; 5]).unwrap())
            .collect();
        let stats = server.shutdown(); // accepted => answered
        assert_eq!(stats.completed, 32);
        for p in pending {
            assert!(p.wait().is_ok(), "accepted request lost at shutdown");
        }
        // New submissions fail fast.
        assert_eq!(client.forward(&[0.5; 5]), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn zero_flush_deadline_dispatches_immediately() {
        // Regression pin for the flush-deadline edge: with
        // `flush_deadline: Duration::ZERO` and a max_batch > 1, a lone
        // request must be dispatched at once — no timed wait, no
        // deadline arithmetic. A generous bound still catches a path
        // that waits on a timer per request.
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 64,
            flush_deadline: Duration::ZERO,
            ..BatchPolicy::default()
        });
        let client = server.client();
        for _ in 0..5 {
            let t0 = Instant::now();
            client.forward(&[0.5; 5]).unwrap();
            assert!(
                t0.elapsed() < Duration::from_millis(250),
                "zero-deadline request waited {:?}",
                t0.elapsed()
            );
        }
        // Backlogged requests still coalesce on the fast path: queue a
        // burst while the single worker is parked, then check packs > 1.
        let pending: Vec<Response> = (0..32)
            .map(|_| client.submit_forward(&[0.5; 5]).unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 37);
        assert!(
            stats.mean_batch > 1.0,
            "zero-deadline path stopped draining the backlog: {stats:?}"
        );
    }

    #[test]
    fn knob_retune_takes_effect_at_batch_boundary() {
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 16,
            flush_deadline: Duration::from_millis(20),
            ..BatchPolicy::default()
        });
        let client = server.client();
        client.forward(&[0.1; 5]).unwrap();
        // Retune to strictly sequential: no pack may exceed 1 from here.
        server.knobs().set(1, Duration::ZERO);
        assert_eq!(server.knobs().max_batch(), 1);
        assert_eq!(server.knobs().flush_deadline(), Duration::ZERO);
        let pending: Vec<Response> = (0..12)
            .map(|_| client.submit_forward(&[0.3; 5]).unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 13);
        assert_eq!(stats.max_batch, 1, "retuned max_batch ignored: {stats:?}");
    }

    #[test]
    fn completions_carry_version_and_shared_batch_id() {
        let server = tiny_server(BatchPolicy {
            workers: 1,
            max_batch: 16,
            flush_deadline: Duration::from_millis(20),
            ..BatchPolicy::default()
        });
        let client = server.client();
        let before = Instant::now();
        let pending: Vec<Response> = (0..6)
            .map(|i| client.submit_forward(&[i as f32 * 0.1; 5]).unwrap())
            .collect();
        let completions: Vec<Completion> = pending
            .into_iter()
            .map(|p| p.wait_completion().unwrap())
            .collect();
        for c in &completions {
            assert_eq!(c.version, 1, "initial registry version");
            assert!(c.finished >= before);
        }
        // All six landed while the lone worker was coalescing: at least
        // one batch id must be shared (and the ids form at most 6 ids).
        let mut ids: Vec<u64> = completions.iter().map(|c| c.batch_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(
            ids.len() < 6,
            "no two completions shared a batch id: {ids:?}"
        );
        server.shutdown();
    }

    #[test]
    fn overload_reports_backpressure() {
        // Tiny queue, slow drain: try_submit must hit Overloaded.
        let server = tiny_server(BatchPolicy {
            workers: 1,
            queue_cap: 2,
            max_batch: 1,
            flush_deadline: Duration::ZERO,
            ..BatchPolicy::default()
        });
        let client = server.client();
        let mut overloaded = false;
        let mut pending = Vec::new();
        for _ in 0..200 {
            match client.try_submit_forward(&[0.5; 5]) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded) => {
                    overloaded = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(overloaded, "queue of 2 never filled under a submit storm");
        for p in pending {
            p.wait().unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.rejected >= 1);
    }
}
