//! Serving telemetry: request latency percentiles, throughput, queue
//! depth, and the coalescer's batch-size histogram, dumped as CSV or
//! JSON.
//!
//! Recording is mutex-guarded (workers record once per request/batch —
//! far coarser than the lock cost); summarisation sorts on demand.

use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Which inference path a request took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// `x -> Dec(F(x))`: design parameters to output bundle.
    Forward,
    /// `y -> G(E(y))`: output bundle back to design parameters.
    Inverse,
}

struct Inner {
    latencies_us: Vec<f64>,
    batch_sizes: Vec<u64>, // histogram indexed by batch size
    queue_samples: u64,
    queue_sum: u64,
    queue_max: usize,
    forward: u64,
    inverse: u64,
    cache_hits: u64,
    rejected: u64,
}

/// Shared telemetry sink for one server.
pub struct Telemetry {
    inner: Mutex<Inner>,
    started: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry {
            inner: Mutex::new(Inner {
                latencies_us: Vec::new(),
                batch_sizes: Vec::new(),
                queue_samples: 0,
                queue_sum: 0,
                queue_max: 0,
                forward: 0,
                inverse: 0,
                cache_hits: 0,
                rejected: 0,
            }),
            started: Instant::now(),
        }
    }

    /// Record one completed request.
    pub fn record_request(&self, kind: ReqKind, latency_us: f64, cache_hit: bool) {
        let mut g = self.inner.lock();
        g.latencies_us.push(latency_us);
        match kind {
            ReqKind::Forward => g.forward += 1,
            ReqKind::Inverse => g.inverse += 1,
        }
        if cache_hit {
            g.cache_hits += 1;
        }
    }

    /// Record one coalesced GEMM pack of `size` requests.
    pub fn record_batch(&self, size: usize) {
        if size == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.batch_sizes.len() <= size {
            g.batch_sizes.resize(size + 1, 0);
        }
        g.batch_sizes[size] += 1;
    }

    /// Record the queue depth observed at a submission.
    pub fn record_queue_depth(&self, depth: usize) {
        let mut g = self.inner.lock();
        g.queue_samples += 1;
        g.queue_sum += depth as u64;
        g.queue_max = g.queue_max.max(depth);
    }

    /// Record a request rejected for backpressure.
    pub fn record_rejected(&self) {
        self.inner.lock().rejected += 1;
    }

    /// Snapshot the stats so far.
    pub fn summary(&self) -> ServeStats {
        let g = self.inner.lock();
        let mut lat = g.latencies_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx]
        };
        let completed = lat.len() as u64;
        let elapsed = self.started.elapsed().as_secs_f64();
        let batches: u64 = g.batch_sizes.iter().sum();
        let weighted: u64 = g
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(s, &n)| s as u64 * n)
            .sum();
        ServeStats {
            completed,
            forward: g.forward,
            inverse: g.inverse,
            rejected: g.rejected,
            cache_hits: g.cache_hits,
            elapsed_secs: elapsed,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            latency_mean_us: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            },
            latency_p50_us: pct(0.50),
            latency_p95_us: pct(0.95),
            latency_p99_us: pct(0.99),
            latency_max_us: lat.last().copied().unwrap_or(0.0),
            mean_batch: if batches > 0 {
                weighted as f64 / batches as f64
            } else {
                0.0
            },
            max_batch: g.batch_sizes.len().saturating_sub(1),
            batch_histogram: g.batch_sizes.clone(),
            queue_depth_mean: if g.queue_samples > 0 {
                g.queue_sum as f64 / g.queue_samples as f64
            } else {
                0.0
            },
            queue_depth_max: g.queue_max,
        }
    }
}

/// Aggregated serving statistics.
#[derive(Debug, Clone)]
pub struct ServeStats {
    pub completed: u64,
    pub forward: u64,
    pub inverse: u64,
    pub rejected: u64,
    pub cache_hits: u64,
    pub elapsed_secs: f64,
    pub throughput_rps: f64,
    pub latency_mean_us: f64,
    pub latency_p50_us: f64,
    pub latency_p95_us: f64,
    pub latency_p99_us: f64,
    pub latency_max_us: f64,
    pub mean_batch: f64,
    pub max_batch: usize,
    /// `batch_histogram[s]` = number of GEMM packs of exactly `s` rows.
    pub batch_histogram: Vec<u64>,
    pub queue_depth_mean: f64,
    pub queue_depth_max: usize,
}

impl ServeStats {
    /// Header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,completed,forward,inverse,rejected,cache_hits,elapsed_secs,throughput_rps,\
         latency_mean_us,latency_p50_us,latency_p95_us,latency_p99_us,latency_max_us,\
         mean_batch,max_batch,queue_depth_mean,queue_depth_max"
    }

    /// One CSV row labelled with the run's name.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{label},{},{},{},{},{},{:.6},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3},{},{:.3},{}",
            self.completed,
            self.forward,
            self.inverse,
            self.rejected,
            self.cache_hits,
            self.elapsed_secs,
            self.throughput_rps,
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.mean_batch,
            self.max_batch,
            self.queue_depth_mean,
            self.queue_depth_max,
        )
    }

    /// Full stats (histogram included) as a JSON object.
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .batch_histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(s, &n)| format!("\"{s}\":{n}"))
            .collect();
        format!(
            "{{\"completed\":{},\"forward\":{},\"inverse\":{},\"rejected\":{},\
             \"cache_hits\":{},\"elapsed_secs\":{:.6},\"throughput_rps\":{:.2},\
             \"latency_us\":{{\"mean\":{:.2},\"p50\":{:.2},\"p95\":{:.2},\"p99\":{:.2},\
             \"max\":{:.2}}},\"batch\":{{\"mean\":{:.3},\"max\":{},\"histogram\":{{{}}}}},\
             \"queue_depth\":{{\"mean\":{:.3},\"max\":{}}}}}",
            self.completed,
            self.forward,
            self.inverse,
            self.rejected,
            self.cache_hits,
            self.elapsed_secs,
            self.throughput_rps,
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.mean_batch,
            self.max_batch,
            hist.join(","),
            self.queue_depth_mean,
            self.queue_depth_max,
        )
    }

    /// Write `csv_header` + this row to `path`.
    pub fn write_csv(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", Self::csv_header())?;
        writeln!(f, "{}", self.csv_row(label))?;
        Ok(())
    }

    /// Write the JSON dump to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_known_distribution() {
        let t = Telemetry::new();
        for i in 1..=100 {
            t.record_request(ReqKind::Forward, i as f64, false);
        }
        let s = t.summary();
        assert_eq!(s.completed, 100);
        assert_eq!(s.forward, 100);
        assert!(
            (s.latency_p50_us - 50.0).abs() <= 1.0,
            "p50 {}",
            s.latency_p50_us
        );
        assert!(
            (s.latency_p95_us - 95.0).abs() <= 1.0,
            "p95 {}",
            s.latency_p95_us
        );
        assert!(
            (s.latency_p99_us - 99.0).abs() <= 1.0,
            "p99 {}",
            s.latency_p99_us
        );
        assert_eq!(s.latency_max_us, 100.0);
        assert!((s.latency_mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn batch_histogram_and_mean() {
        let t = Telemetry::new();
        t.record_batch(4);
        t.record_batch(4);
        t.record_batch(8);
        let s = t.summary();
        assert_eq!(s.batch_histogram[4], 2);
        assert_eq!(s.batch_histogram[8], 1);
        assert_eq!(s.max_batch, 8);
        assert!((s.mean_batch - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_tracking() {
        let t = Telemetry::new();
        t.record_queue_depth(0);
        t.record_queue_depth(10);
        t.record_queue_depth(2);
        let s = t.summary();
        assert_eq!(s.queue_depth_max, 10);
        assert!((s.queue_depth_mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn csv_and_json_well_formed() {
        let t = Telemetry::new();
        t.record_request(ReqKind::Forward, 10.0, true);
        t.record_request(ReqKind::Inverse, 20.0, false);
        t.record_batch(2);
        let s = t.summary();
        let row = s.csv_row("smoke");
        assert_eq!(
            row.split(',').count(),
            ServeStats::csv_header().split(',').count(),
            "row/header column mismatch"
        );
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":2"));
        assert!(j.contains("\"cache_hits\":1"));
        assert!(j.contains("\"2\":1"));
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        let s = Telemetry::new().summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.latency_p99_us, 0.0);
        assert_eq!(s.mean_batch, 0.0);
    }
}
