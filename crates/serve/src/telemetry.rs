//! Serving telemetry: request latency percentiles, throughput, queue
//! depth, and the coalescer's batch-size histogram, dumped as CSV or
//! JSON.
//!
//! Recording is mutex-guarded (workers record once per request/batch —
//! far coarser than the lock cost); summarisation sorts on demand.
//! Percentiles are exact (computed from the full latency vector);
//! non-finite latencies are kept in the completion counts but excluded
//! from the percentile/mean/max math so one bad clock reading cannot
//! poison the whole summary.
//!
//! A sink built with [`Telemetry::with_registry`] additionally mirrors
//! every record into a shared `ltfb-obs` [`Registry`] (counters
//! `serve.forward`, `serve.inverse`, `serve.cache_hits`,
//! `serve.rejected`, `serve.shed_count`; histograms `serve.latency_us`,
//! `serve.batch_size`, `serve.queue_depth`), so serving metrics land in
//! the same export as comm, datastore and LTFB metrics. Fleet shards use
//! [`Telemetry::with_registry_prefixed`] to give each shard its own
//! metric family (`serve.s0.forward`, `serve.s1.forward`, …).
//!
//! The throughput window runs from the **first arrival** (submission,
//! accepted or not) to the **last completion**. Measuring from the first
//! *completion* — as an earlier revision did — cuts the initial queueing
//! ramp out of the window and overstates throughput under overload; and
//! measuring to "now" at summary time dilutes it with post-traffic idle.
//! Shed requests never produce a completion, so they are counted
//! separately (`shed`) and open the window like any other arrival.

use ltfb_obs::{Buckets, Counter, Histogram, Registry};
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Which inference path a request took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// `x -> Dec(F(x))`: design parameters to output bundle.
    Forward,
    /// `y -> G(E(y))`: output bundle back to design parameters.
    Inverse,
}

struct Inner {
    latencies_us: Vec<f64>,
    batch_sizes: Vec<u64>, // histogram indexed by batch size
    queue_samples: u64,
    queue_sum: u64,
    queue_max: usize,
    forward: u64,
    inverse: u64,
    cache_hits: u64,
    rejected: u64,
    shed: u64,
    /// When the first arrival (submission, accepted or shed) was seen.
    /// The throughput window starts here, not at construction: a server
    /// can sit idle for minutes between start-up and first traffic
    /// (model loads, benches with a preparation phase), and counting
    /// that idle time would dilute `throughput_rps` arbitrarily.
    first_arrival: Option<Instant>,
    /// When the most recent completion was recorded; the throughput
    /// window ends here, not at summary time.
    last_completion: Option<Instant>,
}

/// Registry mirrors of the telemetry stream (see module docs).
struct ObsMirror {
    forward: Arc<Counter>,
    inverse: Arc<Counter>,
    cache_hits: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    latency_us: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
}

impl ObsMirror {
    fn new(registry: &Registry, prefix: &str) -> ObsMirror {
        let name = |suffix: &str| format!("{prefix}{suffix}");
        ObsMirror {
            forward: registry.counter(&name("forward")),
            inverse: registry.counter(&name("inverse")),
            cache_hits: registry.counter(&name("cache_hits")),
            rejected: registry.counter(&name("rejected")),
            shed: registry.counter(&name("shed_count")),
            latency_us: registry.histogram(&name("latency_us"), Buckets::latency_us()),
            batch_size: registry.histogram(&name("batch_size"), Buckets::small_counts()),
            queue_depth: registry.histogram(&name("queue_depth"), Buckets::small_counts()),
        }
    }
}

/// Shared telemetry sink for one server.
pub struct Telemetry {
    inner: Mutex<Inner>,
    obs: Option<ObsMirror>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry {
            inner: Mutex::new(Inner {
                latencies_us: Vec::new(),
                batch_sizes: Vec::new(),
                queue_samples: 0,
                queue_sum: 0,
                queue_max: 0,
                forward: 0,
                inverse: 0,
                cache_hits: 0,
                rejected: 0,
                shed: 0,
                first_arrival: None,
                last_completion: None,
            }),
            obs: None,
        }
    }

    /// A sink that also mirrors every record into `registry` under the
    /// `serve.…` metric family. The exact-percentile [`ServeStats`] path
    /// is unchanged; the registry carries the bucketed view used by the
    /// unified cross-subsystem export.
    pub fn with_registry(registry: &Registry) -> Self {
        Self::with_registry_prefixed(registry, "serve.")
    }

    /// [`Telemetry::with_registry`] under a caller-chosen metric prefix,
    /// so each fleet shard exports its own family (`serve.s3.forward`)
    /// instead of all shards aliasing one set of counters.
    pub fn with_registry_prefixed(registry: &Registry, prefix: &str) -> Self {
        let mut t = Telemetry::new();
        t.obs = Some(ObsMirror::new(registry, prefix));
        t
    }

    /// Record an arrival: a request reaching the submission path, before
    /// the accept/reject/shed decision. Opens the throughput window.
    pub fn record_arrival(&self) {
        self.inner
            .lock()
            .first_arrival
            .get_or_insert_with(Instant::now);
    }

    /// Record one completed request.
    pub fn record_request(&self, kind: ReqKind, latency_us: f64, cache_hit: bool) {
        let mut g = self.inner.lock();
        let now = Instant::now();
        // Fallback for direct-recording callers that never stamped an
        // arrival: a completion implies one.
        g.first_arrival.get_or_insert(now);
        g.last_completion = Some(now);
        g.latencies_us.push(latency_us);
        match kind {
            ReqKind::Forward => g.forward += 1,
            ReqKind::Inverse => g.inverse += 1,
        }
        if cache_hit {
            g.cache_hits += 1;
        }
        drop(g);
        if let Some(o) = &self.obs {
            match kind {
                ReqKind::Forward => o.forward.inc(),
                ReqKind::Inverse => o.inverse.inc(),
            }
            if cache_hit {
                o.cache_hits.inc();
            }
            o.latency_us.record(latency_us);
        }
    }

    /// Record one coalesced GEMM pack of `size` requests.
    pub fn record_batch(&self, size: usize) {
        if size == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.batch_sizes.len() <= size {
            g.batch_sizes.resize(size + 1, 0);
        }
        g.batch_sizes[size] += 1;
        drop(g);
        if let Some(o) = &self.obs {
            o.batch_size.record(size as f64);
        }
    }

    /// Record the queue depth observed at a submission.
    pub fn record_queue_depth(&self, depth: usize) {
        let mut g = self.inner.lock();
        g.queue_samples += 1;
        g.queue_sum += depth as u64;
        g.queue_max = g.queue_max.max(depth);
        drop(g);
        if let Some(o) = &self.obs {
            o.queue_depth.record(depth as f64);
        }
    }

    /// Record a request rejected for backpressure.
    pub fn record_rejected(&self) {
        let mut g = self.inner.lock();
        g.first_arrival.get_or_insert_with(Instant::now);
        g.rejected += 1;
        drop(g);
        if let Some(o) = &self.obs {
            o.rejected.inc();
        }
    }

    /// Record a request shed by SLO admission control. Sheds never
    /// produce a completion, so they are counted apart from `rejected`
    /// (queue-full backpressure) — conflating the two hides how much of
    /// the offered load the SLO gate turned away.
    pub fn record_shed(&self) {
        let mut g = self.inner.lock();
        g.first_arrival.get_or_insert_with(Instant::now);
        g.shed += 1;
        drop(g);
        if let Some(o) = &self.obs {
            o.shed.inc();
        }
    }

    /// Latency p99 over the completions recorded since index `start` in
    /// the completion stream; returns `(stream_len, p99_us)` so callers
    /// (the fleet's adaptive batch tuner) can window without copying the
    /// whole history. A window with no finite samples reports 0.
    pub fn p99_since(&self, start: usize) -> (usize, f64) {
        let g = self.inner.lock();
        let len = g.latencies_us.len();
        let mut lat: Vec<f64> = g.latencies_us[start.min(len)..]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        drop(g);
        if lat.is_empty() {
            return (len, 0.0);
        }
        lat.sort_by(f64::total_cmp);
        let idx = ((lat.len() as f64 - 1.0) * 0.99).round() as usize;
        (len, lat[idx])
    }

    /// Snapshot the stats so far. The throughput window runs from the
    /// first arrival to the last completion (no completions → zero
    /// elapsed).
    pub fn summary(&self) -> ServeStats {
        let g = self.inner.lock();
        // Percentile math runs over the finite samples only; `total_cmp`
        // keeps the sort panic-free even if a non-finite latency slips
        // through (NaN from a degenerate duration arithmetic, say).
        let mut lat: Vec<f64> = g
            .latencies_us
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        lat.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx]
        };
        let completed = g.latencies_us.len() as u64;
        let elapsed = match (g.first_arrival, g.last_completion) {
            (Some(a), Some(c)) => c.saturating_duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let batches: u64 = g.batch_sizes.iter().sum();
        let weighted: u64 = g
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(s, &n)| s as u64 * n)
            .sum();
        ServeStats {
            completed,
            forward: g.forward,
            inverse: g.inverse,
            rejected: g.rejected,
            shed: g.shed,
            cache_hits: g.cache_hits,
            elapsed_secs: elapsed,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            latency_mean_us: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            },
            latency_p50_us: pct(0.50),
            latency_p95_us: pct(0.95),
            latency_p99_us: pct(0.99),
            latency_max_us: lat.last().copied().unwrap_or(0.0),
            mean_batch: if batches > 0 {
                weighted as f64 / batches as f64
            } else {
                0.0
            },
            max_batch: g.batch_sizes.len().saturating_sub(1),
            batch_histogram: g.batch_sizes.clone(),
            queue_depth_mean: if g.queue_samples > 0 {
                g.queue_sum as f64 / g.queue_samples as f64
            } else {
                0.0
            },
            queue_depth_max: g.queue_max,
        }
    }
}

/// Aggregated serving statistics.
#[derive(Debug, Clone)]
pub struct ServeStats {
    pub completed: u64,
    pub forward: u64,
    pub inverse: u64,
    pub rejected: u64,
    /// Requests turned away by SLO admission control (fleet shards).
    pub shed: u64,
    pub cache_hits: u64,
    pub elapsed_secs: f64,
    pub throughput_rps: f64,
    pub latency_mean_us: f64,
    pub latency_p50_us: f64,
    pub latency_p95_us: f64,
    pub latency_p99_us: f64,
    pub latency_max_us: f64,
    pub mean_batch: f64,
    pub max_batch: usize,
    /// `batch_histogram[s]` = number of GEMM packs of exactly `s` rows.
    pub batch_histogram: Vec<u64>,
    pub queue_depth_mean: f64,
    pub queue_depth_max: usize,
}

impl ServeStats {
    /// Header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,completed,forward,inverse,rejected,shed,cache_hits,elapsed_secs,throughput_rps,\
         latency_mean_us,latency_p50_us,latency_p95_us,latency_p99_us,latency_max_us,\
         mean_batch,max_batch,queue_depth_mean,queue_depth_max"
    }

    /// One CSV row labelled with the run's name.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{label},{},{},{},{},{},{},{:.6},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3},{},{:.3},{}",
            self.completed,
            self.forward,
            self.inverse,
            self.rejected,
            self.shed,
            self.cache_hits,
            self.elapsed_secs,
            self.throughput_rps,
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.mean_batch,
            self.max_batch,
            self.queue_depth_mean,
            self.queue_depth_max,
        )
    }

    /// Full stats (histogram included) as a JSON object.
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .batch_histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(s, &n)| format!("\"{s}\":{n}"))
            .collect();
        format!(
            "{{\"completed\":{},\"forward\":{},\"inverse\":{},\"rejected\":{},\"shed\":{},\
             \"cache_hits\":{},\"elapsed_secs\":{:.6},\"throughput_rps\":{:.2},\
             \"latency_us\":{{\"mean\":{:.2},\"p50\":{:.2},\"p95\":{:.2},\"p99\":{:.2},\
             \"max\":{:.2}}},\"batch\":{{\"mean\":{:.3},\"max\":{},\"histogram\":{{{}}}}},\
             \"queue_depth\":{{\"mean\":{:.3},\"max\":{}}}}}",
            self.completed,
            self.forward,
            self.inverse,
            self.rejected,
            self.shed,
            self.cache_hits,
            self.elapsed_secs,
            self.throughput_rps,
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.mean_batch,
            self.max_batch,
            hist.join(","),
            self.queue_depth_mean,
            self.queue_depth_max,
        )
    }

    /// Write `csv_header` + this row to `path`.
    pub fn write_csv(&self, path: &Path, label: &str) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", Self::csv_header())?;
        writeln!(f, "{}", self.csv_row(label))?;
        Ok(())
    }

    /// Write the JSON dump to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_known_distribution() {
        let t = Telemetry::new();
        for i in 1..=100 {
            t.record_request(ReqKind::Forward, i as f64, false);
        }
        let s = t.summary();
        assert_eq!(s.completed, 100);
        assert_eq!(s.forward, 100);
        assert!(
            (s.latency_p50_us - 50.0).abs() <= 1.0,
            "p50 {}",
            s.latency_p50_us
        );
        assert!(
            (s.latency_p95_us - 95.0).abs() <= 1.0,
            "p95 {}",
            s.latency_p95_us
        );
        assert!(
            (s.latency_p99_us - 99.0).abs() <= 1.0,
            "p99 {}",
            s.latency_p99_us
        );
        assert_eq!(s.latency_max_us, 100.0);
        assert!((s.latency_mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn batch_histogram_and_mean() {
        let t = Telemetry::new();
        t.record_batch(4);
        t.record_batch(4);
        t.record_batch(8);
        let s = t.summary();
        assert_eq!(s.batch_histogram[4], 2);
        assert_eq!(s.batch_histogram[8], 1);
        assert_eq!(s.max_batch, 8);
        assert!((s.mean_batch - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_tracking() {
        let t = Telemetry::new();
        t.record_queue_depth(0);
        t.record_queue_depth(10);
        t.record_queue_depth(2);
        let s = t.summary();
        assert_eq!(s.queue_depth_max, 10);
        assert!((s.queue_depth_mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn csv_and_json_well_formed() {
        let t = Telemetry::new();
        t.record_request(ReqKind::Forward, 10.0, true);
        t.record_request(ReqKind::Inverse, 20.0, false);
        t.record_batch(2);
        let s = t.summary();
        let row = s.csv_row("smoke");
        assert_eq!(
            row.split(',').count(),
            ServeStats::csv_header().split(',').count(),
            "row/header column mismatch"
        );
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":2"));
        assert!(j.contains("\"cache_hits\":1"));
        assert!(j.contains("\"2\":1"));
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        let s = Telemetry::new().summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.latency_p99_us, 0.0);
        assert_eq!(s.mean_batch, 0.0);
        assert_eq!(s.elapsed_secs, 0.0, "no requests, no throughput window");
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn nan_latency_does_not_panic_summary() {
        // Regression: the old sort used `partial_cmp(..).unwrap()`, so a
        // single NaN latency panicked the whole stats path.
        let t = Telemetry::new();
        t.record_request(ReqKind::Forward, 10.0, false);
        t.record_request(ReqKind::Forward, f64::NAN, false);
        t.record_request(ReqKind::Forward, 30.0, false);
        t.record_request(ReqKind::Inverse, f64::INFINITY, false);
        let s = t.summary();
        assert_eq!(s.completed, 4, "non-finite samples still count");
        assert!(s.latency_p50_us.is_finite());
        assert!(s.latency_p99_us.is_finite());
        assert_eq!(s.latency_max_us, 30.0, "max over finite samples");
        assert!((s.latency_mean_us - 20.0).abs() < 1e-9);
        assert!(s.to_json().starts_with('{'));
    }

    #[test]
    fn throughput_window_starts_at_first_request() {
        // Regression: `elapsed_secs` used to run from construction, so an
        // idle preparation phase diluted throughput arbitrarily.
        let t = Telemetry::new();
        std::thread::sleep(std::time::Duration::from_millis(120));
        for _ in 0..50 {
            t.record_request(ReqKind::Forward, 5.0, false);
        }
        let s = t.summary();
        assert!(
            s.elapsed_secs < 0.1,
            "pre-load delay leaked into the window: {}s",
            s.elapsed_secs
        );
        assert!(
            s.throughput_rps > 50.0 / 0.1,
            "throughput diluted: {} rps",
            s.throughput_rps
        );
    }

    #[test]
    fn throughput_window_spans_arrival_to_last_completion() {
        // Regression (overload accounting): the window used to open at
        // the first *completion* and close at summary time. Under
        // overload the queueing ramp before the first completion was cut
        // out (overstating throughput), and any idle tail between the
        // last completion and the summary diluted it.
        let t = Telemetry::new();
        t.record_arrival();
        std::thread::sleep(std::time::Duration::from_millis(60));
        for _ in 0..30 {
            t.record_request(ReqKind::Forward, 5.0, false);
        }
        std::thread::sleep(std::time::Duration::from_millis(60));
        let s = t.summary();
        assert!(
            s.elapsed_secs >= 0.055,
            "queueing ramp cut out of the window: {}s",
            s.elapsed_secs
        );
        assert!(
            s.elapsed_secs < 0.11,
            "post-traffic idle leaked into the window: {}s",
            s.elapsed_secs
        );
    }

    #[test]
    fn sheds_counted_apart_and_open_the_window() {
        let reg = Registry::new();
        let t = Telemetry::with_registry(&reg);
        t.record_shed();
        t.record_shed();
        t.record_shed();
        t.record_rejected();
        let s = t.summary();
        assert_eq!(s.shed, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 0, "sheds never complete");
        assert_eq!(reg.counter("serve.shed_count").get(), 3);
        assert!(s.to_json().contains("\"shed\":3"));
        // Sheds alone have no completion: the window stays zero-width,
        // so throughput is honestly 0 rather than NaN or inflated.
        assert_eq!(s.elapsed_secs, 0.0);
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn p99_since_windows_the_completion_stream() {
        let t = Telemetry::new();
        for i in 1..=100 {
            t.record_request(ReqKind::Forward, i as f64, false);
        }
        let (len, p99_all) = t.p99_since(0);
        assert_eq!(len, 100);
        assert!((p99_all - 99.0).abs() <= 1.0, "p99 {p99_all}");
        // Window over the last 10 samples only (91..=100).
        let (_, p99_tail) = t.p99_since(90);
        assert!(p99_tail >= 99.0, "tail p99 {p99_tail}");
        let (len2, p99_empty) = t.p99_since(100);
        assert_eq!((len2, p99_empty), (100, 0.0));
    }

    #[test]
    fn prefixed_registry_gives_per_shard_families() {
        let reg = Registry::new();
        let t0 = Telemetry::with_registry_prefixed(&reg, "serve.s0.");
        let t1 = Telemetry::with_registry_prefixed(&reg, "serve.s1.");
        t0.record_request(ReqKind::Forward, 10.0, false);
        t1.record_request(ReqKind::Forward, 10.0, false);
        t1.record_shed();
        assert_eq!(reg.counter("serve.s0.forward").get(), 1);
        assert_eq!(reg.counter("serve.s1.forward").get(), 1);
        assert_eq!(reg.counter("serve.s1.shed_count").get(), 1);
        assert_eq!(reg.counter("serve.s0.shed_count").get(), 0);
    }

    #[test]
    fn with_registry_mirrors_into_shared_metrics() {
        let reg = Registry::new();
        let t = Telemetry::with_registry(&reg);
        t.record_request(ReqKind::Forward, 10.0, true);
        t.record_request(ReqKind::Forward, 20.0, false);
        t.record_request(ReqKind::Inverse, 30.0, false);
        t.record_batch(2);
        t.record_queue_depth(3);
        t.record_rejected();
        let s = t.summary();
        assert_eq!(reg.counter("serve.forward").get(), s.forward);
        assert_eq!(reg.counter("serve.inverse").get(), s.inverse);
        assert_eq!(reg.counter("serve.cache_hits").get(), s.cache_hits);
        assert_eq!(reg.counter("serve.rejected").get(), s.rejected);
        let h = reg.histogram("serve.latency_us", Buckets::latency_us());
        assert_eq!(h.count(), s.completed);
        assert_eq!(h.max(), 30.0);
        assert_eq!(
            reg.histogram("serve.batch_size", Buckets::small_counts())
                .count(),
            1
        );
    }
}
