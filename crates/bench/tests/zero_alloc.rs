//! The workspace training path's defining property, asserted exactly:
//! after one warm-up pass, a steady-state `train_step_ws` performs ZERO
//! heap allocations.
//!
//! This file must hold exactly one test: the counting allocator is
//! process-global, so a concurrently running test in the same binary
//! would pollute the measured region.

use ltfb_alloccount::{counts, CountingAlloc};
use ltfb_gan::{batch_from_samples, CycleGan, CycleGanConfig};
use ltfb_jag::{r2_point, JagSimulator, Sample};
use ltfb_nn::Workspace;
use ltfb_tensor::Matrix;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_train_step_ws_allocates_nothing() {
    let cfg = CycleGanConfig::small(4);
    let sim = JagSimulator::new(cfg.jag);
    let samples: Vec<Sample> = (0..96u64).map(|i| sim.simulate(r2_point(i))).collect();
    let batches: Vec<(Matrix, Matrix)> = samples
        .chunks(32)
        .map(|chunk| {
            let refs: Vec<&Sample> = chunk.iter().collect();
            batch_from_samples(&cfg, &refs)
        })
        .collect();

    let mut gan = CycleGan::new(cfg, 7);
    let mut ws = Workspace::new();
    // Warm-up: one pass over every batch shape fills the pool, the layer
    // caches and the Adam state.
    for (x, y) in &batches {
        gan.train_step_ws(x, y, &mut ws);
    }

    let misses_before = ws.misses();
    let before = counts();
    for round in 0..3 {
        for (x, y) in &batches {
            gan.train_step_ws(x, y, &mut ws);
        }
        let _ = round;
    }
    let delta = counts().since(before);
    assert_eq!(
        delta.allocs, 0,
        "steady-state workspace step allocated: {} allocs / {} bytes over 9 steps",
        delta.allocs, delta.bytes
    );
    assert_eq!(delta.bytes, 0);
    assert_eq!(
        ws.misses(),
        misses_before,
        "workspace pool missed after warm-up"
    );
}
