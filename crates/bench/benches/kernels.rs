//! Criterion microbenchmarks for the compute kernels underlying every
//! figure: GEMM (the per-step compute), ring allreduce (data-parallel
//! sync), CycleGAN train step, data-store shuffle, tournament decision,
//! JAG simulation, and bundle I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ltfb_comm::{run_world, ReduceOp};
use ltfb_core::{decide_match, pretrain_global_autoencoder, LtfbConfig, Trainer};
use ltfb_gan::{batch_from_samples, CycleGan, CycleGanConfig};
use ltfb_jag::{r2_point, JagConfig, JagSimulator, Sample};
use ltfb_tensor::{matmul, seeded_rng, uniform};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let mut rng = seeded_rng(1);
        let a = uniform(n, n, -1.0, 1.0, &mut rng);
        let b = uniform(n, n, -1.0, 1.0, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b))
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_allreduce");
    g.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(ranks),
            &ranks,
            |bench, &ranks| {
                bench.iter(|| {
                    run_world(ranks, |comm| {
                        let mut v = vec![comm.rank() as f32; 16_384];
                        comm.allreduce_f32(&mut v, ReduceOp::Sum);
                        v[0]
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 1);
    let sim = JagSimulator::new(cfg.jag);
    let samples: Vec<Sample> = (0..32).map(|i| sim.simulate(r2_point(i))).collect();
    let refs: Vec<&Sample> = samples.iter().collect();
    let (x, y) = batch_from_samples(&cfg, &refs);
    let mut g = c.benchmark_group("cyclegan");
    g.bench_function("train_step_mb32", |b| b.iter(|| gan.train_step(&x, &y)));
    g.bench_function("evaluate_mb32", |b| b.iter(|| gan.evaluate(&x, &y)));
    g.finish();
}

fn bench_tournament(c: &mut Criterion) {
    let cfg = LtfbConfig::small(2);
    let ae = pretrain_global_autoencoder(&cfg);
    let mut a = Trainer::new(cfg, 0);
    let mut b = Trainer::new(cfg, 1);
    a.load_autoencoder(ae.clone());
    b.load_autoencoder(ae);
    let foreign = a.gan.generator_to_bytes();
    let mut g = c.benchmark_group("tournament");
    g.bench_function("exchange_and_decide", |bench| {
        bench.iter(|| decide_match(&mut b, 0, foreign.clone()))
    });
    g.bench_function("generator_serialize", |bench| {
        bench.iter(|| a.gan.generator_to_bytes())
    });
    g.finish();
}

fn bench_jag(c: &mut Criterion) {
    let mut g = c.benchmark_group("jag_simulate");
    for &size in &[16usize, 64] {
        let sim = JagSimulator::new(JagConfig::small(size));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            let mut i = 0u64;
            bench.iter(|| {
                i += 1;
                sim.simulate(r2_point(i))
            })
        });
    }
    g.finish();
}

fn bench_bundle_io(c: &mut Criterion) {
    let cfg = JagConfig::small(16);
    let sim = JagSimulator::new(cfg);
    let samples: Vec<Sample> = (0..64).map(|i| sim.simulate(r2_point(i))).collect();
    let dir = ltfb_jag::temp_dataset_dir("bench-io");
    let path = dir.join("bench.jagb");
    ltfb_jag::write_bundle(&path, &cfg, &samples).unwrap();
    let mut g = c.benchmark_group("bundle_io");
    g.bench_function("write_64_samples", |b| {
        b.iter(|| ltfb_jag::write_bundle(&path, &cfg, &samples))
    });
    g.bench_function("read_all_64_samples", |b| {
        b.iter(|| {
            let mut r = ltfb_jag::BundleReader::open(&path, &cfg).unwrap();
            r.read_all().unwrap()
        })
    });
    g.bench_function("random_read_1_sample", |b| {
        let mut r = ltfb_jag::BundleReader::open(&path, &cfg).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 17) % 64;
            r.read_sample(i).unwrap()
        })
    });
    g.finish();
    ltfb_jag::cleanup_dataset_dir(&dir);
}

fn bench_datastore_shuffle(c: &mut Criterion) {
    use ltfb_datastore::{DataStore, PopulateMode};
    use ltfb_jag::DatasetSpec;
    let dir = ltfb_jag::temp_dataset_dir("bench-store");
    let spec = DatasetSpec::new(dir.clone(), JagConfig::small(8), 128, 32);
    spec.generate_all().unwrap();
    let mut g = c.benchmark_group("datastore");
    g.sample_size(10);
    g.bench_function("epoch_shuffle_4ranks_128samples", |b| {
        b.iter(|| {
            run_world(4, |comm| {
                let ids: Vec<u64> = (0..128).collect();
                let mut store =
                    DataStore::new(comm, spec.clone(), ids, PopulateMode::Preload, 16, 7, None)
                        .unwrap();
                store.fetch_epoch(1).unwrap().len()
            })
        })
    });
    g.finish();
    ltfb_jag::cleanup_dataset_dir(&dir);
}

criterion_group!(
    benches,
    bench_gemm,
    bench_allreduce,
    bench_train_step,
    bench_tournament,
    bench_jag,
    bench_bundle_io,
    bench_datastore_shuffle
);
criterion_main!(benches);
