//! Criterion benchmarks of the figure-level workloads themselves: the
//! simulator evaluations behind Figs. 9-11 (fast — they are analytic +
//! discrete-event models) and the tournament round behind Figs. 12-13.
//! The full series are produced by the `fig*` binaries; these benches
//! track the cost of regenerating them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltfb_hpcsim::{
    dp_placement, evaluate_config, evaluate_ltfb, IngestMode, LtfbScenario, MachineSpec,
    TrainingModel, WorkloadSpec,
};

fn bench_fig9_point(c: &mut Criterion) {
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let mut g = c.benchmark_group("fig09_eval");
    g.sample_size(10);
    for &gpus in &[1usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(gpus), &gpus, |b, &gpus| {
            b.iter(|| {
                evaluate_config(
                    &m,
                    &w,
                    &t,
                    dp_placement(gpus),
                    100_000, // smaller sample count: keeps the DES tractable per-iteration
                    IngestMode::NoStore,
                    1,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig10_point(c: &mut Criterion) {
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let mut g = c.benchmark_group("fig10_eval");
    g.sample_size(10);
    for mode in [IngestMode::DynamicStore, IngestMode::Preloaded] {
        let name = format!("{mode:?}");
        g.bench_function(name, |b| {
            b.iter(|| evaluate_config(&m, &w, &t, dp_placement(16), 100_000, mode, 1))
        });
    }
    g.finish();
}

fn bench_fig11_point(c: &mut Criterion) {
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let sc = LtfbScenario::paper();
    let mut g = c.benchmark_group("fig11_eval");
    g.sample_size(10);
    for &k in &[8usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| evaluate_ltfb(&m, &w, &t, &sc, k))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig9_point,
    bench_fig10_point,
    bench_fig11_point
);
criterion_main!(benches);
