//! # ltfb-bench
//!
//! The evaluation harness: one binary per figure of the paper (the paper
//! has no numbered tables; every quantitative result is a figure), plus
//! Criterion microbenchmarks for the core kernels.
//!
//! Each `fig*` binary prints the same rows/series the paper reports and
//! writes a CSV next to the repository under `results/`.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;

/// Directory the fig binaries write CSVs into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LTFB_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("cannot create results dir");
    p
}

/// Write rows as CSV (first row = header).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    path
}

/// Print an aligned table: header + rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Banner shared by the fig binaries.
pub fn banner(fig: &str, what: &str) {
    println!("==================================================================");
    println!("{fig}: {what}");
    println!("  (reproduction of Jacobs et al., CLUSTER 2019 — shapes/ratios are");
    println!("   the target; absolute values come from the calibrated simulator");
    println!("   or laptop-scale training, see EXPERIMENTS.md)");
    println!("==================================================================");
}
