//! Figure 13: LTFB vs partitioned K-independent training — identical
//! seeds, silos, and step budgets; the only difference is the tournament.
//!
//! Paper claims: LTFB consistently achieves better validation loss, and
//! the gap widens with K (independent trainers see ever-smaller data
//! slices while LTFB winners effectively compose several silos).

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{run_k_independent, run_ltfb_serial, LtfbConfig};

fn cfg_for(k: usize) -> LtfbConfig {
    let mut cfg = LtfbConfig::small(k);
    cfg.train_samples = 2048;
    cfg.val_samples = 256;
    cfg.tournament_samples = 96;
    cfg.ae_steps = 400;
    cfg.steps = 600;
    cfg.exchange_interval = 40;
    cfg.eval_interval = 150;
    cfg
}

fn main() {
    banner(
        "Figure 13",
        "LTFB vs partitioned K-independent training (lower loss is better)",
    );
    let ks = [2usize, 4, 8];
    let mut rows = Vec::new();
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let mut gaps = Vec::new();
    for &k in &ks {
        println!("K = {k}: running LTFB and K-independent with identical budgets...");
        let cfg = cfg_for(k);
        let ltfb = run_ltfb_serial(&cfg);
        let kind = run_k_independent(&cfg);
        let (_, lb) = ltfb.best();
        let (_, kb) = kind.best();
        let la = avg(&ltfb.final_val);
        let ka = avg(&kind.final_val);
        let gap_best = kb / lb;
        let gap_avg = ka / la;
        gaps.push((ka - la, gap_avg));
        rows.push(vec![
            k.to_string(),
            format!("{lb:.4}"),
            format!("{kb:.4}"),
            format!("{gap_best:.2}x"),
            format!("{la:.4}"),
            format!("{ka:.4}"),
            format!("{gap_avg:.2}x"),
            format!("{:.4}", ka - la),
            ltfb.adoptions.to_string(),
        ]);
    }
    let header = [
        "K",
        "ltfb_best",
        "kindep_best",
        "best_gap",
        "ltfb_avg",
        "kindep_avg",
        "avg_gap",
        "abs_gap",
        "adoptions",
    ];
    print_table(&header, &rows);
    let path = write_csv("fig13_ltfb_vs_kindep.csv", &header, &rows);

    println!("\npaper claims: (1) LTFB consistently better; (2) gap widens with K.");
    let all_better = gaps.iter().all(|&(_, r)| r > 1.0);
    let abs_widens = gaps.last().unwrap().0 >= gaps.first().unwrap().0;
    println!(
        "population-average gaps (ratio, absolute): {:?}",
        gaps.iter()
            .map(|&(d, r)| format!("{r:.2}x/{d:.4}"))
            .collect::<Vec<_>>()
    );
    println!(
        "LTFB consistently better: {}",
        if all_better {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "gap (absolute) widening K=2 -> K=8: {}",
        if abs_widens {
            "reproduced"
        } else {
            "noisy at this scale"
        }
    );
    println!("note: independent-trainer quality collapses with K (kindep_avg column)");
    println!("while LTFB populations converge tightly — the paper's Section IV-E effect.");
    println!("csv: {}", path.display());
}
