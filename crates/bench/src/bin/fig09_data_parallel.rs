//! Figure 9: strong scaling of data-parallel training of a single
//! CycleGAN model, 1 -> 16 GPUs, 1M-sample dataset, naive ("dynamic
//! loading") ingestion, steady-state epoch time.
//!
//! Paper anchors: 9.36x speedup at 16 GPUs over 1 GPU; parallel
//! efficiency declining to ~58%.

use ltfb_bench::{banner, fmt_secs, print_table, write_csv};
use ltfb_hpcsim::{
    dp_placement, evaluate_config, ConfigOutcome, IngestMode, MachineSpec, TrainingModel,
    WorkloadSpec,
};

fn main() {
    banner(
        "Figure 9",
        "data-parallel strong scaling (1M samples, mb=128, no data store)",
    );
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let samples = 1_000_000u64;

    let gpus = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    let mut base = None;
    for &g in &gpus {
        let place = dp_placement(g);
        let out = evaluate_config(&m, &w, &t, place, samples, IngestMode::NoStore, 0xF19);
        let ConfigOutcome::Ran { steady, .. } = out else {
            panic!("no-store mode has no memory gate");
        };
        let total = steady.total();
        let b = *base.get_or_insert(total);
        let speedup = b / total;
        let eff = speedup / g as f64 * 100.0;
        rows.push(vec![
            g.to_string(),
            format!("{}x{}", place.nodes, place.gpus_per_node),
            fmt_secs(total),
            fmt_secs(steady.io),
            fmt_secs(steady.compute),
            fmt_secs(steady.sync),
            format!("{speedup:.2}"),
            format!("{eff:.0}%"),
        ]);
    }
    let header = [
        "GPUs",
        "placement",
        "epoch_s",
        "io_s",
        "compute_s",
        "sync_s",
        "speedup",
        "efficiency",
    ];
    print_table(&header, &rows);
    let path = write_csv("fig09_data_parallel.csv", &header, &rows);
    println!("\npaper anchors: 9.36x @16 GPUs, ~58% efficiency");
    println!("csv: {}", path.display());
}
