//! Ablation: tournament design choices — exchange interval and the
//! decision metric (global-style validation loss vs. the GAN-specific
//! "fool the local discriminator" score of Fig. 6(b)).

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{run_ltfb_serial, LtfbConfig, TournamentMetric};

fn base_cfg() -> LtfbConfig {
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 1024;
    cfg.val_samples = 192;
    cfg.tournament_samples = 64;
    cfg.ae_steps = 300;
    cfg.steps = 300;
    cfg.eval_interval = 300;
    cfg
}

fn main() {
    banner(
        "Ablation",
        "tournament exchange interval and decision metric",
    );
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;

    println!("-- exchange interval sweep (metric = validation loss) --");
    let mut rows = Vec::new();
    for interval in [10u64, 25, 50, 100, 300] {
        let mut cfg = base_cfg();
        cfg.exchange_interval = interval;
        let out = run_ltfb_serial(&cfg);
        rows.push(vec![
            interval.to_string(),
            format!("{}", out.matches.len()),
            out.adoptions.to_string(),
            format!("{:.4}", out.best().1),
            format!("{:.4}", avg(&out.final_val)),
        ]);
    }
    let header = ["interval", "matches", "adoptions", "best_val", "avg_val"];
    print_table(&header, &rows);
    write_csv("ablation_exchange_interval.csv", &header, &rows);

    println!("\n-- tournament metric comparison --");
    let mut rows = Vec::new();
    for (name, metric) in [
        ("val_loss", TournamentMetric::ValLoss),
        ("disc_score", TournamentMetric::DiscriminatorScore),
    ] {
        let mut cfg = base_cfg();
        cfg.metric = metric;
        let out = run_ltfb_serial(&cfg);
        rows.push(vec![
            name.to_string(),
            out.adoptions.to_string(),
            format!("{:.4}", out.best().1),
            format!("{:.4}", avg(&out.final_val)),
        ]);
    }
    let header = ["metric", "adoptions", "best_val", "avg_val"];
    print_table(&header, &rows);
    write_csv("ablation_tournament_metric.csv", &header, &rows);

    println!("\nreading: too-frequent exchange churns optimizer state; too-rare");
    println!("exchange approaches K-independent. The discriminator-score metric is");
    println!("the paper's GAN-specific variant; validation loss is what Figs 12/13 use.");
}
