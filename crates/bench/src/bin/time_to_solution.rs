//! Time-to-solution: the paper's bottom line ("LTFB at bigger trainer
//! sizes shows improved learning quality and time to solution"). This
//! harness joins the two halves of the reproduction:
//!
//! * the *quality* half trains real miniature populations and measures
//!   how many per-trainer steps each trainer count K needs to reach a
//!   target validation loss;
//! * the *timing* half prices a per-trainer step at paper scale with the
//!   calibrated Lassen model (including the K=1 memory-forced placement)
//!   and adds the preload time.
//!
//! The product — estimated wall-clock to target quality vs K — is the
//! quantity a campaign planner actually cares about.

use ltfb_bench::{banner, fmt_secs, print_table, write_csv};
use ltfb_core::{run_ltfb_serial, LtfbConfig, PartitionScheme};
use ltfb_hpcsim::{
    evaluate_ltfb, step_time, LtfbScenario, MachineSpec, TrainingModel, WorkloadSpec,
};

fn main() {
    banner(
        "Time-to-solution",
        "steps-to-quality (real training) x step cost (Lassen model)",
    );
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let sc = LtfbScenario::paper();

    // --- Quality half: per-trainer steps to reach the target loss.
    let target = 0.085f32;
    println!("measuring per-trainer steps to validation loss <= {target} (real training)...\n");
    let ks = [1usize, 2, 4, 8];
    let mut steps_needed = Vec::new();
    for &k in &ks {
        let mut cfg = LtfbConfig::small(k);
        cfg.train_samples = 2048;
        cfg.val_samples = 192;
        cfg.tournament_samples = 64;
        cfg.ae_steps = 400;
        cfg.steps = 500;
        cfg.exchange_interval = 25;
        cfg.eval_interval = 25;
        cfg.partition = PartitionScheme::ByIndex; // the dense-silo regime
        let out = run_ltfb_serial(&cfg);
        // First step at which the population best crossed the target.
        let checkpoints: Vec<u64> = out.histories[0].points().iter().map(|&(s, _)| s).collect();
        let crossed = checkpoints.iter().find(|&&s| {
            out.histories
                .iter()
                .filter_map(|h| h.at_step(s))
                .fold(f32::INFINITY, f32::min)
                <= target
        });
        steps_needed.push((k, crossed.copied()));
    }

    // --- Timing half: wall-clock per per-trainer step at paper scale.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(k, crossed) in &steps_needed {
        let place = sc.placement(k);
        let st = step_time(&m, &w, &t, place);
        let point = evaluate_ltfb(&m, &w, &t, &sc, k);
        match crossed {
            Some(steps) => {
                let train_time = steps as f64 * st;
                let total = point.preload_time + train_time;
                rows.push(vec![
                    k.to_string(),
                    steps.to_string(),
                    format!("{:.1}", st * 1e3),
                    fmt_secs(point.preload_time),
                    fmt_secs(train_time),
                    fmt_secs(total),
                ]);
                csv.push(vec![
                    k.to_string(),
                    steps.to_string(),
                    format!("{total:.1}"),
                ]);
            }
            None => {
                rows.push(vec![
                    k.to_string(),
                    ">500".into(),
                    format!("{:.1}", st * 1e3),
                    fmt_secs(point.preload_time),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    let header = [
        "K",
        "steps_to_target",
        "step_ms@scale",
        "preload_s",
        "train_s",
        "total_s",
    ];
    print_table(&header, &rows);
    let path = write_csv("time_to_solution.csv", &["K", "steps", "total_s"], &csv);
    println!("\nreading: larger populations reach the target in no more per-trainer");
    println!("steps (Fig. 12's claim) while each step costs the same — so wall-clock");
    println!("time-to-quality drops ~linearly with K on top of the Fig. 11 epoch");
    println!("scaling. (Steps measured at laptop scale; step cost priced at paper");
    println!("scale — see DESIGN.md on the two-clock split.)");
    println!("csv: {}", path.display());
}
