//! Figure 7: ground-truth vs LTFB-CycleGAN-predicted 15-D scalars for 16
//! validation samples. The paper's visual claim is that predictions lie
//! on top of the ground truth; we report per-scalar truth/prediction
//! pairs, absolute errors, and the fraction of predictions within an
//! absolute tolerance band.

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{run_ltfb_serial_with_models, LtfbConfig};
use ltfb_gan::split_output;
use ltfb_jag::N_SCALARS;

fn main() {
    banner(
        "Figure 7",
        "ground truth vs predicted 15-D scalars (16 validation samples)",
    );
    let mut cfg = LtfbConfig::small(4);
    cfg.gan.jag = ltfb_jag::JagConfig::small(8);
    cfg.train_samples = 2048;
    cfg.val_samples = 256;
    cfg.tournament_samples = 64;
    cfg.ae_steps = 600;
    cfg.steps = 600;
    cfg.exchange_interval = 50;
    cfg.eval_interval = 100;

    println!("training LTFB population (K=4, {} steps)...", cfg.steps);
    let (out, mut trainers) = run_ltfb_serial_with_models(&cfg);
    let (best_id, best_val) = out.best();
    println!("best trainer: {best_id} (validation loss {best_val:.4})\n");
    let winner = &mut trainers[best_id];

    // Predict 16 validation samples.
    let val = ltfb_core::val_samples(&cfg.gan.jag, 0, 16);
    let refs: Vec<&ltfb_jag::Sample> = val.iter().collect();
    let (x, _y) = ltfb_gan::batch_from_samples(&cfg.gan, &refs);
    let pred = winner.gan.predict(&x);

    let names = [
        "log_yield",
        "ignition_p",
        "ti",
        "te",
        "bang_time",
        "burn_width",
        "convergence",
        "rho_r",
        "resid_ke",
        "symmetry",
        "flux_v0",
        "flux_v1",
        "flux_v2",
        "hotspot_r",
        "mode_power",
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut within = 0usize;
    let mut total = 0usize;
    for s in 0..N_SCALARS {
        let mut mean_abs_err = 0.0f32;
        let mut truth_range: (f32, f32) = (f32::MAX, f32::MIN);
        for (i, sample) in val.iter().enumerate() {
            let (scalars, _) = split_output(&cfg.gan, pred.row(i));
            let t = sample.scalars[s];
            let p = scalars[s];
            mean_abs_err += (t - p).abs();
            truth_range = (truth_range.0.min(t), truth_range.1.max(t));
            total += 1;
            if (t - p).abs() < 0.15 {
                within += 1;
            }
            csv_rows.push(vec![
                i.to_string(),
                names[s].to_string(),
                format!("{t:.5}"),
                format!("{p:.5}"),
            ]);
        }
        mean_abs_err /= val.len() as f32;
        rows.push(vec![
            names[s].to_string(),
            format!("{:.3}..{:.3}", truth_range.0, truth_range.1),
            format!("{mean_abs_err:.4}"),
        ]);
    }
    print_table(&["scalar", "truth_range", "mean_abs_err"], &rows);
    println!(
        "\npredictions within ±0.15 of ground truth: {within}/{total} ({:.0}%)",
        100.0 * within as f32 / total as f32
    );
    println!("paper (visual): ground truth 'mostly covered' by GAN predictions");
    let path = write_csv(
        "fig07_scalars.csv",
        &["sample", "scalar", "truth", "predicted"],
        &csv_rows,
    );
    println!("csv: {}", path.display());
}
