//! Figure 10: the data store's effect on epoch time — dynamic loading
//! (no store), dynamic-mode store, and preloaded store; initial and
//! steady-state epochs; 1 -> 16 GPUs on the 1M-sample set.
//!
//! Paper anchors: 7.73x store benefit at 1 GPU shrinking to 1.31x
//! (dynamic) / 1.43x (preloaded) at 4 nodes; preloaded 1.10x better than
//! dynamic steady-state; preload infeasible (OOM) at 1-2 GPUs.

use ltfb_bench::{banner, fmt_secs, print_table, write_csv};
use ltfb_hpcsim::{
    dp_placement, evaluate_config, ConfigOutcome, IngestMode, MachineSpec, TrainingModel,
    WorkloadSpec,
};

fn cell(out: &ConfigOutcome, initial: bool) -> String {
    match out {
        ConfigOutcome::Ran {
            initial: i,
            steady: s,
            preload,
        } => {
            if initial {
                fmt_secs(i.total() + preload)
            } else {
                fmt_secs(s.total())
            }
        }
        ConfigOutcome::OutOfMemory { .. } => "OOM".into(),
    }
}

fn main() {
    banner(
        "Figure 10",
        "data store modes vs naive loading (1M samples)",
    );
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    let samples = 1_000_000u64;

    let gpus = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    let mut at16 = (0.0f64, 0.0f64, 0.0f64);
    let mut at1 = (0.0f64, 0.0f64);
    for &g in &gpus {
        let place = dp_placement(g);
        let none = evaluate_config(&m, &w, &t, place, samples, IngestMode::NoStore, 0x10);
        let dynamic = evaluate_config(&m, &w, &t, place, samples, IngestMode::DynamicStore, 0x10);
        let preload = evaluate_config(&m, &w, &t, place, samples, IngestMode::Preloaded, 0x10);
        if g == 16 {
            at16 = (
                none.steady_total().unwrap(),
                dynamic.steady_total().unwrap(),
                preload.steady_total().unwrap(),
            );
        }
        if g == 1 {
            at1 = (
                none.steady_total().unwrap(),
                dynamic.steady_total().unwrap(),
            );
        }
        rows.push(vec![
            g.to_string(),
            format!("{}x{}", place.nodes, place.gpus_per_node),
            cell(&none, true),
            cell(&none, false),
            cell(&dynamic, true),
            cell(&dynamic, false),
            cell(&preload, true),
            cell(&preload, false),
        ]);
    }
    let header = [
        "GPUs",
        "placement",
        "none_init",
        "none_steady",
        "dyn_init",
        "dyn_steady",
        "pre_init",
        "pre_steady",
    ];
    print_table(&header, &rows);
    let path = write_csv("fig10_datastore.csv", &header, &rows);

    println!("\nmeasured ratios:");
    println!(
        "  1 GPU  : store benefit (none/dynamic steady) = {:.2}x (paper 7.73x)",
        at1.0 / at1.1
    );
    println!(
        "  16 GPU : none/dynamic steady                 = {:.2}x (paper 1.31x)",
        at16.0 / at16.1
    );
    println!(
        "  16 GPU : none/preload steady                 = {:.2}x (paper 1.43x)",
        at16.0 / at16.2
    );
    println!(
        "  16 GPU : dynamic/preload steady              = {:.2}x (paper 1.10x)",
        at16.1 / at16.2
    );
    println!("  OOM at 1-2 GPUs for preload: reproduced via the 1/2-node memory gate");
    println!("csv: {}", path.display());
}
