//! Figure 8: capsule X-ray images from the JAG ground truth vs the LTFB
//! CycleGAN generator, at the paper's selected (view, channel) panels.
//! Writes side-by-side PGM panels and prints per-image MAE / correlation.

use ltfb_bench::{banner, print_table, results_dir, write_csv};
use ltfb_core::{run_ltfb_serial_with_models, LtfbConfig};
use ltfb_gan::split_output;
use ltfb_jag::{image_errors, write_pair_pgm, N_CHANNELS};

fn main() {
    banner(
        "Figure 8",
        "ground truth vs generated capsule images (selected views/channels)",
    );
    let mut cfg = LtfbConfig::small(4);
    cfg.gan.jag = ltfb_jag::JagConfig::small(16);
    cfg.train_samples = 2048;
    cfg.val_samples = 256;
    cfg.tournament_samples = 64;
    cfg.ae_steps = 800;
    cfg.steps = 800;
    cfg.exchange_interval = 50;
    cfg.eval_interval = 200;

    println!(
        "training LTFB population (K=4, {} steps, {}x{} images)...",
        cfg.steps, cfg.gan.jag.img_size, cfg.gan.jag.img_size
    );
    let (out, mut trainers) = run_ltfb_serial_with_models(&cfg);
    let (best_id, best_val) = out.best();
    println!("best trainer: {best_id} (validation loss {best_val:.4})\n");
    let winner = &mut trainers[best_id];

    // The paper's panels: (view0, ch0), (view1, ch1), (view2, ch2).
    let panels = [(0usize, 0usize), (1, 1), (2, 2)];
    let n_show = 2; // validation samples rendered

    let val = ltfb_core::val_samples(&cfg.gan.jag, 0, n_show as u64);
    let refs: Vec<&ltfb_jag::Sample> = val.iter().collect();
    let (x, _y) = ltfb_gan::batch_from_samples(&cfg.gan, &refs);
    let pred = winner.gan.predict(&x);

    let px = cfg.gan.jag.pixels();
    let size = cfg.gan.jag.img_size;
    let mut rows = Vec::new();
    let dir = results_dir();
    for (i, sample) in val.iter().enumerate() {
        let (_, pred_images) = split_output(&cfg.gan, pred.row(i));
        // Clamp predictions into image range for rendering + metrics.
        let pred_images: Vec<f32> = pred_images.iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let errs = image_errors(&cfg.gan.jag, &sample.images, &pred_images);
        for &(view, ch) in &panels {
            let idx = view * N_CHANNELS + ch;
            let truth = &sample.images[idx * px..(idx + 1) * px];
            let predicted = &pred_images[idx * px..(idx + 1) * px];
            let fname = dir.join(format!("fig08_s{i}_v{view}c{ch}.pgm"));
            write_pair_pgm(&fname, truth, predicted, size).expect("write pgm");
            rows.push(vec![
                i.to_string(),
                format!("view{view}/ch{ch}"),
                format!("{:.4}", errs.mae[idx]),
                format!("{:.3}", errs.correlation[idx]),
                fname.file_name().unwrap().to_string_lossy().to_string(),
            ]);
        }
        rows.push(vec![
            i.to_string(),
            "ALL 12".into(),
            format!("{:.4}", errs.overall_mae),
            "-".into(),
            "-".into(),
        ]);
    }
    let header = ["sample", "panel", "mae", "pearson_r", "pgm"];
    print_table(&header, &rows);
    let path = write_csv("fig08_images.csv", &header, &rows);
    println!("\npaper (visual): generated images qualitatively match ground truth;");
    println!("here quantified as per-panel MAE and Pearson correlation.");
    println!("panels written as side-by-side (truth | prediction) PGM files.");
    println!("csv: {}", path.display());
}
