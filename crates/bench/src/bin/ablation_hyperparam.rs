//! Ablation: hyperparameter diversity in the population. LTFB "models
//! are initialized with different weights and hyperparameters" — with a
//! geometric learning-rate spread, the tournament implicitly performs
//! learning-rate selection (the Deepmind PBT connection of Section V,
//! minus their in-flight mutation).

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{run_ltfb_serial, LtfbConfig};

fn base_cfg(k: usize) -> LtfbConfig {
    let mut cfg = LtfbConfig::small(k);
    cfg.train_samples = 1024;
    cfg.val_samples = 192;
    cfg.tournament_samples = 64;
    cfg.ae_steps = 300;
    cfg.steps = 300;
    cfg.exchange_interval = 30;
    cfg.eval_interval = 300;
    cfg
}

fn main() {
    banner("Ablation", "learning-rate diversity in the LTFB population");
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;

    let mut rows = Vec::new();
    for k in [4usize, 8] {
        for spread in [1.0f32, 4.0, 16.0] {
            let mut cfg = base_cfg(k);
            cfg.lr_spread = spread;
            let out = run_ltfb_serial(&cfg);
            // Which trainers win most? With a spread, mid/high-lr members
            // should dominate early tournaments.
            let lr_of_best = cfg.trainer_lr(out.best().0);
            rows.push(vec![
                k.to_string(),
                format!("{spread}"),
                format!("{:.4}", out.best().1),
                format!("{:.4}", avg(&out.final_val)),
                format!("{:.1e}", lr_of_best),
                out.adoptions.to_string(),
            ]);
        }
    }
    let header = [
        "K",
        "lr_spread",
        "best_val",
        "avg_val",
        "winning_lr",
        "adoptions",
    ];
    print_table(&header, &rows);
    write_csv("ablation_hyperparam.csv", &header, &rows);
    println!("\nreading: a moderate spread lets the tournament find a good rate");
    println!("without any scheduler; an extreme spread wastes population slots on");
    println!("divergent members. The winning-lr column shows what selection chose.");
}
