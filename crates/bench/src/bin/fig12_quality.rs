//! Figure 12: improvement in quality (validation loss) over the
//! single-trainer baseline at matched *per-trainer* iteration counts, for
//! several trainer counts.
//!
//! Paper claim: LTFB does not lose quality as trainers scale — at equal
//! per-trainer steps, larger populations show equal or better validation
//! loss than the single trainer that saw the whole dataset.

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{run_ltfb_serial, LtfbConfig, PartitionScheme};

fn cfg_for(k: usize) -> LtfbConfig {
    let mut cfg = LtfbConfig::small(k);
    cfg.train_samples = 2048;
    cfg.val_samples = 256;
    cfg.tournament_samples = 96;
    cfg.ae_steps = 400;
    cfg.steps = 400;
    cfg.exchange_interval = 25;
    cfg.eval_interval = 50;
    // Fig. 12 models the paper's 10M-sample regime, where even a 1/64
    // partition densely covers the design space — so silos are sliced
    // from the space-filling design index. (Fig. 13 uses the hard
    // region-silo scheme instead; see DESIGN.md.)
    cfg.partition = PartitionScheme::ByIndex;
    cfg
}

fn main() {
    banner(
        "Figure 12",
        "validation-loss improvement over 1-trainer baseline vs per-trainer steps",
    );
    let ks = [1usize, 2, 4, 8];
    println!("running populations K = {ks:?} (equal per-trainer step budgets)...\n");

    // Baseline: single trainer over the full dataset.
    let baseline = run_ltfb_serial(&cfg_for(1));
    let base_hist = &baseline.histories[0];

    let mut results = Vec::new();
    for &k in &ks[1..] {
        let out = run_ltfb_serial(&cfg_for(k));
        results.push((k, out));
    }

    let checkpoints: Vec<u64> = base_hist.points().iter().map(|&(s, _)| s).collect();
    let mut rows = Vec::new();
    for &step in &checkpoints {
        let base = base_hist.at_step(step).unwrap();
        let mut row = vec![step.to_string(), format!("{base:.4}")];
        for (k, out) in &results {
            // Population best at this step (the model LTFB would deploy).
            let best = out
                .histories
                .iter()
                .filter_map(|h| h.at_step(step))
                .min_by(f32::total_cmp)
                .unwrap();
            let improvement = base / best;
            row.push(format!("{best:.4}"));
            row.push(format!("{improvement:.2}x"));
            let _ = k;
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("per_trainer_step".to_string())
        .chain(std::iter::once("K=1_loss".to_string()))
        .chain(
            ks[1..]
                .iter()
                .flat_map(|k| [format!("K={k}_best_loss"), format!("K={k}_improvement")]),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    let path = write_csv("fig12_quality.csv", &header_refs, &rows);

    // Final-step summary.
    println!(
        "\nfinal per-trainer step ({}):",
        checkpoints.last().unwrap()
    );
    let base_final = base_hist.last().unwrap();
    for (k, out) in &results {
        let (_, best) = out.best();
        println!(
            "  K={k}: best val loss {best:.4} vs baseline {base_final:.4} -> improvement {:.2}x",
            base_final / best
        );
    }
    println!("\npaper claim: no quality degradation with trainer count; larger K");
    println!("matches or improves quality at equal per-trainer iterations.");
    println!("csv: {}", path.display());
}
