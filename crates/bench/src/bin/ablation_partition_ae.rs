//! Ablation: (1) silo construction — space-filling index slices vs
//! contiguous design-space regions; (2) shared a-priori autoencoder vs
//! per-trainer local autoencoders.
//!
//! The second ablation documents a subtle failure mode we hit while
//! reproducing the paper: if each trainer pre-trains its own autoencoder,
//! exchanged generators target *incompatible latent spaces*, foreign
//! generators always look bad under the local encoder, and the tournament
//! silently degenerates to K-independent training (zero adoptions).

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_core::{
    pairing, pretrain_global_autoencoder, run_ltfb_serial, LtfbConfig, PartitionScheme, Trainer,
};

fn base_cfg(k: usize) -> LtfbConfig {
    let mut cfg = LtfbConfig::small(k);
    cfg.train_samples = 1024;
    cfg.val_samples = 192;
    cfg.tournament_samples = 64;
    cfg.ae_steps = 300;
    cfg.steps = 300;
    cfg.exchange_interval = 30;
    cfg.eval_interval = 300;
    cfg
}

/// LTFB with per-trainer local autoencoders (the broken configuration).
fn run_with_local_autoencoders(cfg: &LtfbConfig) -> (f32, u64) {
    let mut trainers: Vec<Trainer> = (0..cfg.n_trainers).map(|t| Trainer::new(*cfg, t)).collect();
    for t in &mut trainers {
        t.pretrain_autoencoder(); // per-trainer latent space
    }
    for step in 1..=cfg.steps {
        for t in &mut trainers {
            t.train_step();
        }
        if step % cfg.exchange_interval == 0 {
            let round = step / cfg.exchange_interval;
            let partners = pairing(cfg.n_trainers, round, cfg.seed);
            let payloads: Vec<_> = trainers
                .iter()
                .map(|t| t.gan.generator_to_bytes())
                .collect();
            for (t, p) in partners.iter().enumerate() {
                if let Some(p) = p {
                    ltfb_core::decide_match(&mut trainers[t], *p, payloads[*p].clone());
                }
            }
        }
    }
    let vals: Vec<f32> = trainers
        .iter_mut()
        .map(|t| t.validate().combined())
        .collect();
    let adoptions = trainers.iter().map(|t| t.losses).sum();
    (vals.iter().sum::<f32>() / vals.len() as f32, adoptions)
}

fn main() {
    banner(
        "Ablation",
        "partitioning scheme and shared-vs-local autoencoder",
    );
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;

    println!("-- partitioning: index slices (dense silos) vs design-space regions --");
    let mut rows = Vec::new();
    for k in [2usize, 4, 8] {
        for (name, scheme) in [
            ("by_index", PartitionScheme::ByIndex),
            ("by_region", PartitionScheme::ByRegion),
        ] {
            let mut cfg = base_cfg(k);
            cfg.partition = scheme;
            let out = run_ltfb_serial(&cfg);
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.4}", out.best().1),
                format!("{:.4}", avg(&out.final_val)),
                out.adoptions.to_string(),
            ]);
        }
    }
    let header = ["K", "silos", "best_val", "avg_val", "adoptions"];
    print_table(&header, &rows);
    write_csv("ablation_partition.csv", &header, &rows);

    println!("\n-- autoencoder: shared a-priori latent space vs per-trainer --");
    let mut rows = Vec::new();
    for k in [2usize, 4] {
        let cfg = base_cfg(k);
        let shared = run_ltfb_serial(&cfg);
        let (local_avg, local_adoptions) = run_with_local_autoencoders(&cfg);
        let _ = pretrain_global_autoencoder(&cfg); // exercised above; silence lint patterns
        rows.push(vec![
            k.to_string(),
            "shared".into(),
            format!("{:.4}", avg(&shared.final_val)),
            shared.adoptions.to_string(),
        ]);
        rows.push(vec![
            k.to_string(),
            "local".into(),
            format!("{local_avg:.4}"),
            local_adoptions.to_string(),
        ]);
    }
    let header = ["K", "autoencoder", "avg_val", "adoptions"];
    print_table(&header, &rows);
    write_csv("ablation_autoencoder.csv", &header, &rows);
    println!("\nreading: local autoencoders collapse adoption counts toward zero —");
    println!("the tournament cannot compare generators across latent spaces, so the");
    println!("paper's 'trained a priori' shared autoencoder is load-bearing.");
}
