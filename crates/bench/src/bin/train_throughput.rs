//! train_throughput: steady-state training hot-path benchmark.
//!
//! Runs the SAME binary over the same golden-seed mini-batches twice:
//! once through the reference (allocating) `train_step`, once through the
//! workspace `train_step_ws` path, and reports steps/sec, samples/sec and
//! allocs/step measured with the counting global allocator. The workspace
//! path must be bit-identical to the reference (checked here via the loss
//! trajectory and weight fingerprints) and must perform ZERO allocations
//! per step after warm-up.
//!
//! Writes `results/train_throughput.csv` and `BENCH_train.json` (in the
//! current directory; `scripts/perf_smoke.sh` runs it from the repo root
//! and gates on the committed JSON).

use ltfb_alloccount::{counts, CountingAlloc};
use ltfb_bench::{banner, print_table, write_csv};
use ltfb_comm::run_world;
use ltfb_core::{dp_train_step_overlapped, DpOverlap};
use ltfb_gan::{batch_from_samples, CycleGan, CycleGanConfig};
use ltfb_jag::{r2_point, JagSimulator, Sample};
use ltfb_nn::{FusedGradients, Workspace};
use ltfb_tensor::Matrix;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SEED: u64 = 2019;
const MB: usize = 32;
const N_BATCHES: usize = 4;
const WARMUP: usize = 20;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn timed_steps() -> usize {
    env_usize("LTFB_BENCH_STEPS", 200)
}

/// Repetitions per path; the fastest is reported (best-of-N filters out
/// scheduler noise, which only ever slows a run down).
fn reps() -> usize {
    env_usize("LTFB_BENCH_REPS", 5).max(1)
}

struct PathStats {
    label: &'static str,
    steps_per_sec: f64,
    samples_per_sec: f64,
    allocs_per_step: f64,
    bytes_per_step: f64,
    last_loss_bits: u32,
    fingerprint: u64,
}

fn make_batches(cfg: &CycleGanConfig) -> Vec<(Matrix, Matrix)> {
    let sim = JagSimulator::new(cfg.jag);
    let samples: Vec<Sample> = (0..(N_BATCHES * MB) as u64)
        .map(|i| sim.simulate(r2_point(i)))
        .collect();
    samples
        .chunks(MB)
        .map(|chunk| {
            let refs: Vec<&Sample> = chunk.iter().collect();
            batch_from_samples(cfg, &refs)
        })
        .collect()
}

/// Drive `steps` training steps and measure wall time + allocator deltas.
fn measure(
    label: &'static str,
    batches: &[(Matrix, Matrix)],
    steps: usize,
    mut step_fn: impl FnMut(&Matrix, &Matrix) -> f32,
) -> PathStats {
    // Warm-up: populates caches, workspace pools and Adam state so the
    // timed region sees only steady-state behaviour.
    let mut last = 0.0f32;
    for i in 0..WARMUP {
        let (x, y) = &batches[i % batches.len()];
        last = step_fn(x, y);
    }
    let mut best_secs = f64::INFINITY;
    let mut worst_alloc = ltfb_alloccount::Counts::default();
    let mut step = WARMUP;
    for _ in 0..reps() {
        let before = counts();
        let t0 = Instant::now();
        for i in step..step + steps {
            let (x, y) = &batches[i % batches.len()];
            last = step_fn(x, y);
        }
        step += steps;
        let secs = t0.elapsed().as_secs_f64();
        let delta = counts().since(before);
        best_secs = best_secs.min(secs);
        if delta.allocs > worst_alloc.allocs {
            worst_alloc = delta;
        }
    }
    PathStats {
        label,
        steps_per_sec: steps as f64 / best_secs,
        samples_per_sec: (steps * MB) as f64 / best_secs,
        allocs_per_step: worst_alloc.allocs as f64 / steps as f64,
        bytes_per_step: worst_alloc.bytes as f64 / steps as f64,
        last_loss_bits: last.to_bits(),
        fingerprint: 0,
    }
}

/// One rank's view of the data-parallel comparison.
struct DpStats {
    ser_secs: f64,
    ov_secs: f64,
    ser_wait: Duration,
    ov_wait: Duration,
}

/// Aggregated multi-rank result for the `overlap` JSON row.
struct OverlapStats {
    ranks: usize,
    steps_per_sec_serialized: f64,
    steps_per_sec_overlapped: f64,
    comm_wait_ms_serialized: f64,
    comm_wait_ms_overlapped: f64,
}

/// Data-parallel comparison on `DP_RANKS` in-process ranks: the fused
/// *blocking* allreduce (`dp_train_step_ws`, gradient exchange fully
/// serialized behind backward) vs the bucketed *backward-overlapped*
/// engine (`dp_train_step_overlapped`). Both walk bit-identical weight
/// trajectories — asserted per rank — so the only difference is when
/// communication happens. Comm wait is time blocked in the exchange:
/// the whole allreduce on the serialized path, only the `finish()`
/// drain on the overlapped one.
fn measure_overlap(steps: usize) -> OverlapStats {
    const DP_RANKS: usize = 4;
    const DP_WARMUP: usize = 10;
    let per_rank = run_world(DP_RANKS, move |comm| {
        // Weak scaling, like the paper's data-parallel trainers: every
        // rank keeps the full MB-row local mini-batch (global batch
        // MB * DP_RANKS) and ranks see disjoint sample streams. img_size
        // 8 rather than the serial bench's 4 so backward is long enough
        // to hide an allreduce behind at all.
        let cfg = CycleGanConfig::small(8);
        let sim = JagSimulator::new(cfg.jag);
        let base = (comm.rank() * N_BATCHES * MB) as u64;
        let samples: Vec<Sample> = (0..(N_BATCHES * MB) as u64)
            .map(|i| sim.simulate(r2_point(base + i)))
            .collect();
        let shards: Vec<(Matrix, Matrix)> = samples
            .chunks(MB)
            .map(|chunk| {
                let refs: Vec<&Sample> = chunk.iter().collect();
                batch_from_samples(&cfg, &refs)
            })
            .collect();

        let mut gan_ser = CycleGan::new(cfg, SEED);
        let mut gan_ov = CycleGan::new(cfg, SEED);
        let mut ws_ser = Workspace::new();
        let mut ws_ov = Workspace::new();
        let mut fused = FusedGradients::new();
        let mut ov = DpOverlap::new();

        let ser_step = |gan: &mut CycleGan,
                        ws: &mut Workspace,
                        fused: &mut FusedGradients,
                        x: &Matrix,
                        y: &Matrix,
                        wait: &mut Duration| {
            gan.train_step_ws_with_sync(x, y, ws, &mut |net| {
                let t0 = Instant::now();
                fused.allreduce(net, &comm);
                *wait += t0.elapsed();
            })
        };

        // Warm-up both paths (pools, Adam state, bucket plans).
        let mut sink = Duration::ZERO;
        for i in 0..DP_WARMUP {
            let (x, y) = &shards[i % shards.len()];
            ser_step(&mut gan_ser, &mut ws_ser, &mut fused, x, y, &mut sink);
            dp_train_step_overlapped(&mut gan_ov, x, y, &comm, &mut ws_ov, &mut ov);
        }
        let _ = ov.take_comm_wait();

        let mut best = DpStats {
            ser_secs: f64::INFINITY,
            ov_secs: f64::INFINITY,
            ser_wait: Duration::MAX,
            ov_wait: Duration::MAX,
        };
        let mut step = DP_WARMUP;
        for _ in 0..reps() {
            // Serialized leg.
            comm.barrier();
            let mut ser_wait = Duration::ZERO;
            let t0 = Instant::now();
            for i in step..step + steps {
                let (x, y) = &shards[i % shards.len()];
                ser_step(&mut gan_ser, &mut ws_ser, &mut fused, x, y, &mut ser_wait);
            }
            let ser_secs = t0.elapsed().as_secs_f64();

            // Overlapped leg, same steps.
            comm.barrier();
            let t0 = Instant::now();
            for i in step..step + steps {
                let (x, y) = &shards[i % shards.len()];
                dp_train_step_overlapped(&mut gan_ov, x, y, &comm, &mut ws_ov, &mut ov);
            }
            let ov_secs = t0.elapsed().as_secs_f64();
            let ov_wait = ov.take_comm_wait();

            step += steps;
            // Best-of independently per metric: scheduler noise only
            // ever inflates either one.
            best.ser_secs = best.ser_secs.min(ser_secs);
            best.ov_secs = best.ov_secs.min(ov_secs);
            best.ser_wait = best.ser_wait.min(ser_wait);
            best.ov_wait = best.ov_wait.min(ov_wait);
        }

        // Both paths must have walked the same trajectory, bit for bit.
        for (a, b) in gan_ser.networks().iter().zip(gan_ov.networks().iter()) {
            assert_eq!(
                a.weights_fingerprint(),
                b.weights_fingerprint(),
                "rank {}: overlapped DP path diverged from the fused blocking path",
                comm.rank()
            );
        }
        best
    });

    let ranks = per_rank.len();
    let timed = steps as f64;
    // Steps/sec from the slowest rank (the one gating the collective);
    // comm wait averaged over ranks, reported per step.
    let ser_secs = per_rank.iter().map(|s| s.ser_secs).fold(0.0, f64::max);
    let ov_secs = per_rank.iter().map(|s| s.ov_secs).fold(0.0, f64::max);
    let mean_ms = |f: &dyn Fn(&DpStats) -> Duration| {
        per_rank
            .iter()
            .map(|s| f(s).as_secs_f64() * 1e3)
            .sum::<f64>()
            / ranks as f64
            / timed
    };
    OverlapStats {
        ranks,
        steps_per_sec_serialized: timed / ser_secs,
        steps_per_sec_overlapped: timed / ov_secs,
        comm_wait_ms_serialized: mean_ms(&|s| s.ser_wait),
        comm_wait_ms_overlapped: mean_ms(&|s| s.ov_wait),
    }
}

fn json_path(p: &PathStats) -> String {
    format!(
        "{{\"steps_per_sec\": {:.3}, \"samples_per_sec\": {:.3}, \
         \"allocs_per_step\": {:.3}, \"bytes_per_step\": {:.1}}}",
        p.steps_per_sec, p.samples_per_sec, p.allocs_per_step, p.bytes_per_step
    )
}

fn main() {
    banner(
        "train_throughput",
        "steady-state hot path: reference train_step vs workspace train_step_ws",
    );
    let cfg = CycleGanConfig::small(4);
    let batches = make_batches(&cfg);
    let steps = timed_steps();

    // Reference (allocating) path: the pre-workspace training step, kept
    // in-tree as the golden baseline.
    let mut gan_ref = CycleGan::new(cfg, SEED);
    let mut reference = measure("reference", &batches, steps, |x, y| {
        gan_ref.train_step(x, y).d_loss
    });
    reference.fingerprint = gan_ref.generator_fingerprint();

    // Workspace path: same seed, same batches, caller-owned scratch.
    let mut gan_ws = CycleGan::new(cfg, SEED);
    let mut ws = Workspace::new();
    let mut workspace = measure("workspace", &batches, steps, |x, y| {
        gan_ws.train_step_ws(x, y, &mut ws).d_loss
    });
    workspace.fingerprint = gan_ws.generator_fingerprint();

    let identical = reference.last_loss_bits == workspace.last_loss_bits
        && reference.fingerprint == workspace.fingerprint;
    assert!(
        identical,
        "workspace path diverged from reference: loss bits {:#x} vs {:#x}, \
         fingerprint {:#x} vs {:#x}",
        reference.last_loss_bits,
        workspace.last_loss_bits,
        reference.fingerprint,
        workspace.fingerprint
    );

    // Multi-rank overlap comparison (bit-identity asserted inside).
    let overlap = measure_overlap(steps);

    let speedup = workspace.steps_per_sec / reference.steps_per_sec;
    let header = [
        "path",
        "steps/sec",
        "samples/sec",
        "allocs/step",
        "bytes/step",
    ];
    let rows: Vec<Vec<String>> = [&reference, &workspace]
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                format!("{:.1}", p.steps_per_sec),
                format!("{:.1}", p.samples_per_sec),
                format!("{:.1}", p.allocs_per_step),
                format!("{:.0}", p.bytes_per_step),
            ]
        })
        .collect();
    print_table(&header, &rows);
    println!("speedup (steps/sec): {speedup:.2}x, trajectories bit-identical");
    println!(
        "dp overlap ({} ranks): serialized {:.1} steps/sec ({:.3} ms comm wait/step), \
         overlapped {:.1} steps/sec ({:.3} ms comm wait/step), comm wait x{:.2}",
        overlap.ranks,
        overlap.steps_per_sec_serialized,
        overlap.comm_wait_ms_serialized,
        overlap.steps_per_sec_overlapped,
        overlap.comm_wait_ms_overlapped,
        overlap.comm_wait_ms_overlapped / overlap.comm_wait_ms_serialized
    );

    let csv = write_csv("train_throughput.csv", &header, &rows);
    // Optional provenance: the pre-change baseline (allocating step +
    // per-dispatch parallelism probe, i.e. the hot path before this
    // optimisation landed) is measured once against the old tree and
    // injected when (re)generating the committed JSON — see DESIGN.md
    // §6d for the methodology. CI regenerations omit it and gate on the
    // in-binary reference/workspace ratio instead.
    let prechange = std::env::var("LTFB_PRECHANGE_STEPS_PER_SEC")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|base| {
            format!(
                "  \"prechange_baseline_steps_per_sec\": {base:.3},\n  \
                 \"speedup_vs_prechange\": {:.3},\n",
                workspace.steps_per_sec / base
            )
        })
        .unwrap_or_default();
    let overlap_json = format!(
        "{{\"ranks\": {}, \"img_size\": 8, \"mb_per_rank\": {MB}, \
         \"steps_per_sec_serialized\": {:.3}, \
         \"steps_per_sec_overlapped\": {:.3}, \
         \"comm_wait_ms_per_step_serialized\": {:.4}, \
         \"comm_wait_ms_per_step_overlapped\": {:.4}, \
         \"speedup\": {:.3}, \"comm_wait_ratio\": {:.3}, \
         \"bit_identical\": true}}",
        overlap.ranks,
        overlap.steps_per_sec_serialized,
        overlap.steps_per_sec_overlapped,
        overlap.comm_wait_ms_serialized,
        overlap.comm_wait_ms_overlapped,
        overlap.steps_per_sec_overlapped / overlap.steps_per_sec_serialized,
        overlap.comm_wait_ms_overlapped / overlap.comm_wait_ms_serialized
    );
    let json = format!(
        "{{\n  \"bench\": \"train_throughput\",\n  \
         \"config\": {{\"img_size\": 4, \"mb\": {MB}, \"warmup_steps\": {WARMUP}, \
         \"timed_steps\": {steps}}},\n  \
         \"reference\": {},\n  \"workspace\": {},\n  \"overlap\": {},\n{prechange}  \
         \"speedup_steps_per_sec\": {:.3},\n  \"bit_identical\": {}\n}}\n",
        json_path(&reference),
        json_path(&workspace),
        overlap_json,
        speedup,
        identical
    );
    let json_file = std::env::var("LTFB_BENCH_JSON").unwrap_or_else(|_| "BENCH_train.json".into());
    std::fs::write(&json_file, json).expect("write BENCH_train.json");
    println!("wrote {} and {}", csv.display(), json_file);
}
