//! Tiered-vs-in-memory store benchmark: the same 4-rank, multi-epoch
//! fetch workload driven once through the in-memory reference store and
//! once through the tiered (mmap shard → hot tier) store at several hot
//! budgets. Reports samples/sec, tier hit rate, and bytes mapped —
//! `results/store_tiering.csv` for the sweep, `BENCH_store.json` for the
//! committed headline comparison.

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_comm::run_world;
use ltfb_datastore::{DataStore, PopulateMode, TierStats};
use ltfb_jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, JagConfig};
use std::time::Instant;

const RANKS: usize = 4;
const SAMPLES: u64 = 512;
const PER_FILE: usize = 64;
const MB: usize = 32;
const EPOCHS: u64 = 3;
const SEED: u64 = 7;

struct Measured {
    label: String,
    samples_per_sec: f64,
    hit_rate: f64,
    bytes_mapped: u64,
    evicted: u64,
}

/// Drive `EPOCHS` epochs through `make`'s store on every rank; returns
/// aggregate throughput and tier counters (zeros for the in-memory run).
fn measure<F>(label: &str, spec: &DatasetSpec, make: F) -> Measured
where
    F: Fn(ltfb_comm::Comm, DatasetSpec) -> DataStore + Send + Sync + Clone + 'static,
{
    let spec2 = spec.clone();
    let t0 = Instant::now();
    let per_rank = run_world(RANKS, move |comm| {
        let mut store = make(comm, spec2.clone());
        let mut consumed = 0usize;
        for epoch in 0..EPOCHS {
            consumed += store.fetch_epoch(epoch).expect("epoch ok").len();
        }
        (consumed, store.tier_stats())
    });
    let wall = t0.elapsed().as_secs_f64();
    let consumed: usize = per_rank.iter().map(|(c, _)| c).sum();
    let (hits, misses, mapped, evicted) =
        per_rank
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64), |a, (_, s)| match s {
                Some(TierStats {
                    hits,
                    misses,
                    bytes_mapped,
                    evicted,
                    ..
                }) => (a.0 + hits, a.1 + misses, a.2 + bytes_mapped, a.3 + evicted),
                None => a,
            });
    Measured {
        label: label.to_string(),
        samples_per_sec: consumed as f64 / wall,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        bytes_mapped: mapped,
        evicted,
    }
}

fn main() {
    banner(
        "Store",
        "tiered (mmap + hot tier) vs in-memory store throughput",
    );
    let dir = temp_dataset_dir("store-bench");
    let spec = DatasetSpec::new(dir.clone(), JagConfig::small(8), SAMPLES, PER_FILE);
    spec.generate_all().expect("generate dataset");
    spec.generate_all_shards().expect("generate shards");
    let sample_bytes = spec.cfg.sample_bytes() as u64;
    println!("{RANKS} ranks, {SAMPLES} samples x {sample_bytes} B, {EPOCHS} epochs per config\n");

    let mut runs = vec![measure("in-memory", &spec, |comm, spec| {
        let ids: Vec<u64> = (0..SAMPLES).collect();
        DataStore::new(comm, spec, ids, PopulateMode::Preload, MB, SEED, None).expect("fits")
    })];
    // Hot budgets as a fraction of the per-rank partition (the per-rank
    // working set is ~SAMPLES/RANKS owned samples).
    for (label, frac) in [
        ("tiered-cold", 0.0f64),
        ("tiered-half", 0.5),
        ("tiered-full", 1.5),
    ] {
        let budget = ((SAMPLES as f64 / RANKS as f64) * frac * sample_bytes as f64) as u64;
        let label = label.to_string();
        runs.push(measure(&label, &spec, move |comm, spec| {
            let ids: Vec<u64> = (0..SAMPLES).collect();
            DataStore::new_tiered(comm, spec, ids, MB, SEED, budget, 1).expect("opens")
        }));
    }
    cleanup_dataset_dir(&dir);

    let header = [
        "config",
        "samples_per_sec",
        "tier_hit_rate",
        "bytes_mapped",
        "evicted",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|m| {
            vec![
                m.label.clone(),
                format!("{:.0}", m.samples_per_sec),
                format!("{:.3}", m.hit_rate),
                format!("{}", m.bytes_mapped),
                format!("{}", m.evicted),
            ]
        })
        .collect();
    print_table(&header, &rows);
    let csv = write_csv("store_tiering.csv", &header, &rows);

    let mem = &runs[0];
    let warm = runs.last().expect("tiered runs present");
    let json = format!(
        "{{\n  \"bench\": \"replay_store_bench\",\n  \
         \"config\": {{\"ranks\": {RANKS}, \"samples\": {SAMPLES}, \"mb\": {MB}, \
         \"epochs\": {EPOCHS}, \"sample_bytes\": {sample_bytes}}},\n  \
         \"in_memory_samples_per_sec\": {:.1},\n  \
         \"tiered_warm_samples_per_sec\": {:.1},\n  \
         \"tiered_warm_relative\": {:.3},\n  \
         \"tiered_warm_hit_rate\": {:.3},\n  \
         \"tiered_warm_bytes_mapped\": {}\n}}\n",
        mem.samples_per_sec,
        warm.samples_per_sec,
        warm.samples_per_sec / mem.samples_per_sec,
        warm.hit_rate,
        warm.bytes_mapped
    );
    let json_file = std::env::var("LTFB_BENCH_JSON").unwrap_or_else(|_| "BENCH_store.json".into());
    std::fs::write(&json_file, json).expect("write BENCH_store.json");
    println!("\nwrote {} and {}", csv.display(), json_file);
}
