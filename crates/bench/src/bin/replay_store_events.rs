//! Replay bridge: run the *real* distributed data store on a small
//! dataset, collect its measured event counts (files opened, samples and
//! bytes shuffled), scale them to the paper's 10M-sample workload, and
//! cost them with the calibrated Lassen models. This connects the two
//! halves of the reproduction — the semantic half produces the event
//! stream, the timing half prices it.

use ltfb_bench::{banner, fmt_secs, print_table, results_dir, write_csv};
use ltfb_comm::run_world_obs;
use ltfb_datastore::{DataStore, PopulateMode};
use ltfb_hpcsim::{shuffle_time, MachineSpec, Placement, WorkloadSpec};
use ltfb_jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, JagConfig};
use ltfb_obs::Registry;

fn main() {
    banner(
        "Replay",
        "real data-store event stream costed by the Lassen model",
    );
    // --- Real run: 16 ranks, small dataset, both modes. ---
    let dir = temp_dataset_dir("replay");
    let small_samples: u64 = 4_000;
    let per_file = 250;
    let spec = DatasetSpec::new(dir.clone(), JagConfig::small(8), small_samples, per_file);
    spec.generate_all().expect("generate dataset");
    println!(
        "real run: 16 ranks, {} samples in {} files, 3 epochs per mode\n",
        small_samples,
        spec.n_files()
    );

    // One shared registry across both modes: the export aggregates the
    // whole replay (per-rank datastore counters + comm traffic).
    let metrics = Registry::new();
    let mut measured = Vec::new();
    for mode in [PopulateMode::Preload, PopulateMode::Dynamic] {
        let spec2 = spec.clone();
        let reg2 = metrics.clone();
        let stats = run_world_obs(16, &metrics, move |comm| {
            let ids: Vec<u64> = (0..spec2.n_samples).collect();
            let mut store =
                DataStore::new(comm, spec2.clone(), ids, mode, 128, 7, None).expect("fits");
            store.attach_obs(&reg2);
            for epoch in 0..3 {
                store.fetch_epoch(epoch).expect("epoch ok");
            }
            store.stats()
        });
        let agg = stats.iter().fold((0u64, 0u64, 0u64, 0u64), |a, s| {
            (
                a.0 + s.fs_file_reads,
                a.1 + s.fs_sample_reads,
                a.2 + s.shuffled_samples,
                a.3 + s.shuffled_bytes,
            )
        });
        measured.push((mode, agg));
    }
    cleanup_dataset_dir(&dir);

    // --- Scale to the paper's workload and cost with the machine model. ---
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let paper_samples = 10_000_000f64;
    let scale = paper_samples / small_samples as f64;
    let place = Placement::new(4, 4);

    let mut rows = Vec::new();
    for (mode, (files, sample_reads, shuffled, _bytes)) in &measured {
        // Event counts scale linearly with sample count; bytes use the
        // paper's true sample size.
        let files_p = *files as f64 * scale;
        let reads_p = *sample_reads as f64 * scale / 3.0; // per epoch-0
        let shuffled_p = *shuffled as f64 * scale / 3.0; // per steady epoch
        let shuffle_bytes_p = shuffled_p * w.sample_bytes as f64;

        // Cost: whole-file read time (PFS streaming), random reads (open
        // latency bound), steady shuffle (network model, fully exposed
        // here — the real system overlaps it).
        let file_time = files_p
            * (m.pfs.open_latency_s
                + (w.samples_per_file as u64 * w.sample_bytes) as f64 / m.pfs.server_bw)
            / place.ranks() as f64;
        let read_time = reads_p * m.pfs.open_latency_s / place.ranks() as f64;
        let steps = paper_samples / w.mini_batch as f64;
        let shuffle = steps
            * shuffle_time(
                &m.net,
                place,
                shuffle_bytes_p / steps * place.ranks() as f64,
                0.0,
            )
            / place.ranks() as f64;

        rows.push(vec![
            format!("{mode:?}"),
            format!("{:.0}", files_p),
            format!("{:.0}", reads_p),
            format!("{:.2e}", shuffled_p),
            fmt_secs(file_time),
            fmt_secs(read_time),
            fmt_secs(shuffle),
        ]);
    }
    let header = [
        "mode",
        "file_reads@10M",
        "sample_reads/epoch0",
        "shuffled/epoch",
        "bulk_io_s",
        "rand_io_s",
        "shuffle_s(unoverlapped)",
    ];
    print_table(&header, &rows);
    let path = write_csv("replay_store_events.csv", &header, &rows);
    println!("\nreading: preload turns epoch-0 I/O into bulk streaming (no random");
    println!("reads); the steady-state shuffle volume is identical across modes and");
    println!("cheap even if fully exposed — which is why the store's background");
    println!("threads hide it completely in the paper.");
    println!("csv: {}", path.display());
    let report = results_dir().join("replay_store_metrics.json");
    match metrics.write_report(&report) {
        Ok(()) => println!("metrics: {}", report.display()),
        Err(e) => eprintln!("cannot write {}: {e}", report.display()),
    }
}
