//! Figure 11: LTFB strong scaling on the 10M-sample set, 16 -> 1024 GPUs
//! (1, 8, 16, 32, 64 trainers of 16 GPUs each; the 1-trainer baseline is
//! the memory-forced 16-node x 1-GPU placement).
//!
//! Paper anchors: 70.2x speedup at 64 trainers (109% parallel
//! efficiency); preload time improves with trainer count but degrades at
//! 64 trainers due to inter-trainer file-system contention.

use ltfb_bench::{banner, fmt_secs, print_table, write_csv};
use ltfb_hpcsim::{paper_sweep, MachineSpec, TrainingModel, WorkloadSpec};

fn main() {
    banner(
        "Figure 11",
        "LTFB training + preload times, 10M samples, 16->1024 GPUs",
    );
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();

    let points = paper_sweep(&m, &w, &t);
    let base = points[0].epoch_time;
    let mut rows = Vec::new();
    for p in &points {
        let speedup = base / p.epoch_time;
        let eff = speedup / p.trainers as f64 * 100.0;
        rows.push(vec![
            p.trainers.to_string(),
            p.gpus.to_string(),
            fmt_secs(p.epoch_time),
            format!("{speedup:.1}"),
            format!("{eff:.0}%"),
            fmt_secs(p.preload_time),
            fmt_secs(p.tournament_overhead),
            if p.feasible {
                "yes".into()
            } else {
                "OOM".into()
            },
        ]);
    }
    let header = [
        "trainers",
        "GPUs",
        "epoch_s",
        "speedup",
        "efficiency",
        "preload_s",
        "tourney_s",
        "fits_mem",
    ];
    print_table(&header, &rows);
    let path = write_csv("fig11_ltfb_scaling.csv", &header, &rows);

    let p32 = &points[3];
    let p64 = &points[4];
    println!("\npaper anchors: 70.2x @64 trainers, 109% efficiency");
    println!(
        "preload degradation at 64 trainers: {} s vs {} s at 32 ({}) — paper observed the same regression",
        fmt_secs(p64.preload_time),
        fmt_secs(p32.preload_time),
        if p64.preload_time > p32.preload_time { "reproduced" } else { "NOT reproduced" },
    );
    println!("note: K=2 and K=4 are absent from the sweep because their per-trainer");
    println!("partitions do not fit a 4-node data store (Section IV-E) — the memory");
    println!("model reproduces that constraint (see the feasibility column).");
    println!("csv: {}", path.display());
}
