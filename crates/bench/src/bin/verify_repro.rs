//! One-shot reproduction self-check: re-derives every headline claim of
//! the paper quickly (simulator figures at full scale, training figures
//! at reduced scale) and prints a PASS/FAIL line per claim. Exit status
//! is nonzero if any claim fails — CI for the reproduction itself.

use ltfb_core::{run_k_independent, run_ltfb_serial, LtfbConfig};
use ltfb_hpcsim::{
    dp_placement, evaluate_config, paper_sweep, ConfigOutcome, IngestMode, MachineSpec,
    TrainingModel, WorkloadSpec,
};
use std::process::ExitCode;

struct Check {
    name: &'static str,
    paper: &'static str,
    measured: String,
    pass: bool,
}

fn main() -> ExitCode {
    let mut checks: Vec<Check> = Vec::new();
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();

    // --- Fig. 9: data-parallel speedup and efficiency at 16 GPUs.
    let naive = |g: usize| {
        evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(g),
            1_000_000,
            IngestMode::NoStore,
            1,
        )
    };
    let base = naive(1).steady_total().unwrap();
    let t16 = naive(16).steady_total().unwrap();
    let speedup = base / t16;
    checks.push(Check {
        name: "fig9 16-GPU speedup",
        paper: "9.36x",
        measured: format!("{speedup:.2}x"),
        pass: (8.0..11.0).contains(&speedup),
    });
    let eff = speedup / 16.0 * 100.0;
    checks.push(Check {
        name: "fig9 efficiency @16",
        paper: "~58%",
        measured: format!("{eff:.0}%"),
        pass: (50.0..68.0).contains(&eff),
    });

    // --- Fig. 10: store gains and the OOM annotations.
    let dyn1 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(1),
        1_000_000,
        IngestMode::DynamicStore,
        1,
    )
    .steady_total()
    .unwrap();
    let gain1 = base / dyn1;
    checks.push(Check {
        name: "fig10 store gain @1 GPU",
        paper: "7.73x",
        measured: format!("{gain1:.2}x"),
        pass: (6.0..9.5).contains(&gain1),
    });
    let pre16 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(16),
        1_000_000,
        IngestMode::Preloaded,
        1,
    )
    .steady_total()
    .unwrap();
    let dyn16 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(16),
        1_000_000,
        IngestMode::DynamicStore,
        1,
    )
    .steady_total()
    .unwrap();
    let adv = dyn16 / pre16;
    checks.push(Check {
        name: "fig10 preload vs dynamic",
        paper: "1.10x",
        measured: format!("{adv:.2}x"),
        pass: (1.02..1.3).contains(&adv),
    });
    let oom = matches!(
        evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(1),
            1_000_000,
            IngestMode::Preloaded,
            1
        ),
        ConfigOutcome::OutOfMemory { .. }
    ) && matches!(
        evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(2),
            1_000_000,
            IngestMode::Preloaded,
            1
        ),
        ConfigOutcome::OutOfMemory { .. }
    );
    checks.push(Check {
        name: "fig10 preload OOM @1-2 GPUs",
        paper: "stated",
        measured: if oom {
            "reproduced".into()
        } else {
            "missing".into()
        },
        pass: oom,
    });

    // --- Fig. 11: LTFB scaling.
    let pts = paper_sweep(&m, &w, &t);
    let s64 = pts[0].epoch_time / pts[4].epoch_time;
    checks.push(Check {
        name: "fig11 64-trainer speedup",
        paper: "70.2x (109%)",
        measured: format!("{s64:.1}x ({:.0}%)", s64 / 64.0 * 100.0),
        pass: (60.0..80.0).contains(&s64) && s64 / 64.0 > 1.0,
    });
    checks.push(Check {
        name: "fig11 preload regression @64",
        paper: "observed",
        measured: format!(
            "{:.1}s vs {:.1}s @32",
            pts[4].preload_time, pts[3].preload_time
        ),
        pass: pts[4].preload_time > pts[3].preload_time,
    });

    // --- Figs. 12/13 at miniature scale (real training).
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 512;
    cfg.val_samples = 96;
    cfg.tournament_samples = 48;
    cfg.steps = 150;
    cfg.ae_steps = 150;
    cfg.exchange_interval = 25;
    cfg.eval_interval = 150;
    let ltfb = run_ltfb_serial(&cfg);
    let kind = run_k_independent(&cfg);
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let (la, ka) = (avg(&ltfb.final_val), avg(&kind.final_val));
    checks.push(Check {
        name: "fig13 LTFB beats K-independent",
        paper: "consistently better",
        measured: format!("{la:.4} vs {ka:.4}"),
        pass: la < ka,
    });
    checks.push(Check {
        name: "tournaments adopt generators",
        paper: "models propagate",
        measured: format!("{} adoptions", ltfb.adoptions),
        pass: ltfb.adoptions > 0,
    });

    // --- Report.
    println!("reproduction self-check ({} claims):\n", checks.len());
    let mut all = true;
    for c in &checks {
        all &= c.pass;
        println!(
            "  [{}] {:<32} paper {:<14} measured {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.paper,
            c.measured
        );
    }
    println!();
    if all {
        println!("all claims reproduced.");
        ExitCode::SUCCESS
    } else {
        println!("SOME CLAIMS FAILED — see above.");
        ExitCode::FAILURE
    }
}
