//! Serving-engine latency/throughput benchmark: micro-batching vs forced
//! batch-size 1, swept over client concurrency. Writes
//! `results/serve_latency.csv` plus a unified `ltfb-obs` metrics report
//! (`results/serve_latency_metrics.json`) aggregated over the batched
//! arms.
//!
//! The interesting regime is deep queues (concurrency >= 32): the
//! coalescer packs the in-flight requests of a closed-loop client fleet
//! into one GEMM per kind, amortising per-call weight traffic. Before
//! the rayon shim's per-dispatch worker probe was removed (DESIGN.md
//! §6d) that fixed cost inflated the batching ratio past 2x; with
//! dispatch now effectively free, the remaining gain is weight-reuse in
//! cache and only pulls ahead once the coalescer sees deep queues.

use ltfb_bench::{banner, print_table, results_dir, write_csv};
use ltfb_gan::{CycleGan, CycleGanConfig};
use ltfb_obs::Registry;
use ltfb_serve::{
    run_load, BatchPolicy, LoadGenConfig, LoadMode, ModelRegistry, QuantMode, Server,
};
use std::sync::Arc;

struct Row {
    clients: usize,
    batched_rps: f64,
    batched_p50: f64,
    batched_p99: f64,
    batched_mean_batch: f64,
    unbatched_rps: f64,
    unbatched_p50: f64,
    unbatched_p99: f64,
    speedup: f64,
    int8_rps: f64,
    int8_p99: f64,
    int8_vs_f32: f64,
}

fn run_arm(
    cfg: CycleGanConfig,
    policy: BatchPolicy,
    clients: usize,
    requests: usize,
    metrics: Option<&Registry>,
    mode: QuantMode,
) -> (f64, f64, f64, f64) {
    let registry = Arc::new(ModelRegistry::with_mode(CycleGan::new(cfg, 2019), 1, mode));
    assert_eq!(
        registry.current().is_quantized(),
        mode == QuantMode::Int8,
        "int8 arm must actually serve int8"
    );
    let server = match metrics {
        Some(m) => Server::start_with_obs(registry, policy, m),
        None => Server::start(registry, policy),
    };
    let (x_dim, y_dim) = {
        let m = server.registry().current();
        (m.x_dim(), m.y_dim())
    };
    let load = LoadGenConfig {
        clients,
        requests_per_client: requests,
        inverse_fraction: 0.25,
        mode: LoadMode::Closed,
        seed: 7,
        co_baseline: false,
    };
    let report = run_load(&server.client(), &load, x_dim, y_dim);
    let stats = server.shutdown();
    assert_eq!(
        report.completed,
        (clients * requests) as u64,
        "lost requests"
    );
    (
        report.throughput_rps(),
        stats.latency_p50_us,
        stats.latency_p99_us,
        stats.mean_batch,
    )
}

fn main() {
    banner(
        "serve-latency",
        "micro-batched vs sequential surrogate serving",
    );
    let cfg = CycleGanConfig::small(8);
    // One worker per arm: isolates the batching effect from thread-level
    // parallelism (both arms get the same compute budget).
    let batched_policy = BatchPolicy {
        workers: 1,
        ..BatchPolicy::default()
    };
    let sequential_policy = BatchPolicy {
        workers: 1,
        ..BatchPolicy::sequential()
    };
    let requests = 500usize;

    let metrics = Registry::new();
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8, 16, 32] {
        let (brps, bp50, bp99, bmean) = run_arm(
            cfg,
            batched_policy,
            clients,
            requests,
            Some(&metrics),
            QuantMode::F32,
        );
        let (urps, up50, up99, _) = run_arm(
            cfg,
            sequential_policy,
            clients,
            requests,
            None,
            QuantMode::F32,
        );
        // Int8 arm: same batching policy as the f32 batched arm, so the
        // ratio isolates the numeric path.
        let (qrps, _qp50, qp99, _) = run_arm(
            cfg,
            batched_policy,
            clients,
            requests,
            None,
            QuantMode::Int8,
        );
        rows.push(Row {
            clients,
            batched_rps: brps,
            batched_p50: bp50,
            batched_p99: bp99,
            batched_mean_batch: bmean,
            unbatched_rps: urps,
            unbatched_p50: up50,
            unbatched_p99: up99,
            speedup: if urps > 0.0 { brps / urps } else { 0.0 },
            int8_rps: qrps,
            int8_p99: qp99,
            int8_vs_f32: if brps > 0.0 { qrps / brps } else { 0.0 },
        });
    }

    let header = [
        "clients",
        "batched_rps",
        "batched_p50_us",
        "batched_p99_us",
        "mean_batch",
        "unbatched_rps",
        "unbatched_p50_us",
        "unbatched_p99_us",
        "speedup",
        "int8_rps",
        "int8_p99_us",
        "int8_vs_f32",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                format!("{:.0}", r.batched_rps),
                format!("{:.0}", r.batched_p50),
                format!("{:.0}", r.batched_p99),
                format!("{:.2}", r.batched_mean_batch),
                format!("{:.0}", r.unbatched_rps),
                format!("{:.0}", r.unbatched_p50),
                format!("{:.0}", r.unbatched_p99),
                format!("{:.2}", r.speedup),
                format!("{:.0}", r.int8_rps),
                format!("{:.0}", r.int8_p99),
                format!("{:.2}", r.int8_vs_f32),
            ]
        })
        .collect();
    print_table(&header, &cells);
    let path = write_csv("serve_latency.csv", &header, &cells);
    println!("\nwrote {}", path.display());
    let report = results_dir().join("serve_latency_metrics.json");
    match metrics.write_report(&report) {
        Ok(()) => println!("wrote {}", report.display()),
        Err(e) => eprintln!("cannot write {}: {e}", report.display()),
    }

    let int8_best = rows.iter().map(|r| r.int8_vs_f32).fold(0.0f64, f64::max);
    println!("best int8 vs f32 throughput (same batching): {int8_best:.2}x");
    let peak = rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    let at_high = rows
        .iter()
        .filter(|r| r.clients >= 8)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!("peak micro-batching speedup: {peak:.2}x (best at concurrency >= 8: {at_high:.2}x)");
    if at_high < 1.0 {
        println!(
            "WARNING: micro-batching never caught up with sequential serving \
             at concurrency >= 8 (best {at_high:.2}x); expected >= 1x at deep queues"
        );
    }
}
