//! Ablations on the machine model: (1) rank placement for a fixed 16-GPU
//! trainer (the Fig. 11 superlinearity mechanism), (2) allreduce/backprop
//! overlap, (3) mini-batch size vs data-parallel efficiency (the paper's
//! footnote on the large-batch regime), and (4) the LBANN in-memory store
//! vs Kurth-style node-local staging (Section V).

use ltfb_bench::{banner, fmt_secs, print_table, write_csv};
use ltfb_hpcsim::{
    grad_sync_time, staging_outcome, step_time, store_outcome, MachineSpec, Placement,
    TrainingModel, WorkloadSpec,
};

fn main() {
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();

    banner(
        "Ablation",
        "placement, overlap, mini-batch scaling, staging comparison",
    );

    println!("-- placement of 16 ranks (fixed mini-batch 128) --");
    let mut rows = Vec::new();
    for (nodes, gpn) in [(4usize, 4usize), (8, 2), (16, 1)] {
        let p = Placement::new(nodes, gpn);
        let st = step_time(&m, &w, &t, p);
        let sync = grad_sync_time(&m, p, w.grad_bytes() as f64, w.grad_tensors, t.sync_overlap);
        rows.push(vec![
            format!("{nodes}x{gpn}"),
            format!("{:.1}", st * 1e3),
            format!("{:.1}", sync * 1e3),
            format!("{:.2}x", st / step_time(&m, &w, &t, Placement::new(4, 4))),
        ]);
    }
    let header = ["placement", "step_ms", "sync_ms", "vs_4x4"];
    print_table(&header, &rows);
    write_csv("ablation_placement.csv", &header, &rows);
    println!("(16x1 vs 4x4 is the placement gap behind Fig. 11's 109% efficiency)\n");

    println!("-- allreduce/backprop overlap --");
    let mut rows = Vec::new();
    for overlap in [0.0f64, 0.25, 0.5, 0.75, 0.95] {
        let mut tm = t;
        tm.sync_overlap = overlap;
        let st = step_time(&m, &w, &tm, Placement::new(4, 4));
        let epoch = st * (1_000_000f64 / w.mini_batch as f64);
        rows.push(vec![
            format!("{overlap:.2}"),
            format!("{:.1}", st * 1e3),
            fmt_secs(epoch),
        ]);
    }
    let header = ["overlap", "step_ms", "epoch_s_1M"];
    print_table(&header, &rows);
    write_csv("ablation_overlap.csv", &header, &rows);

    println!("\n-- mini-batch size vs 16-GPU efficiency (paper footnote 2) --");
    let mut rows = Vec::new();
    for mb in [64usize, 128, 256, 512, 1024, 4096] {
        let mut wl = w;
        wl.mini_batch = mb;
        let p16 = Placement::new(4, 4);
        let p1 = Placement::new(1, 1);
        let t16 = step_time(&m, &wl, &t, p16) / mb as f64; // per-sample
        let t1 = step_time(&m, &wl, &t, p1) / mb as f64;
        let eff = t1 / t16 / 16.0;
        rows.push(vec![mb.to_string(), format!("{:.1}%", eff * 100.0)]);
    }
    let header = ["mini_batch", "dp_efficiency_16gpu"];
    print_table(&header, &rows);
    write_csv("ablation_minibatch.csv", &header, &rows);
    println!("(compute+sync only — Fig. 9's 58% end-to-end efficiency also counts");
    println!(" the I/O that parallelises near-linearly across reader ranks)");
    println!("(large batches restore efficiency — but the paper notes that regime");
    println!(" needs learning-rate retuning and does not generalise universally,");
    println!(" which is why LTFB's extra axis of parallelism matters)\n");

    println!("-- in-memory store vs Kurth-style node-local staging (Sec. V) --");
    let mut rows = Vec::new();
    let p = Placement::new(4, 4);
    for (name, sharing) in [
        ("staging s=1", 1.0),
        ("staging s=2", 2.0),
        ("staging s=4", 4.0),
    ] {
        let o = staging_outcome(&m, &w, p, 1_000_000, sharing);
        rows.push(vec![
            name.to_string(),
            fmt_secs(o.setup_time),
            format!("{:.1}", o.p2p_bytes / 1e9),
            format!("{:.1}", o.per_node_bytes / 1e9),
        ]);
    }
    let o = store_outcome(&m, &w, p, 1_000_000);
    rows.push(vec![
        "lbann store".into(),
        fmt_secs(o.setup_time),
        format!("{:.1} (per epoch)", o.p2p_bytes / 1e9),
        format!("{:.1}", o.per_node_bytes / 1e9),
    ]);
    let header = ["strategy", "setup_s", "p2p_GB", "per_node_GB"];
    print_table(&header, &rows);
    write_csv("ablation_staging.csv", &header, &rows);
    println!("(the store holds one copy total and starts training immediately;");
    println!(" staging multiplies local footprint by the sharing factor — the");
    println!(" paper's Section V argument, quantified)");
}
