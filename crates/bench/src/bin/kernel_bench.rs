//! kernel_bench: isolated GEMM-family kernel throughput + int8 accuracy.
//!
//! Measures, per model-relevant shape:
//!   * `gemm` (SIMD micro-kernel) vs `gemm_scalar` (pre-SIMD axpy
//!     formulation) vs `matmul_naive` GFLOP/s, asserting all three are
//!     bit-identical on the benched operands;
//!   * fused `gemm_bias_act` vs the unfused gemm + add_bias + activation
//!     sequence (same result, fewer passes over the output);
//!   * int8 `matmul_q8` vs the f32 linear layer, with the realised
//!     max-abs error asserted against the analytic
//!     `q8_preact_error_bound` — the accuracy gate `perf_smoke.sh`
//!     re-runs on every CI pass.
//!
//! Writes `results/kernel_bench.csv` and `BENCH_kernels.json` (current
//! directory, or `LTFB_KERNEL_JSON`). Like `BENCH_train.json`, the
//! committed JSON gates *ratios* (SIMD vs scalar, fused vs unfused, int8
//! vs f32), which come from one binary on one host and are therefore
//! CPU-frequency independent; absolute GFLOP/s are reported but not
//! gated.

use ltfb_bench::{banner, print_table, write_csv};
use ltfb_tensor::ops::{add_bias, map_into};
use ltfb_tensor::{
    gemm, gemm_bias_act, gemm_scalar, init, matmul_naive, matmul_q8, q8_preact_error_bound,
    quantize_rows, quantize_weights, Activation, Matrix,
};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Time `f` for ~`target_ms`, returning seconds per call (best of reps).
fn time_per_call(target_ms: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    // Calibrate an iteration count.
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((target_ms as f64 / 1e3) / once).ceil().max(1.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: kernels diverge");
    }
}

struct ShapeResult {
    label: String,
    m: usize,
    k: usize,
    n: usize,
    simd_gflops: f64,
    scalar_gflops: f64,
    naive_gflops: f64,
    fused_gflops: f64,
    unfused_gflops: f64,
    q8_gflops: f64,
    q8_err: f32,
    q8_bound: f32,
}

fn bench_shape(label: &str, m: usize, k: usize, n: usize, ms: u64, reps: usize) -> ShapeResult {
    let mut rng = init::seeded_rng(2019 ^ (m as u64) << 24 ^ (k as u64) << 12 ^ n as u64);
    let a = init::uniform(m, k, -1.0, 1.0, &mut rng);
    let b = init::uniform(k, n, -0.8, 0.8, &mut rng);
    let bias = init::uniform(1, n, -0.1, 0.1, &mut rng);
    let flops = (2 * m * k * n) as f64;
    let act = Activation::LeakyRelu(0.1);

    // Correctness first: all three f32 kernels bit-identical on these
    // operands.
    let naive = matmul_naive(&a, &b);
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, &a, &b, 0.0, &mut c);
    assert_bits_equal(&c, &naive, "simd vs naive");
    gemm_scalar(1.0, &a, &b, 0.0, &mut c);
    assert_bits_equal(&c, &naive, "scalar vs naive");

    let simd = time_per_call(ms, reps, || gemm(1.0, &a, &b, 0.0, &mut c));
    let scalar = time_per_call(ms, reps, || gemm_scalar(1.0, &a, &b, 0.0, &mut c));
    let naive_t = time_per_call(ms, reps, || {
        let _ = matmul_naive(&a, &b);
    });

    // Fused epilogue vs the three-pass sequence the layers used to run.
    let mut act_buf = Matrix::zeros(m, n);
    let fused = time_per_call(ms, reps, || {
        gemm_bias_act(1.0, &a, &b, 0.0, &mut c, &bias, act)
    });
    let unfused = time_per_call(ms, reps, || {
        gemm(1.0, &a, &b, 0.0, &mut c);
        add_bias(&mut c, &bias);
        map_into(&c, &mut act_buf, |v| v * (if v > 0.0 { 1.0 } else { 0.1 }));
    });

    // Int8 inference path (quantize activations per call, as serving does;
    // weights are quantized once at publish time).
    let qw = quantize_weights(&b).expect("finite weights");
    let mut q8_out = Matrix::zeros(m, n);
    let q8 = time_per_call(ms, reps, || {
        let qa = quantize_rows(&a);
        matmul_q8(&qa, &qw, bias.as_slice(), act, &mut q8_out);
    });

    // Accuracy gate: realised error vs analytic bound (pre-activation
    // bound also bounds LeakyRelu output error, Lipschitz 1).
    let qa = quantize_rows(&a);
    let bound = q8_preact_error_bound(&qa, &qw);
    matmul_q8(&qa, &qw, bias.as_slice(), act, &mut q8_out);
    let mut f32_out = Matrix::zeros(m, n);
    gemm_bias_act(1.0, &a, &b, 0.0, &mut f32_out, &bias, act);
    let err = q8_out
        .as_slice()
        .iter()
        .zip(f32_out.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    assert!(
        err <= bound * 1.05 + 1e-4,
        "{label}: int8 error {err} exceeds analytic bound {bound}"
    );

    ShapeResult {
        label: label.to_string(),
        m,
        k,
        n,
        simd_gflops: flops / simd / 1e9,
        scalar_gflops: flops / scalar / 1e9,
        naive_gflops: flops / naive_t / 1e9,
        fused_gflops: flops / fused / 1e9,
        unfused_gflops: flops / unfused / 1e9,
        q8_gflops: flops / q8 / 1e9,
        q8_err: err,
        q8_bound: bound,
    }
}

fn main() {
    banner(
        "kernel_bench",
        "GEMM-family kernel throughput + int8 accuracy",
    );
    let ms = env_usize("LTFB_KERNEL_MS", 60) as u64;
    let reps = env_usize("LTFB_KERNEL_REPS", 3);

    // The CycleGAN layer shapes (img=4 encoder/decoder/cycle nets at
    // mb=32) plus one square shape as the cache-resident reference.
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("enc_in", 32, 783, 96),
        ("dec_out", 32, 96, 783),
        ("gen_hidden", 32, 64, 64),
        ("latent", 32, 96, 20),
        ("square256", 256, 256, 256),
    ];

    let results: Vec<ShapeResult> = shapes
        .iter()
        .map(|&(label, m, k, n)| bench_shape(label, m, k, n, ms, reps))
        .collect();

    let header = [
        "shape", "m", "k", "n", "simd", "scalar", "naive", "fused", "unfused", "int8", "q8_err",
        "q8_bound",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.m.to_string(),
                r.k.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.simd_gflops),
                format!("{:.2}", r.scalar_gflops),
                format!("{:.2}", r.naive_gflops),
                format!("{:.2}", r.fused_gflops),
                format!("{:.2}", r.unfused_gflops),
                format!("{:.2}", r.q8_gflops),
                format!("{:.2e}", r.q8_err),
                format!("{:.2e}", r.q8_bound),
            ]
        })
        .collect();
    println!("(GFLOP/s per kernel; int8 counts the equivalent f32 FLOPs)");
    print_table(&header, &rows);

    // Geometric-mean ratios over the model shapes (exclude the square
    // reference so the gated figure tracks what training actually runs).
    let model: Vec<&ShapeResult> = results.iter().filter(|r| r.label != "square256").collect();
    let gmean = |f: &dyn Fn(&ShapeResult) -> f64| -> f64 {
        (model.iter().map(|r| f(r).ln()).sum::<f64>() / model.len() as f64).exp()
    };
    let simd_vs_scalar = gmean(&|r| r.simd_gflops / r.scalar_gflops);
    let simd_vs_naive = gmean(&|r| r.simd_gflops / r.naive_gflops);
    let fused_vs_unfused = gmean(&|r| r.fused_gflops / r.unfused_gflops);
    let worst_err_ratio = results
        .iter()
        .map(|r| (r.q8_err / r.q8_bound) as f64)
        .fold(0.0f64, f64::max);
    println!(
        "geomean (model shapes): simd/scalar {simd_vs_scalar:.2}x, simd/naive {simd_vs_naive:.2}x, fused/unfused {fused_vs_unfused:.2}x"
    );
    println!("int8 worst realised/bound error ratio: {worst_err_ratio:.3}");

    let csv_rows: Vec<Vec<String>> = rows;
    write_csv("kernel_bench.csv", &header, &csv_rows);

    let json_path =
        std::env::var("LTFB_KERNEL_JSON").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"kernel_bench\",\n");
    json.push_str("  \"shapes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"simd_gflops\": {:.3}, \"scalar_gflops\": {:.3}, \"naive_gflops\": {:.3}, \"fused_gflops\": {:.3}, \"unfused_gflops\": {:.3}, \"q8_gflops\": {:.3}, \"q8_err\": {:.4e}, \"q8_bound\": {:.4e}}}{}\n",
            r.label, r.m, r.k, r.n, r.simd_gflops, r.scalar_gflops, r.naive_gflops,
            r.fused_gflops, r.unfused_gflops, r.q8_gflops, r.q8_err, r.q8_bound,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ratios\": {{\"simd_vs_scalar\": {simd_vs_scalar:.3}, \"simd_vs_naive\": {simd_vs_naive:.3}, \"fused_vs_unfused\": {fused_vs_unfused:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"int8\": {{\"worst_err_over_bound\": {worst_err_ratio:.4}, \"bound_respected\": true}}\n}}\n"
    ));
    std::fs::write(&json_path, json).expect("write BENCH_kernels.json");
    println!("wrote results/kernel_bench.csv and {json_path}");
}
