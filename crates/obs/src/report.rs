//! Run reports: snapshot the registry and write it as one
//! machine-readable file (JSON with the full detail, CSV with one row
//! per metric).
//!
//! The JSON is hand-rolled like the rest of the workspace's exports (no
//! serde in the offline dependency set); numbers that JSON cannot
//! represent (`inf`, `NaN`) are emitted as `null`.

use crate::causal::CausalSnapshot;
use crate::metrics::Histogram;
use crate::registry::{Metric, Registry};
use crate::trace::TraceEvent;
use std::io::Write;
use std::path::Path;

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    pub count: u64,
    pub non_finite: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// `(upper_bound, count)` of the non-empty buckets (bound `inf` =
    /// overflow).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            non_finite: h.non_finite(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            buckets: h.nonzero_buckets(),
        }
    }
}

/// Point-in-time copy of everything a registry holds.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
    pub events: Vec<TraceEvent>,
    pub events_dropped: u64,
    pub causal: CausalSnapshot,
}

/// Render an f64 as a JSON value (`null` for non-finite).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal JSON string escaping (our names are tame, but stay correct).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Snapshot {
    /// The whole snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{}:{v}", jstr(n)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!("{}:{}", jstr(n), jnum(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(b, c)| format!("{}:{c}", jstr(&format!("{b}"))))
                    .collect();
                format!(
                    "{}:{{\"count\":{},\"non_finite\":{},\"sum\":{},\"mean\":{},\
                     \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\
                     \"buckets\":{{{}}}}}",
                    jstr(n),
                    h.count,
                    h.non_finite,
                    jnum(h.sum),
                    jnum(h.mean),
                    jnum(h.min),
                    jnum(h.max),
                    jnum(h.p50),
                    jnum(h.p95),
                    jnum(h.p99),
                    buckets.join(",")
                )
            })
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"t_us\":{},\"scope\":{},\"rank\":{},\"trainer\":{},\
                     \"event\":{},\"value\":{}}}",
                    e.t_us,
                    jstr(&e.scope),
                    e.rank,
                    e.trainer.map_or("null".into(), |t| t.to_string()),
                    jstr(&e.event),
                    jnum(e.value)
                )
            })
            .collect();
        let causal_actors: Vec<String> = self.causal.actors.iter().map(|a| jstr(a)).collect();
        let causal_events: Vec<String> = self
            .causal
            .events
            .iter()
            .map(|e| {
                let chan = match &e.chan {
                    Some(c) => format!("[{},{},{},{}]", c.src, c.dst, c.context, c.tag),
                    None => "null".into(),
                };
                let clock: Vec<String> =
                    e.clock.components().iter().map(|v| v.to_string()).collect();
                format!(
                    "{{\"seq\":{},\"actor\":{},\"kind\":{},\"chan\":{},\"idx\":{},\
                     \"info\":{},\"aux\":{},\"clock\":[{}]}}",
                    e.seq,
                    e.actor,
                    jstr(e.kind),
                    chan,
                    e.idx,
                    e.info,
                    e.aux,
                    clock.join(",")
                )
            })
            .collect();
        format!(
            "{{\"events_dropped\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\
             \"histograms\":{{{}}},\"events\":[{}],\
             \"causal\":{{\"dropped\":{},\"actors\":[{}],\"events\":[{}]}}}}",
            self.events_dropped,
            counters.join(","),
            gauges.join(","),
            histograms.join(","),
            events.join(","),
            self.causal.dropped,
            causal_actors.join(","),
            causal_events.join(",")
        )
    }

    /// Header matching [`Self::metrics_csv`].
    pub fn csv_header() -> &'static str {
        "name,kind,value,count,mean,min,max,p50,p95,p99"
    }

    /// One CSV row per metric (header included).
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for (n, v) in &self.counters {
            out.push_str(&format!("{n},counter,{v},,,,,,,\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("{n},gauge,{v},,,,,,,\n"));
        }
        for (n, h) in &self.histograms {
            out.push_str(&format!(
                "{n},histogram,,{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                h.count, h.mean, h.min, h.max, h.p50, h.p95, h.p99
            ));
        }
        out
    }

    /// Write the JSON dump to `path`, creating parent directories.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Write the per-metric CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.metrics_csv())
    }
}

impl Registry {
    /// Snapshot every metric and the event trace.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in self.metrics() {
            match metric {
                Metric::Counter(c) => counters.push((name, c.get())),
                Metric::Gauge(g) => gauges.push((name, g.get())),
                Metric::Histogram(h) => histograms.push((name, HistogramSummary::of(&h))),
            }
        }
        // Truncation is an export-level fact, not something subsystems
        // record: surface it as a synthetic counter so downstream tooling
        // (and the trace auditor) sees drops without a separate channel.
        if !counters.iter().any(|(n, _)| n == "trace.dropped") {
            let dropped = self.events_dropped();
            let at = counters.partition_point(|(n, _)| n.as_str() < "trace.dropped");
            counters.insert(at, ("trace.dropped".to_string(), dropped));
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            events: self.events(),
            events_dropped: self.events_dropped(),
            causal: self.causal().snapshot(),
        }
    }

    /// Write the full JSON report to `path` — the one-call export hook
    /// for run drivers and bench binaries.
    pub fn write_report(&self, path: &Path) -> std::io::Result<()> {
        self.snapshot().write_json(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Buckets;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("comm.r0.sent_bytes").add(4096);
        r.gauge("ltfb.adoption_rate").set(0.25);
        let h = r.histogram("serve.latency_us", Buckets::latency_us());
        for v in [10.0, 20.0, 40.0] {
            h.record(v);
        }
        r.event("ltfb", 0, Some(1), "round_1_adoption_rate", 0.5);
        r
    }

    #[test]
    fn json_report_is_well_formed_and_complete() {
        let j = sample_registry().snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"comm.r0.sent_bytes\":4096"));
        assert!(j.contains("\"ltfb.adoption_rate\":0.25"));
        assert!(j.contains("\"serve.latency_us\""));
        assert!(j.contains("\"count\":3"));
        assert!(j.contains("\"p50\""));
        assert!(j.contains("\"round_1_adoption_rate\""));
        assert!(j.contains("\"trainer\":1"));
        assert!(!j.contains("inf"), "non-finite leaked into JSON: {j}");
    }

    #[test]
    fn csv_rows_match_header_width() {
        let csv = sample_registry().snapshot().metrics_csv();
        let cols = Snapshot::csv_header().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "bad row: {line}");
        }
        assert!(csv.contains("comm.r0.sent_bytes,counter,4096"));
    }

    #[test]
    fn report_files_round_trip_to_disk() {
        let dir = std::env::temp_dir().join(format!("ltfb-obs-report-{}", std::process::id()));
        let json = dir.join("metrics.json");
        let csv = dir.join("metrics.csv");
        let r = sample_registry();
        r.write_report(&json).unwrap();
        r.snapshot().write_csv(&csv).unwrap();
        assert!(std::fs::read_to_string(&json)
            .unwrap()
            .contains("sent_bytes"));
        assert!(std::fs::read_to_string(&csv)
            .unwrap()
            .starts_with("name,kind"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_surfaces_trace_drops_as_a_counter() {
        let r = Registry::with_trace_capacity(2);
        for i in 0..5 {
            r.event("s", 0, None, "e", i as f64);
        }
        let snap = r.snapshot();
        let dropped = snap
            .counters
            .iter()
            .find(|(n, _)| n == "trace.dropped")
            .expect("synthetic trace.dropped counter");
        assert_eq!(dropped.1, 3);
        let mut sorted = snap.counters.clone();
        sorted.sort();
        assert_eq!(snap.counters, sorted, "counter order stays sorted");
        assert!(snap.to_json().contains("\"trace.dropped\":3"));
    }

    #[test]
    fn json_report_carries_the_causal_section() {
        let r = sample_registry();
        let h = r.causal_actor("rank.0");
        h.send(
            crate::causal::Chan {
                src: 0,
                dst: 1,
                context: 5,
                tag: 9,
            },
            "comm.send",
            16,
            0,
        );
        let j = r.snapshot().to_json();
        assert!(j.contains("\"causal\":{\"dropped\":0,\"actors\":[\"rank.0\"]"));
        assert!(j.contains("\"kind\":\"comm.send\""));
        assert!(j.contains("\"chan\":[0,1,5,9]"));
        assert!(j.contains("\"clock\":[1]"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
    }
}
