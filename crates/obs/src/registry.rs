//! The metrics registry: a named, shareable collection of counters,
//! gauges and histograms plus one event trace.
//!
//! The registry is a cheap-to-clone handle (`Arc` inside); every
//! subsystem of a run records into the same instance, and one export
//! call at the end of the run emits everything — comm traffic, data
//! store shuffles, tournament statistics and serving latencies — in one
//! machine-readable file. Registration takes a short-lived lock; the
//! returned `Arc` handles record with plain atomics.

use crate::causal::{CausalHandle, CausalRecorder, DEFAULT_CAUSAL_CAPACITY};
use crate::metrics::{Buckets, Counter, Gauge, Histogram};
use crate::trace::{Trace, TraceEvent};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default event-trace capacity (see [`Registry::with_trace_capacity`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// A registered metric of any kind.
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Inner {
    metrics: RwLock<BTreeMap<String, Metric>>,
    trace: Trace,
    causal: Arc<CausalRecorder>,
}

/// Shareable observability sink for one run.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A registry whose event trace keeps at most `capacity` records.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(Inner {
                metrics: RwLock::new(BTreeMap::new()),
                trace: Trace::new(capacity),
                causal: Arc::new(CausalRecorder::new(DEFAULT_CAUSAL_CAPACITY)),
            }),
        }
    }

    fn get_or_register<T, F, G>(&self, name: &str, make: F, unwrap: G) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: Fn(&Metric) -> Option<Arc<T>>,
    {
        if let Some(m) = self.inner.metrics.read().get(name) {
            return unwrap(m)
                .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()));
        }
        let mut w = self.inner.metrics.write();
        let m = w.entry(name.to_string()).or_insert_with(make);
        unwrap(m).unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()))
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_register(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_register(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or register the histogram `name`. The bucket layout is fixed
    /// by the first registration; later calls reuse it.
    pub fn histogram(&self, name: &str, buckets: Buckets) -> Arc<Histogram> {
        self.get_or_register(
            name,
            || Metric::Histogram(Arc::new(Histogram::new(buckets))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Append a structured trace event.
    pub fn event(&self, scope: &str, rank: usize, trainer: Option<usize>, event: &str, value: f64) {
        self.inner.trace.push(scope, rank, trainer, event, value);
    }

    /// Snapshot of the buffered trace events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.trace.events()
    }

    /// Trace events evicted from the ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.trace.dropped()
    }

    /// The run's shared causal-event recorder.
    pub fn causal(&self) -> &CausalRecorder {
        &self.inner.causal
    }

    /// Register `name` as a causal actor and return a stamping handle.
    /// The same name always resolves to the same actor (and clock).
    pub fn causal_actor(&self, name: &str) -> CausalHandle {
        let actor = self.inner.causal.actor(name);
        CausalHandle::new(Arc::clone(&self.inner.causal), actor)
    }

    /// All registered metrics in name order.
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        self.inner
            .metrics
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Sum of all counters whose name ends with `suffix` — the cross-rank
    /// aggregation helper (per-rank metrics are named `scope.rN.name`).
    pub fn sum_counters(&self, suffix: &str) -> u64 {
        self.inner
            .metrics
            .read()
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("comm.r0.sent_bytes");
        let b = r.counter("comm.r0.sent_bytes");
        a.add(7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_is_a_programming_error() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn sum_counters_aggregates_across_ranks() {
        let r = Registry::new();
        r.counter("comm.r0.sent_bytes").add(10);
        r.counter("comm.r1.sent_bytes").add(32);
        r.counter("comm.r1.sent_messages").add(5);
        assert_eq!(r.sum_counters(".sent_bytes"), 42);
        assert_eq!(r.sum_counters(".sent_messages"), 5);
        assert_eq!(r.sum_counters(".recv_bytes"), 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("n").inc();
        r2.event("s", 0, None, "e", 1.0);
        assert_eq!(r2.counter("n").get(), 1);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn metrics_are_listed_in_name_order() {
        let r = Registry::new();
        r.counter("z");
        r.gauge("a");
        r.histogram("m", Buckets::latency_us());
        let names: Vec<String> = r.metrics().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn concurrent_registration_yields_one_instance() {
        let r = Registry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.counter("shared").inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 800);
    }
}
