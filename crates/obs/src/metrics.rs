//! The metric primitives: atomic counters, gauges, and fixed-bucket
//! histograms.
//!
//! Every primitive is recordable from any thread with a handful of atomic
//! operations and no allocation — cheap enough to sit on the comm send
//! path or inside the serving engine's per-request accounting. Handles
//! are obtained once from the [`Registry`](crate::Registry) (which takes
//! a short-lived lock) and then held as `Arc`s by the hot code.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (f64 stored as bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket layout of a [`Histogram`]: a sorted list of inclusive upper
/// bounds; values above the last bound land in an implicit overflow
/// bucket. The layout is fixed at registration, so recording never
/// allocates or rebalances.
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets(Vec<f64>);

impl Buckets {
    /// Explicit upper bounds (must be finite and strictly increasing).
    pub fn explicit(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite and strictly increasing"
        );
        Buckets(bounds)
    }

    /// `n` bounds at `start, start*factor, start*factor^2, …`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Buckets(bounds)
    }

    /// `n` bounds at `start, start+width, start+2*width, …`.
    pub fn linear(start: f64, width: f64, n: usize) -> Self {
        assert!(width > 0.0 && n > 0);
        Buckets((0..n).map(|i| start + width * i as f64).collect())
    }

    /// Default layout for microsecond latencies: powers of two from 1 us
    /// to ~1 hour (2^31 us), ~1.0x-2.0x relative resolution everywhere.
    pub fn latency_us() -> Self {
        Buckets::exponential(1.0, 2.0, 32)
    }

    /// Default layout for batch/queue sizes: 1..=64 exact, then doubling.
    pub fn small_counts() -> Self {
        let mut bounds: Vec<f64> = (0..=64).map(|i| i as f64).collect();
        let mut b = 128.0;
        while b <= 16_384.0 {
            bounds.push(b);
            b *= 2.0;
        }
        Buckets(bounds)
    }

    pub fn bounds(&self) -> &[f64] {
        &self.0
    }
}

/// Fixed-bucket histogram with atomic per-bucket counts plus running
/// count/sum/min/max. Quantiles are estimated by linear interpolation
/// within the containing bucket (exact to one bucket width).
///
/// Non-finite samples are counted separately and never contaminate the
/// distribution — a NaN latency must never abort or skew a stats report.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per bound, plus the overflow bucket at the end.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    non_finite: AtomicU64,
}

impl Histogram {
    pub fn new(buckets: Buckets) -> Self {
        let n = buckets.0.len();
        Histogram {
            bounds: buckets.0,
            counts: (0..n + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            non_finite: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            self.non_finite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Finite samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Non-finite samples rejected.
    pub fn non_finite(&self) -> u64 {
        self.non_finite.load(Ordering::Relaxed)
    }

    /// Sum of finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest finite sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Largest finite sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.max_bits.load(Ordering::Relaxed))
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): find the bucket holding the
    /// q-th sample and interpolate linearly inside it, clamped to the
    /// observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let hi = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max()
                };
                let frac = (target - seen) as f64 / c as f64;
                let est = lo + (hi - lo).max(0.0) * frac;
                return est.clamp(self.min(), self.max());
            }
            seen += c;
        }
        self.max()
    }

    /// `(upper_bound, count)` for each non-empty bucket; the overflow
    /// bucket reports `f64::INFINITY` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| {
                    let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                    (bound, c)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_quantiles_track_uniform_samples() {
        let h = Histogram::new(Buckets::linear(1.0, 1.0, 100));
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        for (q, want) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = h.quantile(q);
            assert!((got - want).abs() <= 1.0, "q{q}: got {got}, want ~{want}");
        }
    }

    #[test]
    fn histogram_rejects_non_finite_without_skew() {
        let h = Histogram::new(Buckets::latency_us());
        h.record(10.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 1);
        assert_eq!(h.non_finite(), 2);
        assert_eq!(h.sum(), 10.0);
        assert!(h.quantile(0.99).is_finite());
    }

    #[test]
    fn overflow_bucket_catches_large_values() {
        let h = Histogram::new(Buckets::explicit(vec![1.0, 2.0]));
        h.record(1e9);
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 1);
        assert!(nz[0].0.is_infinite());
        assert_eq!(nz[0].1, 1);
        assert_eq!(h.max(), 1e9);
        assert_eq!(h.quantile(0.5), 1e9, "interpolation clamps to max");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new(Buckets::latency_us());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn bucket_constructors() {
        assert_eq!(Buckets::exponential(1.0, 2.0, 3).bounds(), &[1.0, 2.0, 4.0]);
        assert_eq!(Buckets::linear(0.0, 5.0, 3).bounds(), &[0.0, 5.0, 10.0]);
        assert!(Buckets::latency_us().bounds().len() == 32);
        assert!(Buckets::small_counts()
            .bounds()
            .windows(2)
            .all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new(Buckets::linear(1.0, 1.0, 64)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((i % 50) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(
            h.sum(),
            4.0 * (0..1000).map(|i| (i % 50) as f64 + 1.0).sum::<f64>()
        );
    }
}
