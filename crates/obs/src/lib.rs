//! # ltfb-obs
//!
//! Cross-cutting observability for the LTFB reproduction. The paper's
//! scaling evidence (Figs. 9-11) is *instrumentation*: run times, ingest
//! rates and tournament statistics gathered across every rank. This
//! crate is the shared substrate the rest of the workspace records into:
//!
//! * [`metrics`] — lock-cheap primitives: atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s (a few atomic ops per
//!   record, no allocation — safe on the comm send path);
//! * [`registry`] — the named [`Registry`] shared by a whole run; cheap
//!   to clone, `Send + Sync`, so every rank thread and serving worker
//!   feeds the same sink;
//! * [`trace`] — a bounded ring of structured
//!   `{scope, rank, trainer, event, value}` [`TraceEvent`]s for ordered,
//!   timestamped happenings (tournament rounds, hot swaps);
//! * [`report`] — one-call CSV/JSON export ([`Registry::write_report`])
//!   so a full run emits a single machine-readable metrics file under
//!   `results/`;
//! * [`causal`] — vector-clock-stamped [`CausalEvent`]s at protocol
//!   edges (send/recv, collective entry/exit, ingest adoption, registry
//!   swaps), exported in the same JSON for `ltfb-analyze trace`'s
//!   happens-before auditing.
//!
//! Naming convention: per-rank metrics are `scope.rN.name`
//! (`comm.r3.sent_bytes`); population-wide aggregates drop the rank
//! (`ltfb.adoptions`). [`Registry::sum_counters`] folds the per-rank
//! family back into a total.
//!
//! ```
//! use ltfb_obs::{Buckets, Registry};
//!
//! let reg = Registry::new();
//! reg.counter("comm.r0.sent_bytes").add(4096);
//! reg.histogram("serve.latency_us", Buckets::latency_us()).record(250.0);
//! reg.event("ltfb", 0, Some(2), "round_1_adoption_rate", 0.5);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0].1, 4096);
//! assert!(snap.to_json().contains("\"p99\""));
//! ```

#![forbid(unsafe_code)]

pub mod causal;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod trace;

pub use causal::{
    CausalEvent, CausalHandle, CausalRecorder, CausalSnapshot, Chan, VectorClock,
    DEFAULT_CAUSAL_CAPACITY, UNMATCHED_RECV,
};
pub use metrics::{Buckets, Counter, Gauge, Histogram};
pub use registry::{Metric, Registry, DEFAULT_TRACE_CAPACITY};
pub use report::{HistogramSummary, Snapshot};
pub use trace::{Trace, TraceEvent};
