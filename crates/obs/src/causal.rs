//! Causally-stamped event recording: vector clocks over the run's actors.
//!
//! Every rank thread (and the serve registry) registers itself as an
//! *actor*; protocol-relevant happenings — message send/recv, collective
//! entry/exit, ingest adoption, registry publish/degrade/rollback — are
//! recorded as [`CausalEvent`]s carrying the actor's [`VectorClock`] at
//! the moment of the event. Message receives merge the sender's clock
//! (threaded through a per-channel FIFO side queue, mirroring the
//! communicator's `(context, src, tag)` FIFO matching), so the recorded
//! clocks encode the run's happens-before partial order exactly:
//! `a → b ⇔ clock(a) < clock(b)`.
//!
//! The trace auditor in `ltfb-analyze` replays these events offline and
//! checks protocol invariants (FIFO channel order, collective epoch
//! monotonicity, probe-before-quantized-publish, …) against the DAG.
//!
//! Cost model: one short mutex hold and one small `Vec<u64>` clone per
//! event. Events are only recorded when a registry is attached (the
//! `--metrics` path), and only at protocol edges — never per sample or
//! per kernel call — so the metrics-overhead CI gate stays honest.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default causal-event ring capacity (see [`CausalRecorder::new`]).
/// Sized above any smoke-scale run: the auditor *refuses* to certify a
/// truncated trace, so the ring must hold every event of an audited run.
pub const DEFAULT_CAUSAL_CAPACITY: usize = 1 << 17;

/// Sentinel index recorded on a receive that found no matching send in
/// the side queue (sender was never instrumented, or the message
/// predates `attach_obs`). The auditor treats this as uncertifiable.
pub const UNMATCHED_RECV: u64 = u64::MAX;

/// A growable dense vector clock: component `i` counts the events actor
/// `i` has (transitively) contributed to the history of the holder.
/// Missing components are zero, and trailing zeros never affect
/// comparison or equality.
#[derive(Debug, Clone, Default)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// A clock with the given dense components (component `i` = actor
    /// `i`). Used by the offline auditor to rebuild exported clocks.
    pub fn from_components(components: Vec<u64>) -> Self {
        VectorClock { components }
    }

    /// Component for `actor` (zero if never ticked or merged).
    pub fn get(&self, actor: usize) -> u64 {
        self.components.get(actor).copied().unwrap_or(0)
    }

    /// The dense components, including any trailing zeros.
    pub fn components(&self) -> &[u64] {
        &self.components
    }

    /// Advance this actor's own component by one (a new local event).
    pub fn tick(&mut self, actor: usize) {
        if self.components.len() <= actor {
            self.components.resize(actor + 1, 0);
        }
        self.components[actor] += 1;
    }

    /// Componentwise maximum — the receive-side join of two histories.
    pub fn merge(&mut self, other: &VectorClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (i, &v) in other.components.iter().enumerate() {
            if self.components[i] < v {
                self.components[i] = v;
            }
        }
    }

    /// `self ≤ other` componentwise (zero-extended).
    pub fn leq(&self, other: &VectorClock) -> bool {
        (0..self.components.len().max(other.components.len())).all(|i| self.get(i) <= other.get(i))
    }

    /// Strict happens-before: `self ≤ other` and they differ.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.leq(other) && !other.leq(self)
    }

    /// Neither ordered way: the two events are causally concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.leq(other) && other.leq(self)
    }
}

impl Eq for VectorClock {}

/// A directed message channel, keyed the way the communicator matches
/// receives: world-rank endpoints plus `(context, tag)`. Delivery on one
/// channel is FIFO, which is what lets the recorder pair each receive
/// with its send through a side queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chan {
    pub src: u64,
    pub dst: u64,
    pub context: u64,
    pub tag: u64,
}

/// One causally-stamped event. `info`/`aux` are kind-specific small
/// payloads (collective seq, registry version, ingest generation, …) —
/// structured `u64`s rather than formatted strings so recording stays
/// allocation-light on the comm hot path.
#[derive(Debug, Clone)]
pub struct CausalEvent {
    /// Global record order (total order of recording, not of causality).
    pub seq: u64,
    pub actor: usize,
    pub kind: &'static str,
    /// The channel, for `comm.send` / `comm.recv` events.
    pub chan: Option<Chan>,
    /// Per-channel message index ([`UNMATCHED_RECV`] for an orphan recv).
    pub idx: u64,
    pub info: u64,
    pub aux: u64,
    /// The actor's clock *after* this event's tick.
    pub clock: VectorClock,
}

struct ChanState {
    next_idx: u64,
    inflight: VecDeque<(u64, VectorClock)>,
}

struct CausalInner {
    actors: Vec<String>,
    clocks: Vec<VectorClock>,
    channels: HashMap<Chan, ChanState>,
    events: VecDeque<CausalEvent>,
    seq: u64,
    dropped: u64,
}

/// Shared recorder for one run: actor registration, clock bookkeeping
/// and a bounded event ring. Eviction drops the *oldest* event and
/// counts it — the auditor refuses truncated traces rather than
/// certifying the surviving suffix vacuously.
pub struct CausalRecorder {
    capacity: usize,
    inner: Mutex<CausalInner>,
}

/// Everything the recorder holds, copied out for export/auditing.
#[derive(Debug, Clone)]
pub struct CausalSnapshot {
    pub actors: Vec<String>,
    pub events: Vec<CausalEvent>,
    pub dropped: u64,
}

impl CausalRecorder {
    pub fn new(capacity: usize) -> Self {
        CausalRecorder {
            capacity,
            inner: Mutex::new(CausalInner {
                actors: Vec::new(),
                clocks: Vec::new(),
                channels: HashMap::new(),
                events: VecDeque::new(),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Register (or look up) the actor named `name`. The same name maps
    /// to the same actor id, so a rank's communicator and data store
    /// share one clock — they are one thread of control.
    pub fn actor(&self, name: &str) -> usize {
        let mut g = self.inner.lock();
        if let Some(i) = g.actors.iter().position(|a| a == name) {
            return i;
        }
        g.actors.push(name.to_string());
        g.clocks.push(VectorClock::new());
        g.actors.len() - 1
    }

    /// Record a local event: tick, stamp, append.
    pub fn local(&self, actor: usize, kind: &'static str, info: u64, aux: u64) {
        let mut g = self.inner.lock();
        g.clocks[actor].tick(actor);
        let clock = g.clocks[actor].clone();
        Self::push(
            &mut g,
            self.capacity,
            actor,
            kind,
            None,
            0,
            info,
            aux,
            clock,
        );
    }

    /// Record a message send on `chan`. Must run *before* the message is
    /// handed to the transport, so the matching [`Self::recv`] always
    /// finds the clock queued.
    pub fn send(&self, actor: usize, chan: Chan, kind: &'static str, info: u64, aux: u64) {
        let mut g = self.inner.lock();
        g.clocks[actor].tick(actor);
        let clock = g.clocks[actor].clone();
        let st = g.channels.entry(chan).or_insert_with(|| ChanState {
            next_idx: 0,
            inflight: VecDeque::new(),
        });
        let idx = st.next_idx;
        st.next_idx += 1;
        st.inflight.push_back((idx, clock.clone()));
        Self::push(
            &mut g,
            self.capacity,
            actor,
            kind,
            Some(chan),
            idx,
            info,
            aux,
            clock,
        );
    }

    /// Record a message receive on `chan`: merge the oldest in-flight
    /// sender clock (FIFO, matching the transport), tick, stamp.
    pub fn recv(&self, actor: usize, chan: Chan, kind: &'static str, info: u64, aux: u64) {
        let mut g = self.inner.lock();
        let popped = g
            .channels
            .get_mut(&chan)
            .and_then(|st| st.inflight.pop_front());
        let idx = match popped {
            Some((idx, sender_clock)) => {
                g.clocks[actor].merge(&sender_clock);
                idx
            }
            None => UNMATCHED_RECV,
        };
        g.clocks[actor].tick(actor);
        let clock = g.clocks[actor].clone();
        Self::push(
            &mut g,
            self.capacity,
            actor,
            kind,
            Some(chan),
            idx,
            info,
            aux,
            clock,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        g: &mut CausalInner,
        capacity: usize,
        actor: usize,
        kind: &'static str,
        chan: Option<Chan>,
        idx: u64,
        info: u64,
        aux: u64,
        clock: VectorClock,
    ) {
        if g.events.len() >= capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        let seq = g.seq;
        g.seq += 1;
        g.events.push_back(CausalEvent {
            seq,
            actor,
            kind,
            chan,
            idx,
            info,
            aux,
            clock,
        });
    }

    /// Events recorded so far, oldest first.
    pub fn events(&self) -> Vec<CausalEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Registered actor names, in actor-id order.
    pub fn actors(&self) -> Vec<String> {
        self.inner.lock().actors.clone()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Copy out actors, events and the drop count together.
    pub fn snapshot(&self) -> CausalSnapshot {
        let g = self.inner.lock();
        CausalSnapshot {
            actors: g.actors.clone(),
            events: g.events.iter().cloned().collect(),
            dropped: g.dropped,
        }
    }
}

/// A cheap per-actor handle: the recorder plus a resolved actor id, so
/// instrumented crates stamp events without re-hashing the actor name.
#[derive(Clone)]
pub struct CausalHandle {
    recorder: Arc<CausalRecorder>,
    actor: usize,
}

impl CausalHandle {
    pub(crate) fn new(recorder: Arc<CausalRecorder>, actor: usize) -> Self {
        CausalHandle { recorder, actor }
    }

    pub fn actor(&self) -> usize {
        self.actor
    }

    pub fn local(&self, kind: &'static str, info: u64, aux: u64) {
        self.recorder.local(self.actor, kind, info, aux);
    }

    pub fn send(&self, chan: Chan, kind: &'static str, info: u64, aux: u64) {
        self.recorder.send(self.actor, chan, kind, info, aux);
    }

    pub fn recv(&self, chan: Chan, kind: &'static str, info: u64, aux: u64) {
        self.recorder.recv(self.actor, chan, kind, info, aux);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(src: u64, dst: u64) -> Chan {
        Chan {
            src,
            dst,
            context: 0,
            tag: 7,
        }
    }

    #[test]
    fn tick_and_merge_build_the_expected_clock() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        b.merge(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 0);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn trailing_zeros_do_not_affect_comparison() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(0);
        b.tick(3); // give b a longer vector...
        let mut c = VectorClock::new();
        c.tick(0);
        assert_eq!(a, c);
        assert!(a.leq(&b) && a.lt(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn send_recv_establishes_happens_before() {
        let rec = CausalRecorder::new(64);
        let a0 = rec.actor("rank.0");
        let a1 = rec.actor("rank.1");
        rec.send(a0, chan(0, 1), "comm.send", 8, 0);
        rec.recv(a1, chan(0, 1), "comm.recv", 8, 0);
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].idx, 0);
        assert_eq!(ev[1].idx, 0, "recv matched the send's index");
        assert!(ev[0].clock.lt(&ev[1].clock), "send happens-before recv");
    }

    #[test]
    fn independent_actors_are_concurrent() {
        let rec = CausalRecorder::new(64);
        let a0 = rec.actor("rank.0");
        let a1 = rec.actor("rank.1");
        rec.local(a0, "x", 0, 0);
        rec.local(a1, "y", 0, 0);
        let ev = rec.events();
        assert!(ev[0].clock.concurrent(&ev[1].clock));
    }

    #[test]
    fn fifo_side_queue_pairs_in_order() {
        let rec = CausalRecorder::new(64);
        let a0 = rec.actor("rank.0");
        let a1 = rec.actor("rank.1");
        rec.send(a0, chan(0, 1), "comm.send", 1, 0);
        rec.send(a0, chan(0, 1), "comm.send", 2, 0);
        rec.recv(a1, chan(0, 1), "comm.recv", 1, 0);
        rec.recv(a1, chan(0, 1), "comm.recv", 2, 0);
        let ev = rec.events();
        assert_eq!((ev[2].idx, ev[3].idx), (0, 1));
    }

    #[test]
    fn orphan_recv_is_marked_unmatched() {
        let rec = CausalRecorder::new(64);
        let a1 = rec.actor("rank.1");
        rec.recv(a1, chan(0, 1), "comm.recv", 0, 0);
        assert_eq!(rec.events()[0].idx, UNMATCHED_RECV);
    }

    #[test]
    fn ring_eviction_counts_drops() {
        let rec = CausalRecorder::new(2);
        let a = rec.actor("rank.0");
        for i in 0..5 {
            rec.local(a, "x", i, 0);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.snapshot().dropped, 3);
    }

    #[test]
    fn same_actor_name_shares_a_clock() {
        let rec = CausalRecorder::new(64);
        assert_eq!(rec.actor("rank.0"), rec.actor("rank.0"));
        assert_eq!(rec.actors(), vec!["rank.0".to_string()]);
    }
}
