//! Structured event trace: a bounded ring buffer of timestamped
//! `{scope, rank, trainer, event, value}` records.
//!
//! Metrics answer "how much"; the trace answers "when and in what
//! order" — tournament rounds, hot-swaps, failure injections. The ring
//! is bounded so a long run cannot grow without limit: when full, the
//! oldest events are dropped and counted, never the newest.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the registry was created.
    pub t_us: u64,
    /// Subsystem that emitted the event (`"ltfb"`, `"comm"`, `"serve"`, …).
    pub scope: String,
    /// World rank of the emitter (0 for single-process scopes).
    pub rank: usize,
    /// Trainer id, where one applies.
    pub trainer: Option<usize>,
    /// Event name, e.g. `"round_3_adoption_rate"`.
    pub event: String,
    /// Event payload value.
    pub value: f64,
}

/// Bounded multi-producer event ring.
#[derive(Debug)]
pub struct Trace {
    start: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl Trace {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            start: Instant::now(),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest record when full.
    pub fn push(&self, scope: &str, rank: usize, trainer: Option<usize>, event: &str, value: f64) {
        let t_us = self.start.elapsed().as_micros() as u64;
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceEvent {
            t_us,
            scope: scope.to_string(),
            rank,
            trainer,
            event: event.to_string(),
            value,
        });
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order() {
        let t = Trace::new(8);
        t.push("ltfb", 0, Some(2), "round_1_adoption_rate", 0.5);
        t.push("comm", 3, None, "deadlock_near_miss", 1.0);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].event, "round_1_adoption_rate");
        assert_eq!(ev[0].trainer, Some(2));
        assert_eq!(ev[1].scope, "comm");
        assert_eq!(ev[1].rank, 3);
        assert!(ev[0].t_us <= ev[1].t_us);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let t = Trace::new(3);
        for i in 0..5 {
            t.push("s", 0, None, &format!("e{i}"), i as f64);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].event, "e2", "oldest must be evicted first");
        assert_eq!(ev[2].event, "e4");
        assert_eq!(t.dropped(), 2);
    }
}
