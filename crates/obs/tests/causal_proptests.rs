//! Property-based tests for the vector-clock algebra and for the core
//! soundness/completeness claim of the causal recorder: on any valid
//! trace, `a happens-before b ⇔ clock(a) < clock(b)`.

use ltfb_obs::{CausalRecorder, Chan, VectorClock};
use proptest::prelude::*;
use std::collections::VecDeque;

fn clock(components: Vec<u64>) -> VectorClock {
    VectorClock::from_components(components)
}

fn merged(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// One step of a randomly generated message-passing program. The raw
/// tuple is interpreted against the live channel state: a receive on an
/// empty channel is skipped, so every generated trace is valid.
type RawOp = (u8, u8, u8);

const ACTORS: usize = 3;

fn chan(src: usize, dst: usize) -> Chan {
    Chan {
        src: src as u64,
        dst: dst as u64,
        context: 0,
        tag: 0,
    }
}

/// Replay `raw` through the recorder while building the ground-truth
/// happens-before relation directly from the trace structure: program
/// order per actor plus send→recv edges, transitively closed.
fn run_program(raw: &[RawOp]) -> (Vec<VectorClock>, Vec<Vec<bool>>) {
    let rec = CausalRecorder::new(4096);
    let actors: Vec<usize> = (0..ACTORS)
        .map(|i| rec.actor(&format!("rank.{i}")))
        .collect();

    // Ground truth bookkeeping, indexed by event number.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut last_of: Vec<Option<usize>> = vec![None; ACTORS];
    let mut inflight: Vec<Vec<VecDeque<usize>>> = vec![vec![VecDeque::new(); ACTORS]; ACTORS];
    let mut n_events = 0usize;

    let mut record =
        |a: usize, last_of: &mut Vec<Option<usize>>, edges: &mut Vec<(usize, usize)>| {
            let id = n_events;
            n_events += 1;
            if let Some(prev) = last_of[a] {
                edges.push((prev, id));
            }
            last_of[a] = Some(id);
            id
        };

    for &(kind, x, y) in raw {
        let a = x as usize % ACTORS;
        let b = y as usize % ACTORS;
        match kind % 3 {
            0 => {
                rec.local(actors[a], "step", 0, 0);
                record(a, &mut last_of, &mut edges);
            }
            1 => {
                rec.send(actors[a], chan(a, b), "send", 0, 0);
                let id = record(a, &mut last_of, &mut edges);
                inflight[a][b].push_back(id);
            }
            _ => {
                // Receive on channel (a → b); valid only if in flight.
                if let Some(send_id) = inflight[a][b].pop_front() {
                    rec.recv(actors[b], chan(a, b), "recv", 0, 0);
                    let id = record(b, &mut last_of, &mut edges);
                    edges.push((send_id, id));
                }
            }
        }
    }

    // Transitive closure over the (acyclic, forward-pointing) edges.
    let mut hb = vec![vec![false; n_events]; n_events];
    for &(u, v) in &edges {
        hb[u][v] = true;
    }
    loop {
        let mut changed = false;
        for i in 0..n_events {
            for j in 0..n_events {
                if !hb[i][j] {
                    continue;
                }
                // Indexed on purpose: hb[i] and hb[j] alias when the
                // closure revisits a row, so iterator splitting does not
                // apply to this Floyd–Warshall-style pass.
                #[allow(clippy::needless_range_loop)]
                for k in 0..n_events {
                    if hb[j][k] && !hb[i][k] {
                        hb[i][k] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let clocks: Vec<VectorClock> = rec.events().into_iter().map(|e| e.clock).collect();
    assert_eq!(clocks.len(), n_events, "recorder saw every interpreted op");
    (clocks, hb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in prop::collection::vec(0u64..40, 0..6),
                            b in prop::collection::vec(0u64..40, 0..6)) {
        let (a, b) = (clock(a), clock(b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in prop::collection::vec(0u64..40, 0..6),
                            b in prop::collection::vec(0u64..40, 0..6),
                            c in prop::collection::vec(0u64..40, 0..6)) {
        let (a, b, c) = (clock(a), clock(b), clock(c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_is_idempotent_and_an_upper_bound(
        a in prop::collection::vec(0u64..40, 0..6),
        b in prop::collection::vec(0u64..40, 0..6),
    ) {
        let (a, b) = (clock(a), clock(b));
        prop_assert_eq!(merged(&a, &a), a.clone());
        let m = merged(&a, &b);
        prop_assert!(a.leq(&m) && b.leq(&m));
    }

    #[test]
    fn happens_before_iff_clock_lt(
        raw in prop::collection::vec((0u8..3, 0u8..4, 0u8..4), 1..40),
    ) {
        let (clocks, hb) = run_program(&raw);
        for i in 0..clocks.len() {
            for j in 0..clocks.len() {
                if i == j {
                    continue;
                }
                prop_assert_eq!(
                    hb[i][j],
                    clocks[i].lt(&clocks[j]),
                    "event {} vs {}: hb={} clock_lt={}",
                    i, j, hb[i][j], clocks[i].lt(&clocks[j])
                );
            }
        }
    }
}
