//! Trainable parameter: a value tensor paired with its gradient
//! accumulator. Keeping them in one struct lets layers hand the optimizer
//! simultaneous mutable/shared access without borrow gymnastics.

use ltfb_tensor::Matrix;

/// One trainable tensor and its gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl Param {
    /// Wrap an initial value with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient to zero (start of a step).
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::full(2, 3, 1.5));
        assert_eq!(p.len(), 6);
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(p.grad.shape(), (2, 3));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
    }
}
