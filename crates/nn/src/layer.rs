//! Layers: the tensor-operation nodes of an LBANN model DAG.
//!
//! Each layer caches what it needs during `forward` and consumes the cache
//! in `backward`, accumulating parameter gradients into its [`Param`]s.
//! Rows of every activation matrix are samples (mini-batch-major layout).

use crate::param::Param;
use crate::workspace::Workspace;
use ltfb_hotpath::hot_path;
use ltfb_tensor::{
    col_sums, col_sums_into, gemm_bias_act, gemm_nt, gemm_tn, glorot_uniform, hadamard,
    hadamard_into, he_normal, map_into, sigmoid, Activation, Matrix, TensorRng,
};

/// A differentiable layer.
pub trait Layer: Send + Sync {
    /// Compute outputs from inputs, caching whatever `backward` needs.
    /// `training` distinguishes train/eval behaviour (dropout).
    fn forward(&mut self, x: &Matrix, training: bool) -> Matrix;

    /// Inference-only forward: no cache writes, no RNG draws, usable
    /// through a shared reference (e.g. a model behind `Arc` serving
    /// concurrent requests). Must be bit-identical to
    /// `forward(x, false)`'s output.
    fn infer(&self, x: &Matrix) -> Matrix;

    /// Propagate `grad` (dL/d_output) to dL/d_input, accumulating
    /// parameter gradients. Must be called after `forward`.
    fn backward(&mut self, grad: &Matrix) -> Matrix;

    /// Workspace-path forward: write outputs into the caller-owned `y`
    /// (resized as needed), drawing any scratch from `ws`. Numerically
    /// **bit-identical** to `forward`, but allocation-free once caches
    /// and the workspace pool are warm. The default delegates to the
    /// allocating path so external layers stay correct.
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, training: bool, ws: &mut Workspace) {
        let _ = ws;
        y.copy_resize_from(&self.forward(x, training));
    }

    /// Workspace-path backward: write dL/d_input into `dx`. Bit-identical
    /// to `backward`; default delegates to the allocating path.
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, ws: &mut Workspace) {
        let _ = ws;
        dx.copy_resize_from(&self.backward(grad));
    }

    /// Output width for an input of width `in_cols` (lets callers size
    /// workspace buffers without running the layer).
    fn out_cols(&self, in_cols: usize) -> usize {
        in_cols
    }

    /// Input width for an output of width `out_cols` (backward sizing).
    fn in_cols(&self, out_cols: usize) -> usize {
        out_cols
    }

    /// Visit every trainable parameter without allocating the `Vec` that
    /// `params_mut` builds. The default delegates to `params_mut` (still
    /// correct, not allocation-free); hot layers override.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Mutable access to the layer's trainable parameters (empty for
    /// activations).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to the layer's trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Visit every trainable parameter immutably without allocating the
    /// `Vec` that `params` builds — the read-side mirror of
    /// `visit_params_mut`, used by the gradient-bucket packer on the hot
    /// path. The default delegates to `params`; hot layers override.
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for p in self.params() {
            f(p);
        }
    }

    /// Layer kind, for debugging/architecture dumps.
    fn name(&self) -> &'static str;

    /// Downcast hook: `Some(self)` for [`Linear`], `None` otherwise.
    /// Lets [`crate::Sequential`] fuse a `Linear -> activation` pair
    /// into one [`gemm_bias_act`] call on the inference path, and lets
    /// the int8 quantizer reach the weights without `Any`-downcasts.
    fn as_linear(&self) -> Option<&Linear> {
        None
    }

    /// The element-wise [`Activation`] this layer applies, if it is a
    /// pure stateless activation whose output can be produced by the
    /// fused GEMM epilogue bit-for-bit. `None` for everything else
    /// (including dropout, whose train-mode behaviour is not a pure
    /// function of the input).
    fn fused_activation(&self) -> Option<Activation> {
        None
    }
}

/// Fully-connected layer: `y = x @ W + b`, `W: in x out`, `b: 1 x out`.
pub struct Linear {
    w: Param,
    b: Param,
    x_cache: Option<Matrix>,
}

/// Weight initialisation scheme for [`Linear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform — tanh/sigmoid stacks.
    Glorot,
    /// He normal — ReLU-family stacks.
    He,
}

impl Linear {
    pub fn new(fan_in: usize, fan_out: usize, init: Init, rng: &mut TensorRng) -> Self {
        let w = match init {
            Init::Glorot => glorot_uniform(fan_in, fan_out, rng),
            Init::He => he_normal(fan_in, fan_out, rng),
        };
        Linear {
            w: Param::new(w),
            b: Param::new(Matrix::zeros(1, fan_out)),
            x_cache: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.value.cols()
    }

    /// The weight matrix (`fan_in x fan_out`).
    pub fn weight(&self) -> &Matrix {
        &self.w.value
    }

    /// The bias row (`1 x fan_out`).
    pub fn bias(&self) -> &Matrix {
        &self.b.value
    }

    /// Inference forward with a fused activation epilogue:
    /// `act(x @ W + b)` in one output pass. Bit-identical to `infer`
    /// followed by the corresponding activation layer.
    pub fn infer_act(&self, x: &Matrix, act: Activation) -> Matrix {
        assert_eq!(x.cols(), self.fan_in(), "Linear input width mismatch");
        let mut y = Matrix::zeros(x.rows(), self.fan_out());
        gemm_bias_act(1.0, x, &self.w.value, 0.0, &mut y, &self.b.value, act);
        y
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Matrix, _training: bool) -> Matrix {
        // Identity epilogue fuses the bias broadcast into the GEMM's
        // output pass; bitwise the same as gemm-then-add_bias.
        let y = self.infer_act(x, Activation::Identity);
        self.x_cache = Some(x.clone());
        y
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        self.infer_act(x, Activation::Identity)
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let x = self.x_cache.as_ref().expect("backward before forward");
        assert_eq!(grad.rows(), x.rows(), "Linear grad batch mismatch");
        assert_eq!(grad.cols(), self.fan_out(), "Linear grad width mismatch");
        // dW += X^T @ dY ; db += column sums of dY ; dX = dY @ W^T.
        gemm_tn(1.0, x, grad, 1.0, &mut self.w.grad);
        let db = col_sums(grad);
        ltfb_tensor::axpy(1.0, &db, &mut self.b.grad);
        let mut dx = Matrix::zeros(grad.rows(), self.fan_in());
        gemm_nt(1.0, grad, &self.w.value, 0.0, &mut dx);
        dx
    }

    #[hot_path]
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, _training: bool, _ws: &mut Workspace) {
        assert_eq!(x.cols(), self.fan_in(), "Linear input width mismatch");
        y.resize(x.rows(), self.fan_out());
        // Same kernel as `forward`: GEMM with beta = 0 fully overwrites
        // the (recycled) output, bias fused into the output pass.
        gemm_bias_act(
            1.0,
            x,
            &self.w.value,
            0.0,
            y,
            &self.b.value,
            Activation::Identity,
        );
        // Persistent input cache: one allocation ever, then reused.
        match &mut self.x_cache {
            Some(c) => c.copy_resize_from(x),
            None => self.x_cache = Some(x.clone()),
        }
    }

    #[hot_path]
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, ws: &mut Workspace) {
        let x = self.x_cache.as_ref().expect("backward before forward");
        assert_eq!(grad.rows(), x.rows(), "Linear grad batch mismatch");
        assert_eq!(grad.cols(), self.fan_out(), "Linear grad width mismatch");
        gemm_tn(1.0, x, grad, 1.0, &mut self.w.grad);
        // Keep the column-sums scratch separate and axpy it in: folding
        // the sums straight into `b.grad` would change the f32 summation
        // order and break bit-identity with the reference path.
        let mut db = ws.take(1, grad.cols());
        col_sums_into(grad, &mut db);
        ltfb_tensor::axpy(1.0, &db, &mut self.b.grad);
        ws.give(db);
        dx.resize(grad.rows(), self.fan_in());
        gemm_nt(1.0, grad, &self.w.value, 0.0, dx);
    }

    fn out_cols(&self, _in_cols: usize) -> usize {
        self.fan_out()
    }

    fn in_cols(&self, _out_cols: usize) -> usize {
        self.fan_in()
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn as_linear(&self) -> Option<&Linear> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Leaky rectified linear unit (`alpha = 0` gives plain ReLU).
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Matrix>,
}

impl LeakyRelu {
    pub fn new(alpha: f32) -> Self {
        assert!((0.0..1.0).contains(&alpha), "leak must be in [0, 1)");
        LeakyRelu { alpha, mask: None }
    }

    /// Plain ReLU.
    pub fn relu() -> Self {
        LeakyRelu::new(0.0)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Matrix, _training: bool) -> Matrix {
        let alpha = self.alpha;
        // Cache the derivative mask, not the input: cheaper backward.
        let mask = ltfb_tensor::map(x, |v| if v > 0.0 { 1.0 } else { alpha });
        let y = hadamard(x, &mask);
        self.mask = Some(mask);
        y
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        let alpha = self.alpha;
        // Same mask-then-multiply arithmetic as `forward`, so outputs are
        // bit-identical.
        let mask = ltfb_tensor::map(x, |v| if v > 0.0 { 1.0 } else { alpha });
        hadamard(x, &mask)
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward before forward");
        hadamard(grad, mask)
    }

    #[hot_path]
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, _training: bool, _ws: &mut Workspace) {
        let alpha = self.alpha;
        // Persistent derivative-mask cache, regenerated in place.
        match &mut self.mask {
            Some(m) => map_into(x, m, |v| if v > 0.0 { 1.0 } else { alpha }),
            None => self.mask = Some(ltfb_tensor::map(x, |v| if v > 0.0 { 1.0 } else { alpha })),
        }
        hadamard_into(x, self.mask.as_ref().unwrap(), y);
    }

    #[hot_path]
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, _ws: &mut Workspace) {
        let mask = self.mask.as_ref().expect("backward before forward");
        hadamard_into(grad, mask, dx);
    }

    fn fused_activation(&self) -> Option<Activation> {
        Some(Activation::LeakyRelu(self.alpha))
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Hyperbolic tangent activation.
pub struct Tanh {
    y_cache: Option<Matrix>,
}

impl Tanh {
    pub fn new() -> Self {
        Tanh { y_cache: None }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Matrix, _training: bool) -> Matrix {
        let y = ltfb_tensor::map(x, f32::tanh);
        self.y_cache = Some(y.clone());
        y
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        ltfb_tensor::map(x, f32::tanh)
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        // Recycle the activation cache as the output: d tanh = 1 - y^2,
        // fused with the incoming gradient. Elementwise this is exactly
        // `hadamard(grad, map(y, |v| 1.0 - v * v))` without the two
        // intermediate allocations.
        let mut dx = self.y_cache.take().expect("backward before forward");
        assert_eq!(grad.shape(), dx.shape(), "Tanh grad shape mismatch");
        for (d, &g) in dx.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            let v = *d;
            *d = g * (1.0 - v * v);
        }
        dx
    }

    #[hot_path]
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, _training: bool, _ws: &mut Workspace) {
        map_into(x, y, f32::tanh);
        match &mut self.y_cache {
            Some(c) => c.copy_resize_from(y),
            None => self.y_cache = Some(y.clone()),
        }
    }

    #[hot_path]
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, _ws: &mut Workspace) {
        let y = self.y_cache.as_ref().expect("backward before forward");
        assert_eq!(grad.shape(), y.shape(), "Tanh grad shape mismatch");
        dx.resize(grad.rows(), grad.cols());
        for ((d, &g), &v) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(y.as_slice())
        {
            *d = g * (1.0 - v * v);
        }
    }

    fn fused_activation(&self) -> Option<Activation> {
        Some(Activation::Tanh)
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Logistic sigmoid activation.
pub struct Sigmoid {
    y_cache: Option<Matrix>,
}

impl Sigmoid {
    pub fn new() -> Self {
        Sigmoid { y_cache: None }
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Matrix, _training: bool) -> Matrix {
        let y = ltfb_tensor::map(x, sigmoid);
        self.y_cache = Some(y.clone());
        y
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        ltfb_tensor::map(x, sigmoid)
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        // Same cache-recycling fusion as `Tanh::backward`: dσ = y(1 - y).
        let mut dx = self.y_cache.take().expect("backward before forward");
        assert_eq!(grad.shape(), dx.shape(), "Sigmoid grad shape mismatch");
        for (d, &g) in dx.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            let v = *d;
            *d = g * (v * (1.0 - v));
        }
        dx
    }

    #[hot_path]
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, _training: bool, _ws: &mut Workspace) {
        map_into(x, y, sigmoid);
        match &mut self.y_cache {
            Some(c) => c.copy_resize_from(y),
            None => self.y_cache = Some(y.clone()),
        }
    }

    #[hot_path]
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, _ws: &mut Workspace) {
        let y = self.y_cache.as_ref().expect("backward before forward");
        assert_eq!(grad.shape(), y.shape(), "Sigmoid grad shape mismatch");
        dx.resize(grad.rows(), grad.cols());
        for ((d, &g), &v) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(y.as_slice())
        {
            *d = g * (v * (1.0 - v));
        }
    }

    fn fused_activation(&self) -> Option<Activation> {
        Some(Activation::Sigmoid)
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Inverted dropout: scales surviving activations by `1/(1-p)` during
/// training so evaluation needs no correction.
pub struct Dropout {
    p: f32,
    rng: TensorRng,
    mask: Option<Matrix>,
    /// Whether `mask` reflects the most recent forward. An eval-mode
    /// forward deactivates the mask without dropping the buffer, so the
    /// workspace path keeps its warm allocation across train/eval phases.
    mask_active: bool,
}

impl Dropout {
    pub fn new(p: f32, rng: TensorRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng,
            mask: None,
            mask_active: false,
        }
    }

    /// Regenerate the drop mask in place (row-major element order, one
    /// RNG draw per entry — the identical stream to the allocating path).
    #[hot_path]
    fn refresh_mask(&mut self, rows: usize, cols: usize) {
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = self.mask.get_or_insert_with(|| Matrix::zeros(rows, cols));
        mask.resize(rows, cols);
        for v in mask.as_mut_slice() {
            *v = if rand::Rng::gen::<f32>(&mut self.rng) < keep {
                scale
            } else {
                0.0
            };
        }
        self.mask_active = true;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        if !training || self.p == 0.0 {
            self.mask_active = false;
            return x.clone();
        }
        self.refresh_mask(x.rows(), x.cols());
        hadamard(x, self.mask.as_ref().unwrap())
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        // Inverted dropout is the identity at evaluation time.
        x.clone()
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) if self.mask_active => hadamard(grad, mask),
            _ => grad.clone(), // eval-mode or p == 0 forward
        }
    }

    #[hot_path]
    fn forward_ws(&mut self, x: &Matrix, y: &mut Matrix, training: bool, _ws: &mut Workspace) {
        if !training || self.p == 0.0 {
            self.mask_active = false;
            y.copy_resize_from(x);
            return;
        }
        self.refresh_mask(x.rows(), x.cols());
        hadamard_into(x, self.mask.as_ref().unwrap(), y);
    }

    #[hot_path]
    fn backward_ws(&mut self, grad: &Matrix, dx: &mut Matrix, _ws: &mut Workspace) {
        match &self.mask {
            Some(mask) if self.mask_active => hadamard_into(grad, mask, dx),
            _ => dx.copy_resize_from(grad),
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltfb_tensor::seeded_rng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new(3, 2, Init::Glorot, &mut rng);
        l.b.value.as_mut_slice().copy_from_slice(&[10.0, 20.0]);
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), (4, 2));
        // Zero input: output is the bias broadcast.
        for r in 0..4 {
            assert_eq!(y.row(r), &[10.0, 20.0]);
        }
    }

    #[test]
    fn relu_masks_negatives() {
        let mut l = LeakyRelu::relu();
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.5, 2.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = l.backward(&Matrix::full(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn leaky_relu_leaks() {
        let mut l = LeakyRelu::new(0.1);
        let x = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[-0.1, 1.0]);
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        let x = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let yt = Tanh::new().forward(&x, true);
        assert!(yt.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!((yt.as_slice()[1]).abs() < 1e-7);
        let ys = Sigmoid::new().forward(&x, true);
        assert!(ys.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((ys.as_slice()[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut d = Dropout::new(0.5, seeded_rng(3));
        let x = Matrix::full(8, 8, 1.0);
        let eval = d.forward(&x, false);
        assert_eq!(eval, x);
        let train = d.forward(&x, true);
        // Surviving entries are scaled by 2, dropped are 0.
        assert!(train.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
        let kept = train.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 8 && kept < 56, "kept {kept}/64 looks degenerate");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, seeded_rng(4));
        let x = Matrix::full(4, 4, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Matrix::full(4, 4, 1.0));
        // Gradient passes exactly where activations passed.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv == &0.0, gv == &0.0);
        }
    }

    /// The workspace-path dropout must consume the identical RNG stream
    /// as the allocating path (same draw count and order), so mixed runs
    /// stay bit-reproducible — including across eval-mode forwards,
    /// which deactivate but keep the mask buffer.
    #[test]
    fn dropout_ws_path_bit_identical_incl_rng_stream() {
        use crate::workspace::Workspace;
        let mut d_ref = Dropout::new(0.4, seeded_rng(9));
        let mut d_ws = Dropout::new(0.4, seeded_rng(9));
        let x = Matrix::from_fn(6, 5, |r, c| (r as f32 - 2.0) * 0.3 + c as f32 * 0.1);
        let grad = Matrix::full(6, 5, 0.25);
        let mut ws = Workspace::new();
        for phase in 0..3 {
            let training = phase != 1; // train, eval, train
            let y_ref = d_ref.forward(&x, training);
            let mut y = ws.take_like(&x);
            d_ws.forward_ws(&x, &mut y, training, &mut ws);
            assert_eq!(y_ref, y, "phase {phase}: dropout forward drifted");
            let g_ref = d_ref.backward(&grad);
            let mut dx = ws.take_like(&x);
            d_ws.backward_ws(&grad, &mut dx, &mut ws);
            assert_eq!(g_ref, dx, "phase {phase}: dropout backward drifted");
            ws.give(y);
            ws.give(dx);
        }
    }

    /// Numerical gradient check for the Linear layer: the analytic
    /// dL/dW, dL/db, dL/dX must match central differences on a tiny net.
    #[test]
    fn linear_gradcheck() {
        let mut rng = seeded_rng(5);
        let mut l = Linear::new(3, 2, Init::Glorot, &mut rng);
        let x = ltfb_tensor::uniform(4, 3, -1.0, 1.0, &mut rng);
        let target = ltfb_tensor::uniform(4, 2, -1.0, 1.0, &mut rng);
        let loss = |l: &mut Linear, x: &Matrix| -> f32 {
            let y = l.forward(x, true);
            ltfb_tensor::mean_squared_error(&y, &target)
        };
        // Analytic gradients.
        let y = l.forward(&x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &target);
        let dx = l.backward(&g);
        let eps = 1e-2;
        // Check dW numerically at a few entries.
        for idx in [0usize, 3, 5] {
            let analytic = l.w.grad.as_slice()[idx];
            let orig = l.w.value.as_slice()[idx];
            l.w.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut l, &x);
            l.w.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut l, &x);
            l.w.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-3,
                "dW[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Check dX numerically at one entry.
        let idx = 2;
        let orig = x.as_slice()[idx];
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] = orig + eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] = orig - eps;
        let numeric = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
        assert!(
            (dx.as_slice()[idx] - numeric).abs() < 2e-3,
            "dX[{idx}]: analytic {} vs numeric {numeric}",
            dx.as_slice()[idx]
        );
    }
}
