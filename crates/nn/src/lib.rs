//! # ltfb-nn
//!
//! The neural-network core — the substitute for LBANN's model/trainer
//! machinery: layers with exact backprop ([`layer`]), feed-forward models
//! with snapshot/wire serialization ([`model`]), SGD/Adam optimizers
//! ([`optimizer`]), partitioned shuffling data readers ([`reader`]),
//! data-parallel gradient allreduce over the simulated MPI world ([`dp`]),
//! and training metrics ([`metrics`]).
//!
//! Everything is deterministic given seeds, and every gradient path is
//! validated against central differences in the test suite.

#![forbid(unsafe_code)]

pub mod dp;
pub mod layer;
pub mod metrics;
pub mod model;
pub mod norm;
pub mod optimizer;
pub mod overlap;
pub mod param;
pub mod quant;
pub mod reader;
pub mod workspace;

pub use dp::{allreduce_gradients, broadcast_weights, replicas_in_sync, FusedGradients};
pub use layer::{Dropout, Init, Layer, LeakyRelu, Linear, Sigmoid, Tanh};
pub use metrics::{LossHistory, RunningMean};
pub use model::{mlp, OutputActivation, Sequential};
pub use norm::{LayerNorm, LrSchedule};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use overlap::{Bucket, BucketPlan, OverlappedGradients, DEFAULT_BUCKET_ELEMS};
pub use param::Param;
pub use quant::{QuantError, QuantSequential};
pub use reader::{BatchReader, InMemoryDataset};
pub use workspace::Workspace;
