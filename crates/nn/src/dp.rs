//! Data-parallel training support over `ltfb-comm`: gradient allreduce
//! across the ranks of a trainer and replica weight synchronisation —
//! the intra-trainer parallelism of Fig. 4.

use crate::model::Sequential;
use ltfb_comm::{Comm, ReduceOp};

/// Average the accumulated gradients of `model` across the ranks of
/// `comm` (ring allreduce of the flattened gradient vector, then a 1/n
/// scale) — the per-step synchronisation of data-parallel SGD.
pub fn allreduce_gradients(model: &mut Sequential, comm: &Comm) {
    let n = comm.size();
    if n <= 1 {
        return;
    }
    // Flatten all gradients into one contiguous buffer: one big allreduce
    // rather than one per tensor.
    let total: usize = model.params().iter().map(|p| p.grad.len()).sum();
    let mut flat = Vec::with_capacity(total);
    for p in model.params() {
        flat.extend_from_slice(p.grad.as_slice());
    }
    comm.allreduce_f32(&mut flat, ReduceOp::Sum);
    let scale = 1.0 / n as f32;
    let mut off = 0;
    for p in model.params_mut() {
        let len = p.grad.len();
        for (g, &s) in p.grad.as_mut_slice().iter_mut().zip(&flat[off..off + len]) {
            *g = s * scale;
        }
        off += len;
    }
}

/// Broadcast rank-`root`'s weights to every rank of `comm`, making all
/// replicas identical (trainer start-up, and after an LTFB exchange the
/// winning weights are propagated trainer-internally the same way).
pub fn broadcast_weights(model: &mut Sequential, comm: &Comm, root: usize) {
    if comm.size() <= 1 {
        return;
    }
    let payload = (comm.rank() == root).then(|| model.weights_to_bytes());
    let data = comm.broadcast(root, payload);
    if comm.rank() != root {
        model
            .weights_from_bytes(data)
            .expect("weight broadcast payload corrupt — replicas diverged structurally");
    }
}

/// True iff all ranks currently hold bit-identical weights (debug/test
/// helper; gathers weight fingerprints).
pub fn replicas_in_sync(model: &Sequential, comm: &Comm) -> bool {
    let mine = model.weights_fingerprint();
    let all = comm.allgather(ltfb_comm::bytes_of_u64(mine));
    all.iter().all(|b| ltfb_comm::u64_of_bytes(b) == mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{mlp, OutputActivation};
    use ltfb_comm::run_world;
    use ltfb_tensor::{mix_seed, seeded_rng, uniform};

    fn model_for_rank(rank: usize) -> Sequential {
        let mut rng = seeded_rng(mix_seed(&[100, rank as u64]));
        mlp(&[3, 6, 2], 0.1, OutputActivation::LinearOut, &mut rng)
    }

    #[test]
    fn broadcast_synchronises_replicas() {
        run_world(4, |comm| {
            let mut m = model_for_rank(comm.rank());
            assert!(
                !replicas_in_sync(&m, &comm),
                "differently-seeded replicas should differ"
            );
            broadcast_weights(&mut m, &comm, 0);
            assert!(replicas_in_sync(&m, &comm), "broadcast must synchronise");
        });
    }

    #[test]
    fn allreduce_averages_gradients() {
        run_world(3, |comm| {
            let mut m = model_for_rank(0); // same structure everywhere
                                           // Set every gradient to (rank+1).
            for p in m.params_mut() {
                p.grad.as_mut_slice().fill((comm.rank() + 1) as f32);
            }
            allreduce_gradients(&mut m, &comm);
            // Average of 1,2,3 = 2.
            for p in m.params() {
                assert!(p.grad.as_slice().iter().all(|&g| (g - 2.0).abs() < 1e-5));
            }
        });
    }

    #[test]
    fn data_parallel_equals_serial_large_batch() {
        // One rank training on the full batch must match 4 ranks training
        // on quarter-shards with gradient averaging (up to f32 noise):
        // the fundamental correctness property of data parallelism.
        let full_x = uniform(8, 3, -1.0, 1.0, &mut seeded_rng(42));
        let full_t = uniform(8, 2, -1.0, 1.0, &mut seeded_rng(43));

        // Serial reference.
        let mut serial = model_for_rank(0);
        let y = serial.forward(&full_x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &full_t);
        serial.zero_grads();
        serial.forward(&full_x, true);
        serial.backward(&g);
        let reference: Vec<f32> = serial
            .params()
            .iter()
            .flat_map(|p| p.grad.as_slice().to_vec())
            .collect();

        // Data-parallel: each rank gets 2 of the 8 rows. Loss gradients
        // are per-shard means, so after averaging across 4 equal shards
        // the result equals the full-batch mean gradient.
        let grads = run_world(4, |comm| {
            let r = comm.rank();
            let x = full_x.slice_rows(2 * r, 2 * r + 2);
            let t = full_t.slice_rows(2 * r, 2 * r + 2);
            let mut m = model_for_rank(0);
            let y = m.forward(&x, true);
            let g = ltfb_tensor::mean_squared_error_grad(&y, &t);
            m.zero_grads();
            m.forward(&x, true);
            m.backward(&g);
            allreduce_gradients(&mut m, &comm);
            m.params()
                .iter()
                .flat_map(|p| p.grad.as_slice().to_vec())
                .collect::<Vec<f32>>()
        });

        for rank_grads in &grads {
            assert_eq!(rank_grads.len(), reference.len());
            for (dp, serial) in rank_grads.iter().zip(&reference) {
                assert!(
                    (dp - serial).abs() < 1e-4,
                    "data-parallel grad {dp} != serial {serial}"
                );
            }
        }
    }

    #[test]
    fn single_rank_allreduce_is_noop() {
        run_world(1, |comm| {
            let mut m = model_for_rank(0);
            for p in m.params_mut() {
                p.grad.as_mut_slice().fill(5.0);
            }
            allreduce_gradients(&mut m, &comm);
            for p in m.params() {
                assert!(p.grad.as_slice().iter().all(|&g| g == 5.0));
            }
        });
    }
}
