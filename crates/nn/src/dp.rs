//! Data-parallel training support over `ltfb-comm`: gradient allreduce
//! across the ranks of a trainer and replica weight synchronisation —
//! the intra-trainer parallelism of Fig. 4.

use crate::model::Sequential;
use ltfb_comm::{Comm, ReduceOp};
use ltfb_hotpath::hot_path;

/// Average the accumulated gradients of `model` across the ranks of
/// `comm` (ring allreduce of the flattened gradient vector, then a 1/n
/// scale) — the per-step synchronisation of data-parallel SGD.
pub fn allreduce_gradients(model: &mut Sequential, comm: &Comm) {
    let n = comm.size();
    if n <= 1 {
        return;
    }
    // Flatten all gradients into one contiguous buffer: one big allreduce
    // rather than one per tensor. Pack/unpack visits the parameters in
    // place instead of materialising `params()` vectors on both sides.
    let mut total = 0usize;
    model.visit_params_mut(&mut |p| total += p.grad.len());
    let mut flat = Vec::with_capacity(total);
    model.visit_params_mut(&mut |p| flat.extend_from_slice(p.grad.as_slice()));
    comm.allreduce_f32(&mut flat, ReduceOp::Sum);
    // Scale the flat buffer once, then block-copy back: per element this
    // is the same single multiply as scaling during the writeback.
    let scale = 1.0 / n as f32;
    for g in &mut flat {
        *g *= scale;
    }
    let mut off = 0usize;
    model.visit_params_mut(&mut |p| {
        let len = p.grad.len();
        p.grad.as_mut_slice().copy_from_slice(&flat[off..off + len]);
        off += len;
    });
}

/// Persistent fused-gradient allreduce: the zero-allocation counterpart
/// of [`allreduce_gradients`] (the Horovod/Aluminum "fusion buffer"
/// idea). The flat staging buffer is owned by the struct and reused
/// every step, and the exchange itself runs on the chunked, pipelined
/// ring schedule — numerically **bit-identical** to the plain path,
/// since `allreduce_f32_chunked` reproduces `allreduce_f32`'s fold
/// order exactly and the 1/n scale is the same single multiply.
pub struct FusedGradients {
    buf: Vec<f32>,
    subchunks: usize,
}

impl Default for FusedGradients {
    fn default() -> Self {
        Self::new()
    }
}

impl FusedGradients {
    /// Default pipeline depth of 4 sub-chunks per ring step.
    pub fn new() -> Self {
        Self::with_subchunks(4)
    }

    pub fn with_subchunks(subchunks: usize) -> Self {
        assert!(subchunks >= 1, "need at least one sub-chunk");
        FusedGradients {
            buf: Vec::new(),
            subchunks,
        }
    }

    /// Capacity of the persistent staging buffer (0 until first use).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Average `model`'s gradients across `comm` in place. Allocation-free
    /// after the first call on a given model size.
    #[hot_path]
    pub fn allreduce(&mut self, model: &mut Sequential, comm: &Comm) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        self.buf.clear();
        let buf = &mut self.buf;
        model.visit_params_mut(&mut |p| buf.extend_from_slice(p.grad.as_slice()));
        comm.allreduce_f32_chunked(&mut self.buf, ReduceOp::Sum, self.subchunks);
        let scale = 1.0 / n as f32;
        for g in &mut self.buf {
            *g *= scale;
        }
        let mut off = 0usize;
        let buf = &self.buf;
        model.visit_params_mut(&mut |p| {
            let len = p.grad.len();
            p.grad.as_mut_slice().copy_from_slice(&buf[off..off + len]);
            off += len;
        });
    }
}

/// Broadcast rank-`root`'s weights to every rank of `comm`, making all
/// replicas identical (trainer start-up, and after an LTFB exchange the
/// winning weights are propagated trainer-internally the same way).
pub fn broadcast_weights(model: &mut Sequential, comm: &Comm, root: usize) {
    if comm.size() <= 1 {
        return;
    }
    let payload = (comm.rank() == root).then(|| model.weights_to_bytes());
    let data = comm.broadcast(root, payload);
    if comm.rank() != root {
        model
            .weights_from_bytes(data)
            .expect("weight broadcast payload corrupt — replicas diverged structurally");
    }
}

/// True iff all ranks currently hold bit-identical weights (debug/test
/// helper; gathers weight fingerprints).
pub fn replicas_in_sync(model: &Sequential, comm: &Comm) -> bool {
    let mine = model.weights_fingerprint();
    let all = comm.allgather(ltfb_comm::bytes_of_u64(mine));
    all.iter().all(|b| ltfb_comm::u64_of_bytes(b) == mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{mlp, OutputActivation};
    use ltfb_comm::run_world;
    use ltfb_tensor::{mix_seed, seeded_rng, uniform};

    fn model_for_rank(rank: usize) -> Sequential {
        let mut rng = seeded_rng(mix_seed(&[100, rank as u64]));
        mlp(&[3, 6, 2], 0.1, OutputActivation::LinearOut, &mut rng)
    }

    #[test]
    fn broadcast_synchronises_replicas() {
        run_world(4, |comm| {
            let mut m = model_for_rank(comm.rank());
            assert!(
                !replicas_in_sync(&m, &comm),
                "differently-seeded replicas should differ"
            );
            broadcast_weights(&mut m, &comm, 0);
            assert!(replicas_in_sync(&m, &comm), "broadcast must synchronise");
        });
    }

    #[test]
    fn allreduce_averages_gradients() {
        run_world(3, |comm| {
            let mut m = model_for_rank(0); // same structure everywhere
                                           // Set every gradient to (rank+1).
            for p in m.params_mut() {
                p.grad.as_mut_slice().fill((comm.rank() + 1) as f32);
            }
            allreduce_gradients(&mut m, &comm);
            // Average of 1,2,3 = 2.
            for p in m.params() {
                assert!(p.grad.as_slice().iter().all(|&g| (g - 2.0).abs() < 1e-5));
            }
        });
    }

    #[test]
    fn data_parallel_equals_serial_large_batch() {
        // One rank training on the full batch must match 4 ranks training
        // on quarter-shards with gradient averaging (up to f32 noise):
        // the fundamental correctness property of data parallelism.
        let full_x = uniform(8, 3, -1.0, 1.0, &mut seeded_rng(42));
        let full_t = uniform(8, 2, -1.0, 1.0, &mut seeded_rng(43));

        // Serial reference.
        let mut serial = model_for_rank(0);
        let y = serial.forward(&full_x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &full_t);
        serial.zero_grads();
        serial.forward(&full_x, true);
        serial.backward(&g);
        let reference: Vec<f32> = serial
            .params()
            .iter()
            .flat_map(|p| p.grad.as_slice().to_vec())
            .collect();

        // Data-parallel: each rank gets 2 of the 8 rows. Loss gradients
        // are per-shard means, so after averaging across 4 equal shards
        // the result equals the full-batch mean gradient.
        let grads = run_world(4, |comm| {
            let r = comm.rank();
            let x = full_x.slice_rows(2 * r, 2 * r + 2);
            let t = full_t.slice_rows(2 * r, 2 * r + 2);
            let mut m = model_for_rank(0);
            let y = m.forward(&x, true);
            let g = ltfb_tensor::mean_squared_error_grad(&y, &t);
            m.zero_grads();
            m.forward(&x, true);
            m.backward(&g);
            allreduce_gradients(&mut m, &comm);
            m.params()
                .iter()
                .flat_map(|p| p.grad.as_slice().to_vec())
                .collect::<Vec<f32>>()
        });

        for rank_grads in &grads {
            assert_eq!(rank_grads.len(), reference.len());
            for (dp, serial) in rank_grads.iter().zip(&reference) {
                assert!(
                    (dp - serial).abs() < 1e-4,
                    "data-parallel grad {dp} != serial {serial}"
                );
            }
        }
    }

    #[test]
    fn fused_allreduce_bit_identical_to_plain_and_reuses_buffer() {
        run_world(4, |comm| {
            let mut plain = model_for_rank(0);
            let mut fused_model = model_for_rank(0);
            // Rank-dependent but deterministic gradients on both models.
            for m in [&mut plain, &mut fused_model] {
                let mut k = 0u32;
                m.visit_params_mut(&mut |p| {
                    for g in p.grad.as_mut_slice() {
                        *g = ((comm.rank() as u32 * 131 + k) as f32 * 0.37).sin();
                        k += 1;
                    }
                });
            }
            allreduce_gradients(&mut plain, &comm);
            let mut fused = FusedGradients::with_subchunks(3);
            fused.allreduce(&mut fused_model, &comm);
            for (a, b) in plain.params().iter().zip(fused_model.params()) {
                assert_eq!(
                    a.grad.as_slice(),
                    b.grad.as_slice(),
                    "fused allreduce drifted from plain"
                );
            }
            // Steady state: the staging buffer must not regrow.
            let cap = fused.capacity();
            assert!(cap >= fused_model.num_params());
            fused.allreduce(&mut fused_model, &comm);
            assert_eq!(fused.capacity(), cap, "fusion buffer reallocated");
        });
    }

    #[test]
    fn single_rank_allreduce_is_noop() {
        run_world(1, |comm| {
            let mut m = model_for_rank(0);
            for p in m.params_mut() {
                p.grad.as_mut_slice().fill(5.0);
            }
            allreduce_gradients(&mut m, &comm);
            for p in m.params() {
                assert!(p.grad.as_slice().iter().all(|&g| g == 5.0));
            }
        });
    }
}
