//! Layer normalisation — the normalisation layer of choice for
//! fully-connected stacks (batch statistics are unstable at the small
//! per-GPU batches data parallelism produces, which is exactly the
//! regime of Fig. 9's right-hand side).

use crate::layer::Layer;
use crate::param::Param;
use ltfb_tensor::Matrix;

/// Per-row (per-sample) normalisation with learned scale and shift:
/// `y = gamma * (x - mean_row) / sqrt(var_row + eps) + beta`.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    /// Cached normalised input and per-row inverse std for backward.
    cache: Option<(Matrix, Vec<f32>)>,
}

impl LayerNorm {
    pub fn new(width: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::full(1, width, 1.0)),
            beta: Param::new(Matrix::zeros(1, width)),
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn width(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix, _training: bool) -> Matrix {
        assert_eq!(x.cols(), self.width(), "LayerNorm width mismatch");
        let d = x.cols() as f32;
        let mut xhat = Matrix::zeros(x.rows(), x.cols());
        let mut inv_std = Vec::with_capacity(x.rows());
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut y = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            let xh = xhat.row_mut(r);
            let yr = y.row_mut(r);
            for j in 0..row.len() {
                xh[j] = (row[j] - mean) * istd;
                yr[j] = gamma[j] * xh[j] + beta[j];
            }
        }
        self.cache = Some((xhat, inv_std));
        y
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.width(), "LayerNorm width mismatch");
        let d = x.cols() as f32;
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut y = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let istd = 1.0 / (var + self.eps).sqrt();
            let yr = y.row_mut(r);
            for j in 0..row.len() {
                yr[j] = gamma[j] * ((row[j] - mean) * istd) + beta[j];
            }
        }
        y
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let (xhat, inv_std) = self.cache.as_ref().expect("backward before forward");
        assert_eq!(grad.shape(), xhat.shape());
        let d = grad.cols() as f32;
        let gamma = self.gamma.value.as_slice();
        let mut dx = Matrix::zeros(grad.rows(), grad.cols());
        // dGamma, dBeta accumulate over the batch.
        {
            let dgamma = self.gamma.grad.as_mut_slice();
            let dbeta = self.beta.grad.as_mut_slice();
            for r in 0..grad.rows() {
                let g = grad.row(r);
                let xh = xhat.row(r);
                for j in 0..g.len() {
                    dgamma[j] += g[j] * xh[j];
                    dbeta[j] += g[j];
                }
            }
        }
        // dX via the standard layernorm backward:
        // dx = istd/D * (D*gl - sum(gl) - xhat * sum(gl*xhat)),
        // where gl = grad * gamma.
        for (r, &istd) in inv_std.iter().enumerate() {
            let g = grad.row(r);
            let xh = xhat.row(r);
            let mut sum_gl = 0.0f32;
            let mut sum_gl_xh = 0.0f32;
            for j in 0..g.len() {
                let gl = g[j] * gamma[j];
                sum_gl += gl;
                sum_gl_xh += gl * xh[j];
            }
            let dst = dx.row_mut(r);
            for j in 0..g.len() {
                let gl = g[j] * gamma[j];
                dst[j] = istd / d * (d * gl - sum_gl - xh[j] * sum_gl_xh);
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn name(&self) -> &'static str {
        "layer_norm"
    }
}

/// Learning-rate schedules (LBANN's drop schedules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `factor` every `every` steps.
    StepDecay { every: u64, factor: f32 },
    /// Linear warmup to the base rate over `steps`, then constant.
    Warmup { steps: u64 },
}

impl LrSchedule {
    /// Learning rate at `step` given the base rate.
    pub fn at(&self, base: f32, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0 && factor > 0.0);
                base * factor.powi((step / every) as i32)
            }
            LrSchedule::Warmup { steps } => {
                if steps == 0 || step >= steps {
                    base
                } else {
                    base * (step as f32 + 1.0) / steps as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltfb_tensor::{seeded_rng, uniform};

    #[test]
    fn forward_normalises_rows() {
        let mut ln = LayerNorm::new(6);
        let mut rng = seeded_rng(1);
        let x = uniform(4, 6, -3.0, 7.0, &mut rng);
        let y = ln.forward(&x, true);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn identity_gamma_beta_learnable() {
        let mut ln = LayerNorm::new(3);
        ln.gamma
            .value
            .as_mut_slice()
            .copy_from_slice(&[2.0, 2.0, 2.0]);
        ln.beta
            .value
            .as_mut_slice()
            .copy_from_slice(&[1.0, 1.0, 1.0]);
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 1.0]);
        let y = ln.forward(&x, true);
        // xhat of [-1,0,1] is itself scaled to unit variance.
        let istd = 1.0 / ((2.0f32 / 3.0) + 1e-5).sqrt();
        for (j, &v) in y.row(0).iter().enumerate() {
            let expected = 2.0 * (x.row(0)[j] * istd) + 1.0;
            assert!((v - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn gradcheck_layernorm() {
        let mut ln = LayerNorm::new(5);
        let mut rng = seeded_rng(2);
        let x = uniform(3, 5, -1.0, 1.0, &mut rng);
        let target = uniform(3, 5, -1.0, 1.0, &mut rng);

        // Analytic input gradient for MSE(LN(x), target).
        let y = ln.forward(&x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &target);
        for p in ln.params_mut() {
            p.zero_grad();
        }
        ln.forward(&x, true);
        let dx = ln.backward(&g);

        let eps = 1e-2;
        for idx in [0usize, 7, 14] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = ltfb_tensor::mean_squared_error(&ln.forward(&xp, true), &target);
            let lm = ltfb_tensor::mean_squared_error(&ln.forward(&xm, true), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[idx] - numeric).abs() < 2e-3,
                "dx[{idx}]: {} vs {numeric}",
                dx.as_slice()[idx]
            );
        }
        // Gamma gradient check.
        let y = ln.forward(&x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &target);
        for p in ln.params_mut() {
            p.zero_grad();
        }
        ln.forward(&x, true);
        ln.backward(&g);
        let analytic = ln.params()[0].grad.as_slice()[2];
        let orig = ln.params()[0].value.as_slice()[2];
        ln.params_mut()[0].value.as_mut_slice()[2] = orig + eps;
        let lp = ltfb_tensor::mean_squared_error(&ln.forward(&x, true), &target);
        ln.params_mut()[0].value.as_mut_slice()[2] = orig - eps;
        let lm = ltfb_tensor::mean_squared_error(&ln.forward(&x, true), &target);
        ln.params_mut()[0].value.as_mut_slice()[2] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-3,
            "dgamma {analytic} vs {numeric}"
        );
    }

    #[test]
    fn schedules() {
        let base = 0.1;
        assert_eq!(LrSchedule::Constant.at(base, 0), base);
        assert_eq!(LrSchedule::Constant.at(base, 1000), base);

        let decay = LrSchedule::StepDecay {
            every: 100,
            factor: 0.5,
        };
        assert_eq!(decay.at(base, 0), base);
        assert_eq!(decay.at(base, 99), base);
        assert_eq!(decay.at(base, 100), base * 0.5);
        assert_eq!(decay.at(base, 250), base * 0.25);

        let warm = LrSchedule::Warmup { steps: 10 };
        assert!((warm.at(base, 0) - base * 0.1).abs() < 1e-7);
        assert!((warm.at(base, 4) - base * 0.5).abs() < 1e-7);
        assert_eq!(warm.at(base, 10), base);
        assert_eq!(warm.at(base, 999), base);
    }

    #[test]
    fn layernorm_in_a_sequential_stack() {
        use crate::layer::{Init, Linear};
        use crate::model::Sequential;
        let mut rng = seeded_rng(3);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(4, 8, Init::He, &mut rng)),
            Box::new(LayerNorm::new(8)),
            Box::new(crate::layer::Tanh::new()),
            Box::new(Linear::new(8, 2, Init::Glorot, &mut rng)),
        ]);
        // 4*8+8 + 8+8 + 8*2+2 = 74 params.
        assert_eq!(m.num_params(), 74);
        let x = uniform(5, 4, -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), (5, 2));
        m.backward(&Matrix::full(5, 2, 1.0));
        assert!(m.params().iter().all(|p| p.grad.all_finite()));
    }
}
