//! Per-replica training workspace: a shape-keyed arena of reusable
//! activation/scratch matrices.
//!
//! The allocating `forward`/`backward` path builds a fresh `Matrix` for
//! every activation, derivative mask and gradient of every layer of every
//! network, every step — fine for correctness, fatal for steady-state
//! throughput (LBANN's equivalents are preallocated device buffers). The
//! workspace path instead draws buffers from this pool and returns them
//! when the consuming op is done: after one warm-up step every `take` is
//! a pool hit and the hot loop performs **zero heap allocation**.
//!
//! Ownership rules (see DESIGN.md §6d):
//! 1. `take(r, c)` hands out an `r x c` matrix with **unspecified
//!    contents** — the consumer must fully overwrite it (GEMM with
//!    `beta = 0`, `*_into` ops, `copy_resize_from`, `fill`).
//! 2. Every taken buffer is `give`n back in the same step; the pool is
//!    keyed by shape, so steady-state training touches a fixed buffer set.
//! 3. Buffers never cross replicas: one `Workspace` per trainer.

use ltfb_tensor::Matrix;
use std::collections::HashMap;

/// Shape-keyed arena of scratch matrices (one per training replica).
#[derive(Default)]
pub struct Workspace {
    pool: HashMap<(usize, usize), Vec<Matrix>>,
    hits: u64,
    misses: u64,
    bytes_allocated: u64,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Borrow an `rows x cols` matrix from the pool (or allocate on a
    /// miss). Contents are unspecified; the caller must overwrite them.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        if let Some(m) = self.pool.get_mut(&(rows, cols)).and_then(Vec::pop) {
            self.hits += 1;
            m
        } else {
            self.misses += 1;
            self.bytes_allocated += (rows * cols * std::mem::size_of::<f32>()) as u64;
            Matrix::zeros(rows, cols)
        }
    }

    /// [`Workspace::take`] with the shape of an existing matrix.
    pub fn take_like(&mut self, m: &Matrix) -> Matrix {
        self.take(m.rows(), m.cols())
    }

    /// Return a buffer to the pool under its current shape.
    pub fn give(&mut self, m: Matrix) {
        self.pool.entry(m.shape()).or_default().push(m);
    }

    /// Pool hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pool misses (each one allocated) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total bytes allocated by pool misses since construction. The
    /// per-step delta of this counter is the `train.alloc_bytes_per_step`
    /// observability gauge; it settles at 0 once the pool is warm.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated
    }

    /// Number of buffers currently resident in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_cycle_hits_after_warmup() {
        let mut ws = Workspace::new();
        let a = ws.take(4, 8);
        assert_eq!(a.shape(), (4, 8));
        assert_eq!(ws.misses(), 1);
        assert_eq!(ws.bytes_allocated(), 4 * 8 * 4);
        ws.give(a);
        let b = ws.take(4, 8);
        assert_eq!(ws.hits(), 1);
        assert_eq!(ws.misses(), 1, "second take of a warm shape must hit");
        ws.give(b);
    }

    #[test]
    fn distinct_shapes_pool_separately() {
        let mut ws = Workspace::new();
        let a = ws.take(2, 3);
        let b = ws.take(3, 2);
        assert_eq!(ws.misses(), 2);
        ws.give(a);
        ws.give(b);
        assert_eq!(ws.pooled(), 2);
        let _ = ws.take(2, 3);
        assert_eq!(ws.hits(), 1);
    }

    #[test]
    fn concurrent_takes_of_same_shape_both_served() {
        let mut ws = Workspace::new();
        let a = ws.take(4, 4);
        let b = ws.take(4, 4); // first one still out: second is a miss
        assert_eq!(ws.misses(), 2);
        ws.give(a);
        ws.give(b);
        // Steady state: both in-flight buffers now hit.
        let a = ws.take(4, 4);
        let b = ws.take(4, 4);
        assert_eq!(ws.misses(), 2);
        assert_eq!(ws.hits(), 2);
        ws.give(a);
        ws.give(b);
    }
}
