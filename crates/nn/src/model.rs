//! `Sequential`: a feed-forward stack of layers — the "model" of an LBANN
//! trainer — with weight snapshot/restore and wire serialization for the
//! LTFB generator exchange.

use crate::layer::{Init, Layer, LeakyRelu, Linear, Sigmoid, Tanh};
use crate::param::Param;
use crate::workspace::Workspace;
use bytes::Bytes;
use ltfb_hotpath::hot_path;
use ltfb_tensor::{decode_matrices, encode_matrices, DecodeError, Matrix, TensorRng};

/// A feed-forward stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Output activation of an MLP built with [`mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputActivation {
    /// Raw affine output (regression / logits).
    LinearOut,
    /// Tanh squash (latent codes in [-1, 1]).
    TanhOut,
    /// Sigmoid squash (images in [0, 1]).
    SigmoidOut,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Shared view of the layer stack (introspection: fusion peepholes,
    /// the int8 quantizer).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Forward pass through the whole stack.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h, training);
        }
        h
    }

    /// Inference-only forward pass: no cache writes or RNG draws, so a
    /// model behind `Arc<Sequential>` can serve concurrent requests.
    /// Output is bit-identical to `forward(x, false)`.
    ///
    /// `Linear -> activation` pairs are peephole-fused into a single
    /// [`ltfb_tensor::gemm_bias_act`] call (the epilogue applies the
    /// activation in the GEMM's output pass); the fused epilogue is
    /// bit-identical to running the activation layer afterwards, so
    /// fusion is invisible except in throughput.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let mut i = 0;
        while i < self.layers.len() {
            if let Some(lin) = self.layers[i].as_linear() {
                if let Some(act) = self.layers.get(i + 1).and_then(|l| l.fused_activation()) {
                    h = lin.infer_act(&h, act);
                    i += 2;
                    continue;
                }
            }
            h = self.layers[i].infer(&h);
            i += 1;
        }
        h
    }

    /// Backward pass (call after `forward`); returns dL/d_input.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Workspace-path forward: bit-identical outputs to
    /// [`Self::forward`], but every activation lives in a buffer drawn
    /// from `ws` — allocation-free once the pool is warm. Activations
    /// ping-pong through at most two pooled buffers (the first layer
    /// reads `x` directly). The returned matrix is pool-owned: the
    /// caller must hand it back with `ws.give` when done with it.
    #[hot_path]
    pub fn forward_ws(&mut self, x: &Matrix, training: bool, ws: &mut Workspace) -> Matrix {
        let n = x.rows();
        let mut cur: Option<Matrix> = None;
        for l in &mut self.layers {
            let in_cols = cur.as_ref().map_or(x.cols(), |m| m.cols());
            let mut y = ws.take(n, l.out_cols(in_cols));
            l.forward_ws(cur.as_ref().unwrap_or(x), &mut y, training, ws);
            if let Some(old) = cur.take() {
                ws.give(old);
            }
            cur = Some(y);
        }
        cur.unwrap_or_else(|| {
            let mut y = ws.take(n, x.cols());
            y.copy_resize_from(x);
            y
        })
    }

    /// Workspace-path backward: bit-identical gradients to
    /// [`Self::backward`]. The returned dL/d_input is pool-owned — give
    /// it back with `ws.give` (or keep borrowing it until you do).
    #[hot_path]
    pub fn backward_ws(&mut self, grad: &Matrix, ws: &mut Workspace) -> Matrix {
        self.backward_ws_hooked(grad, ws, &mut |_, _| {})
    }

    /// [`Self::backward_ws`] with a per-layer completion hook: `hook(i,
    /// layer)` fires right after layer `i` (forward index) finishes its
    /// backward, i.e. once its parameter gradients are final — layers are
    /// visited in reverse order, so hooks arrive for `len-1, len-2, …, 0`.
    /// This is the attachment point for the gradient-bucket overlap
    /// engine; the hook must not run collectives that block (lint LA011).
    /// Arithmetic is untouched: `backward_ws` *is* this with an empty
    /// hook, so results stay bit-identical.
    #[hot_path]
    pub fn backward_ws_hooked(
        &mut self,
        grad: &Matrix,
        ws: &mut Workspace,
        hook: &mut dyn FnMut(usize, &dyn Layer),
    ) -> Matrix {
        let n = grad.rows();
        let last = self.layers.len().wrapping_sub(1);
        let mut cur: Option<Matrix> = None;
        for (k, l) in self.layers.iter_mut().rev().enumerate() {
            let out_cols = cur.as_ref().map_or(grad.cols(), |m| m.cols());
            let mut dx = ws.take(n, l.in_cols(out_cols));
            l.backward_ws(cur.as_ref().unwrap_or(grad), &mut dx, ws);
            hook(last - k, l.as_ref());
            if let Some(old) = cur.take() {
                ws.give(old);
            }
            cur = Some(dx);
        }
        cur.unwrap_or_else(|| {
            let mut g = ws.take(n, grad.cols());
            g.copy_resize_from(grad);
            g
        })
    }

    /// All trainable parameters, in deterministic layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Shared view of all trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Visit every trainable parameter in deterministic layer order
    /// without building the `Vec` that [`Self::params_mut`] allocates.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params_mut(f);
        }
    }

    /// Zero every parameter gradient (start of a step).
    pub fn zero_grads(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Layer names, for architecture dumps.
    pub fn architecture(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Copy of every weight tensor (the model-exchange payload).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }

    /// Restore weights from a snapshot taken on a structurally identical
    /// model. Panics on shape mismatch (that is a programming error, not
    /// a data error).
    pub fn restore(&mut self, weights: &[Matrix]) {
        let mut params = self.params_mut();
        assert_eq!(
            params.len(),
            weights.len(),
            "snapshot tensor count mismatch"
        );
        for (p, w) in params.iter_mut().zip(weights) {
            assert_eq!(p.value.shape(), w.shape(), "snapshot tensor shape mismatch");
            p.value = w.clone();
        }
    }

    /// Order-sensitive 64-bit FNV-1a fingerprint of all weight bytes.
    ///
    /// Note: this deliberately hashes the raw values, NOT the serialized
    /// stream — the wire format embeds per-tensor CRCs, and a CRC of
    /// `payload || crc(payload)` blocks is a payload-independent constant
    /// (the CRC residue property), which would make stream hashes useless
    /// as fingerprints.
    pub fn weights_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in self.params() {
            for v in p.value.as_slice() {
                for b in v.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }

    /// Serialise all weights for a cross-trainer exchange.
    pub fn weights_to_bytes(&self) -> Bytes {
        let snap = self.snapshot();
        let refs: Vec<&Matrix> = snap.iter().collect();
        encode_matrices(&refs)
    }

    /// Load weights previously produced by [`Self::weights_to_bytes`] on a
    /// structurally identical model.
    pub fn weights_from_bytes(&mut self, data: Bytes) -> Result<(), DecodeError> {
        let ws = decode_matrices(data)?;
        self.restore(&ws);
        Ok(())
    }
}

/// Build a standard fully-connected network: `sizes[0]` inputs through
/// hidden LeakyReLU layers to `sizes.last()` outputs with the chosen
/// output activation — "each of these components is implemented as a
/// standard fully-connected neural network" (Section II-D).
pub fn mlp(sizes: &[usize], leak: f32, out: OutputActivation, rng: &mut TensorRng) -> Sequential {
    assert!(sizes.len() >= 2, "need at least input and output sizes");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for i in 0..sizes.len() - 1 {
        let last = i == sizes.len() - 2;
        let init = if last { Init::Glorot } else { Init::He };
        layers.push(Box::new(Linear::new(sizes[i], sizes[i + 1], init, rng)));
        if !last {
            layers.push(Box::new(LeakyRelu::new(leak)));
        }
    }
    match out {
        OutputActivation::LinearOut => {}
        OutputActivation::TanhOut => layers.push(Box::new(Tanh::new())),
        OutputActivation::SigmoidOut => layers.push(Box::new(Sigmoid::new())),
    }
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltfb_tensor::{seeded_rng, uniform};

    fn tiny(rng: &mut TensorRng) -> Sequential {
        mlp(&[4, 8, 3], 0.1, OutputActivation::LinearOut, rng)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(1);
        let mut m = tiny(&mut rng);
        let x = uniform(5, 4, -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), (5, 3));
    }

    #[test]
    fn param_count() {
        let mut rng = seeded_rng(2);
        let m = tiny(&mut rng);
        // 4*8 + 8 + 8*3 + 3 = 67.
        assert_eq!(m.num_params(), 67);
        assert_eq!(m.architecture(), vec!["linear", "leaky_relu", "linear"]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut rng = seeded_rng(3);
        let mut a = tiny(&mut rng);
        let mut b = tiny(&mut rng); // different init
        let x = uniform(2, 4, -1.0, 1.0, &mut rng);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        b.restore(&a.snapshot());
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn wire_serialization_round_trip() {
        let mut rng = seeded_rng(4);
        let mut a = tiny(&mut rng);
        let mut b = tiny(&mut rng);
        let x = uniform(2, 4, -1.0, 1.0, &mut rng);
        b.weights_from_bytes(a.weights_to_bytes()).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn corrupted_wire_weights_rejected() {
        let mut rng = seeded_rng(5);
        let a = tiny(&mut rng);
        let mut b = tiny(&mut rng);
        let mut raw = a.weights_to_bytes().to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        assert!(b.weights_from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut rng = seeded_rng(6);
        let mut m = tiny(&mut rng);
        let x = uniform(3, 4, -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        m.backward(&Matrix::full(3, 3, 1.0));
        assert!(m.params().iter().any(|p| p.grad.max_abs() > 0.0));
        m.zero_grads();
        assert!(m.params().iter().all(|p| p.grad.max_abs() == 0.0));
        let _ = y;
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = seeded_rng(7);
        let mut m = tiny(&mut rng);
        let x = uniform(3, 4, -1.0, 1.0, &mut rng);
        let g = Matrix::full(3, 3, 0.5);
        m.forward(&x, true);
        m.backward(&g);
        let once: Vec<f32> = m.params().iter().map(|p| p.grad.sum()).collect();
        m.forward(&x, true);
        m.backward(&g);
        let twice: Vec<f32> = m.params().iter().map(|p| p.grad.sum()).collect();
        for (o, t) in once.iter().zip(&twice) {
            assert!(
                (t - 2.0 * o).abs() < 1e-4,
                "grad should accumulate: {o} -> {t}"
            );
        }
    }

    /// The workspace path must reproduce the allocating path bit for bit
    /// — outputs, input gradients AND parameter gradients — and stop
    /// allocating once the pool is warm.
    #[test]
    fn workspace_path_bit_identical_and_warm() {
        use crate::workspace::Workspace;
        let mut ra = seeded_rng(31);
        let mut rb = seeded_rng(31);
        let mut a = mlp(&[4, 8, 3], 0.1, OutputActivation::TanhOut, &mut ra);
        let mut b = mlp(&[4, 8, 3], 0.1, OutputActivation::TanhOut, &mut rb);
        let mut rx = seeded_rng(32);
        let x = uniform(5, 4, -1.0, 1.0, &mut rx);
        let target = uniform(5, 3, -1.0, 1.0, &mut rx);
        let mut ws = Workspace::new();
        let mut warm_misses = 0;
        for step in 0..4 {
            a.zero_grads();
            b.zero_grads();
            let ya = a.forward(&x, true);
            let g = ltfb_tensor::mean_squared_error_grad(&ya, &target);
            let da = a.backward(&g);
            let yb = b.forward_ws(&x, true, &mut ws);
            assert_eq!(ya, yb, "step {step}: forward drifted");
            let db = b.backward_ws(&g, &mut ws);
            assert_eq!(da, db, "step {step}: input grad drifted");
            ws.give(yb);
            ws.give(db);
            for (pa, pb) in a.params().iter().zip(b.params()) {
                assert_eq!(
                    pa.grad.as_slice(),
                    pb.grad.as_slice(),
                    "step {step}: param grad drifted"
                );
            }
            if step == 0 {
                warm_misses = ws.misses();
            }
        }
        assert!(ws.hits() > 0, "warm steps must hit the pool");
        assert_eq!(
            ws.misses(),
            warm_misses,
            "steady-state steps must not allocate new pool buffers"
        );
    }

    #[test]
    fn visit_params_matches_params_mut_order() {
        let mut rng = seeded_rng(33);
        let mut m = tiny(&mut rng);
        let expected: Vec<(usize, usize)> = m.params().iter().map(|p| p.value.shape()).collect();
        let mut visited = Vec::new();
        m.visit_params_mut(&mut |p| visited.push(p.value.shape()));
        assert_eq!(visited, expected);
    }

    /// End-to-end numerical gradient check through a 2-hidden-layer MLP
    /// with tanh output — validates the whole backward chain.
    #[test]
    fn full_model_gradcheck() {
        let mut rng = seeded_rng(8);
        // Smooth activations only: ReLU kinks turn central differences
        // into garbage near the kink at any finite eps.
        let mut m = Sequential::new(vec![
            Box::new(crate::layer::Linear::new(
                3,
                6,
                crate::layer::Init::Glorot,
                &mut rng,
            )),
            Box::new(crate::layer::Tanh::new()),
            Box::new(crate::layer::Linear::new(
                6,
                5,
                crate::layer::Init::Glorot,
                &mut rng,
            )),
            Box::new(crate::layer::Tanh::new()),
            Box::new(crate::layer::Linear::new(
                5,
                2,
                crate::layer::Init::Glorot,
                &mut rng,
            )),
            Box::new(crate::layer::Tanh::new()),
        ]);
        let x = uniform(4, 3, -0.8, 0.8, &mut rng);
        let target = uniform(4, 2, -0.8, 0.8, &mut rng);

        m.zero_grads();
        let y = m.forward(&x, true);
        let g = ltfb_tensor::mean_squared_error_grad(&y, &target);
        m.backward(&g);
        // Flatten analytic gradients and remember (param, local) layout.
        let analytic: Vec<f32> = m
            .params()
            .iter()
            .flat_map(|p| p.grad.as_slice().to_vec())
            .collect();
        let sizes: Vec<usize> = m.params().iter().map(|p| p.len()).collect();

        let nudge = |m: &mut Sequential, pi: usize, local: usize, delta: f32| {
            let mut params = m.params_mut();
            let v = params[pi].value.as_slice()[local];
            params[pi].value.as_mut_slice()[local] = v + delta;
        };
        let loss = |m: &mut Sequential| -> f32 {
            let y = m.forward(&x, true);
            ltfb_tensor::mean_squared_error(&y, &target)
        };

        let eps = 1e-2;
        let mut checked = 0;
        let mut offset = 0usize;
        for (pi, &plen) in sizes.iter().enumerate() {
            let stride = (plen / 3).max(1);
            for local in (0..plen).step_by(stride) {
                nudge(&mut m, pi, local, eps);
                let lp = loss(&mut m);
                nudge(&mut m, pi, local, -2.0 * eps);
                let lm = loss(&mut m);
                nudge(&mut m, pi, local, eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[offset + local];
                assert!(
                    (a - numeric).abs() < 3e-3,
                    "param {pi}[{local}]: analytic {a} vs numeric {numeric}"
                );
                checked += 1;
            }
            offset += plen;
        }
        assert!(
            checked >= 8,
            "gradcheck barely checked anything ({checked})"
        );
    }
}
