//! Optimizers: SGD with momentum and Adam (the paper trains the CycleGAN
//! with Adam, initial learning rate 1e-3, mini-batch 128).
//!
//! Optimizer state (momenta) is kept per parameter slot, indexed by the
//! deterministic order `Sequential::params_mut` yields, so an optimizer
//! follows "its" model across LTFB weight replacements (LBANN likewise
//! keeps optimizer state local through an exchange).

use crate::model::Sequential;
use crate::param::Param;
use ltfb_tensor::Matrix;

/// A first-order optimizer.
pub trait Optimizer: Send {
    /// Apply one update step given the parameters' accumulated gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (hyperparameter perturbation in LTFB
    /// populations).
    fn set_learning_rate(&mut self, lr: f32);

    /// Reset internal state (momenta), e.g. after receiving a foreign
    /// model whose loss surface location makes old momenta stale.
    fn reset_state(&mut self);
}

/// Stochastic gradient descent with classical momentum, optional decoupled
/// weight decay, and optional per-element gradient clipping.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    clip: Option<f32>,
    velocity: Vec<Matrix>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Decoupled weight decay (`w -= lr * wd * w` each step).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0);
        self.weight_decay = wd;
        self
    }

    /// Clip each gradient element into `[-c, c]` before the update.
    pub fn with_grad_clip(mut self, c: f32) -> Self {
        assert!(c > 0.0);
        self.clip = Some(c);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        let decay = self.lr * self.weight_decay;
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            debug_assert_eq!(p.value.shape(), v.shape());
            for ((w, g), vel) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(v.as_mut_slice())
            {
                let g = match self.clip {
                    Some(c) => g.clamp(-c, c),
                    None => *g,
                };
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel + decay * *w;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the paper's defaults: beta1 = 0.9, beta2 = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// [`Optimizer::step`] over a whole model without materialising the
    /// `params_mut` vector (the hot-path entry point). State layout,
    /// lazy (re)initialisation and the per-element update arithmetic are
    /// exactly those of `step`, so the two entry points are
    /// interchangeable mid-training and produce bit-identical weights.
    pub fn step_model(&mut self, model: &mut Sequential) {
        let mut count = 0usize;
        model.visit_params_mut(&mut |_| count += 1);
        if self.m.len() != count {
            self.m.clear();
            self.v.clear();
            let (m, v) = (&mut self.m, &mut self.v);
            model.visit_params_mut(&mut |p| {
                m.push(Matrix::zeros(p.value.rows(), p.value.cols()));
                v.push(Matrix::zeros(p.value.rows(), p.value.cols()));
            });
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params_mut(&mut |p| {
            for (((w, g), mi), vi) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m[idx].as_mut_slice())
                .zip(v[idx].as_mut_slice())
            {
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            for (((w, g), mi), vi) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = ||w - target||^2 with each optimizer; both must
    /// converge on this convex bowl.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let target = [1.0f32, -2.0, 0.5, 3.0];
        let mut p = Param::new(Matrix::zeros(1, 4));
        for _ in 0..400 {
            p.zero_grad();
            for (g, (w, t)) in p
                .grad
                .as_mut_slice()
                .iter_mut()
                .zip(p.value.as_slice().iter().zip(target.iter()))
            {
                *g = 2.0 * (w - t);
            }
            opt.step(&mut [&mut p]);
        }
        p.value
            .as_slice()
            .iter()
            .zip(target.iter())
            .map(|(w, t)| (w - t).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let err = converges(&mut Sgd::new(0.05, 0.9));
        assert!(err < 1e-3, "SGD residual {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let err = converges(&mut Adam::new(0.05));
        assert!(err < 1e-2, "Adam residual {err}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step has magnitude ~lr.
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.as_mut_slice()[0] = 0.5;
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        let w = p.value.as_slice()[0];
        assert!((w + 0.01).abs() < 1e-4, "first step {w}, expected ~ -lr");
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let grad_steps = |momentum: f32| {
            let mut p = Param::new(Matrix::zeros(1, 1));
            let mut opt = Sgd::new(0.1, momentum);
            for _ in 0..10 {
                p.zero_grad();
                p.grad.as_mut_slice()[0] = 1.0;
                opt.step(&mut [&mut p]);
            }
            -p.value.as_slice()[0]
        };
        assert!(grad_steps(0.9) > 2.0 * grad_steps(0.0));
    }

    #[test]
    fn set_learning_rate_takes_effect() {
        let mut opt = Sgd::new(0.1, 0.0);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.as_mut_slice()[0] = 1.0;
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.2).abs() < 1e-6);
    }

    #[test]
    fn reset_state_clears_momentum() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut p = Param::new(Matrix::zeros(1, 1));
        for _ in 0..5 {
            p.zero_grad();
            p.grad.as_mut_slice()[0] = 1.0;
            opt.step(&mut [&mut p]);
        }
        opt.reset_state();
        // Next step from zero grad must not move (no residual velocity).
        let before = p.value.as_slice()[0];
        p.zero_grad();
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], before);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Adam::new(0.0);
    }

    /// `step_model` is the hot-path twin of `step`: weights must match
    /// bit for bit over several updates, including the lazy state init.
    #[test]
    fn adam_step_model_bit_identical_to_step() {
        use crate::model::{mlp, OutputActivation};
        use ltfb_tensor::{seeded_rng, uniform};
        let mut ra = seeded_rng(51);
        let mut rb = seeded_rng(51);
        let mut a = mlp(&[3, 6, 2], 0.1, OutputActivation::LinearOut, &mut ra);
        let mut b = mlp(&[3, 6, 2], 0.1, OutputActivation::LinearOut, &mut rb);
        let mut opt_a = Adam::new(1e-2);
        let mut opt_b = Adam::new(1e-2);
        let mut rx = seeded_rng(52);
        let x = uniform(4, 3, -1.0, 1.0, &mut rx);
        let t = uniform(4, 2, -1.0, 1.0, &mut rx);
        for step in 0..5 {
            for m in [&mut a, &mut b] {
                m.zero_grads();
                let y = m.forward(&x, true);
                let g = ltfb_tensor::mean_squared_error_grad(&y, &t);
                m.backward(&g);
            }
            opt_a.step(&mut a.params_mut());
            opt_b.step_model(&mut b);
            for (pa, pb) in a.params().iter().zip(b.params()) {
                assert_eq!(
                    pa.value.as_slice(),
                    pb.value.as_slice(),
                    "step {step}: step_model drifted from step"
                );
            }
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = Param::new(Matrix::full(1, 2, 1.0));
        let mut opt = Sgd::new(0.1, 0.0).with_weight_decay(0.5);
        p.zero_grad();
        opt.step(&mut [&mut p]);
        // w -= lr * wd * w => 1 - 0.05 = 0.95.
        assert!(p.value.as_slice().iter().all(|&w| (w - 0.95).abs() < 1e-6));
    }

    #[test]
    fn grad_clip_bounds_the_update() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.as_mut_slice()[0] = 1000.0;
        let mut opt = Sgd::new(0.1, 0.0).with_grad_clip(1.0);
        opt.step(&mut [&mut p]);
        assert!(
            (p.value.as_slice()[0] + 0.1).abs() < 1e-6,
            "clipped step must be lr*1"
        );
    }

    #[test]
    fn decayed_sgd_still_converges() {
        let err = converges(
            &mut Sgd::new(0.05, 0.9)
                .with_weight_decay(1e-4)
                .with_grad_clip(10.0),
        );
        assert!(err < 2e-2, "decayed SGD residual {err}");
    }
}
