//! Gradient-bucket overlap: the nn half of backward/comm overlap.
//!
//! [`BucketPlan`] partitions a model's flat fused-gradient buffer into
//! size-bounded buckets of *consecutive layers*, built in reverse-layer
//! order — bucket 0 covers the **last** layers, whose gradients backward
//! produces first. [`OverlappedGradients`] is the drop-in overlap
//! counterpart of [`crate::dp::FusedGradients`]: instead of packing the
//! whole buffer after backward and running one blocking allreduce, each
//! layer's completion hook packs that layer's gradients immediately,
//! marks its bucket ready once the bucket's layers have all reported,
//! and polls the nonblocking [`NbAllreduce`] engine so reduction of the
//! late layers rides under the compute of the early ones.
//!
//! Bit-identity: the flat buffer layout (forward-layer packing order),
//! the 1/n scale, and the unpack are exactly `FusedGradients::allreduce`;
//! the engine executes the exact `allreduce_f32_chunked` schedule. The
//! only thing overlap changes is *when* sends/folds happen — gated by a
//! suffix watermark that is sound because buckets complete suffix-first.

use crate::layer::Layer;
use crate::model::Sequential;
use ltfb_comm::{Comm, NbAllreduce, ReduceOp};
use ltfb_hotpath::hot_path;
use std::time::{Duration, Instant};

/// Default bucket bound, in f32 elements (not bytes). Small enough that
/// the LTFB surrogate nets split into several buckets, large enough that
/// per-bucket overhead stays negligible.
pub const DEFAULT_BUCKET_ELEMS: usize = 4096;

/// One gradient bucket: consecutive layers `first_layer..=last_layer`
/// (forward indices) occupying `lo..hi` of the flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    pub first_layer: usize,
    pub last_layer: usize,
    pub lo: usize,
    pub hi: usize,
}

/// Static partition of a model's gradients into reverse-layer-order,
/// size-bounded buckets over the flat fused buffer.
#[derive(Debug, Clone)]
pub struct BucketPlan {
    /// Per-layer flat range `layer_lo[i]..layer_hi[i]` (forward order).
    layer_lo: Vec<usize>,
    layer_hi: Vec<usize>,
    /// Which bucket each layer belongs to.
    bucket_of_layer: Vec<usize>,
    /// Buckets in readiness order: `buckets[0]` is the tail of the buffer
    /// (the deepest layers), `buckets.last()` starts at element 0.
    buckets: Vec<Bucket>,
    /// Total gradient elements.
    total: usize,
}

impl BucketPlan {
    /// Build the plan for `model` with at most `max_elems` gradient
    /// elements per bucket. Walking the layers back-to-front, each bucket
    /// absorbs preceding layers until adding the next param-bearing layer
    /// would exceed the bound; parameterless layers are free riders, and
    /// a single layer larger than the bound gets a bucket of its own (the
    /// bound caps *granularity*, it cannot split one tensor).
    pub fn build(model: &Sequential, max_elems: usize) -> BucketPlan {
        assert!(max_elems >= 1, "bucket bound must be positive");
        let layers = model.layers();
        let mut layer_lo = Vec::with_capacity(layers.len());
        let mut layer_hi = Vec::with_capacity(layers.len());
        let mut off = 0usize;
        for l in layers {
            layer_lo.push(off);
            let mut len = 0usize;
            l.visit_params(&mut |p| len += p.grad.len());
            off += len;
            layer_hi.push(off);
        }
        let total = off;

        let mut buckets = Vec::new();
        let mut bucket_of_layer = vec![0usize; layers.len()];
        let mut i = layers.len();
        while i > 0 {
            let last = i - 1;
            let mut first = last;
            let mut elems = layer_hi[last] - layer_lo[last];
            while first > 0 {
                let add = layer_hi[first - 1] - layer_lo[first - 1];
                if add > 0 && elems > 0 && elems + add > max_elems {
                    break;
                }
                elems += add;
                first -= 1;
            }
            for b in &mut bucket_of_layer[first..=last] {
                *b = buckets.len();
            }
            buckets.push(Bucket {
                first_layer: first,
                last_layer: last,
                lo: layer_lo[first],
                hi: layer_hi[last],
            });
            i = first;
        }

        BucketPlan {
            layer_lo,
            layer_hi,
            bucket_of_layer,
            buckets,
            total,
        }
    }

    /// Buckets in readiness (reverse-layer) order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total gradient elements covered.
    pub fn total_elems(&self) -> usize {
        self.total
    }

    /// Flat range of layer `i`'s gradients.
    pub fn layer_range(&self, i: usize) -> (usize, usize) {
        (self.layer_lo[i], self.layer_hi[i])
    }

    /// Bucket index owning layer `i`.
    pub fn bucket_of(&self, i: usize) -> usize {
        self.bucket_of_layer[i]
    }

    fn layers_in_bucket(&self, b: usize) -> usize {
        self.buckets
            .get(b)
            .map_or(0, |bk| bk.last_layer - bk.first_layer + 1)
    }
}

/// Backward-overlapped fused-gradient allreduce for one network.
///
/// Protocol per step: `begin` (arms the engine), one `layer_done` per
/// layer from the network's hooked backward (reverse order), optional
/// `poll`s while other work runs, then `finish` (drains the engine,
/// scales, unpacks). With a single-rank communicator everything is a
/// no-op, matching `FusedGradients`.
pub struct OverlappedGradients {
    buf: Vec<f32>,
    subchunks: usize,
    max_bucket_elems: usize,
    plan: Option<BucketPlan>,
    engine: Option<NbAllreduce>,
    /// Next bucket awaiting completion (buckets complete in order 0..).
    next_bucket: usize,
    /// Layers still to report in `next_bucket`.
    layers_left: usize,
    comm_wait: Duration,
    overlap_frac: f64,
}

impl Default for OverlappedGradients {
    fn default() -> Self {
        Self::new()
    }
}

impl OverlappedGradients {
    /// Defaults matching `FusedGradients::new()`'s pipeline depth.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_BUCKET_ELEMS, 4)
    }

    pub fn with_config(max_bucket_elems: usize, subchunks: usize) -> Self {
        assert!(subchunks >= 1, "need at least one sub-chunk");
        assert!(max_bucket_elems >= 1, "bucket bound must be positive");
        OverlappedGradients {
            buf: Vec::new(),
            subchunks,
            max_bucket_elems,
            plan: None,
            engine: None,
            next_bucket: 0,
            layers_left: 0,
            comm_wait: Duration::ZERO,
            overlap_frac: 0.0,
        }
    }

    /// The bucket plan (built lazily on first `begin`).
    pub fn plan(&self) -> Option<&BucketPlan> {
        self.plan.as_ref()
    }

    /// Capacity of the persistent staging buffer (0 until first use).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Arm the engine for one training step of `model`. No-op (engine
    /// stays disarmed) on a single-rank communicator.
    #[hot_path]
    pub fn begin(&mut self, model: &Sequential, comm: &Comm) {
        if comm.size() <= 1 {
            return;
        }
        if self.plan.is_none() {
            self.plan = Some(BucketPlan::build(model, self.max_bucket_elems));
        }
        let plan = self.plan.as_ref().unwrap();
        debug_assert_eq!(
            plan.total,
            model.num_params(),
            "model changed shape under a cached bucket plan"
        );
        self.buf.resize(plan.total, 0.0);
        self.engine = Some(comm.nb_allreduce_begin(plan.total, ReduceOp::Sum, self.subchunks));
        self.next_bucket = 0;
        self.layers_left = plan.layers_in_bucket(0);
    }

    /// Per-layer backward completion hook: pack layer `layer_idx`'s
    /// final gradients into the flat buffer, release its bucket if this
    /// was the bucket's last layer, and poll the engine. Must be called
    /// in reverse-layer order (what `backward_ws_hooked` produces).
    #[hot_path]
    pub fn layer_done(&mut self, layer_idx: usize, layer: &dyn Layer, comm: &Comm) {
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        let plan = self.plan.as_ref().expect("layer_done before begin");
        debug_assert_eq!(
            plan.bucket_of(layer_idx),
            self.next_bucket,
            "backward hooks arrived out of reverse-layer order"
        );
        let (mut off, hi) = plan.layer_range(layer_idx);
        let buf = &mut self.buf;
        layer.visit_params(&mut |p| {
            let len = p.grad.len();
            buf[off..off + len].copy_from_slice(p.grad.as_slice());
            off += len;
        });
        debug_assert_eq!(off, hi, "layer packed fewer grads than planned");

        self.layers_left -= 1;
        if self.layers_left == 0 {
            let b = &plan.buckets[self.next_bucket];
            engine.mark_ready(b.lo);
            self.next_bucket += 1;
            self.layers_left = plan.layers_in_bucket(self.next_bucket);
            // In flight = released buckets whose reduction hasn't
            // finished; the engine being done means zero.
            let inflight = if engine.is_done() {
                0
            } else {
                self.next_bucket
            };
            comm.record_bucket_ready(self.next_bucket as u64 - 1, inflight);
        }
        engine.poll(comm, &mut self.buf);
    }

    /// Drive comm progress while unrelated compute runs (e.g. another
    /// network's backward). Cheap no-op when disarmed or done.
    #[hot_path]
    pub fn poll(&mut self, comm: &Comm) {
        if let Some(engine) = self.engine.as_mut() {
            engine.poll(comm, &mut self.buf);
        }
    }

    /// Drain the engine, then scale by 1/n and unpack — the moment
    /// `FusedGradients::allreduce` would have returned. Records the
    /// blocking tail as comm wait and the pre-wait schedule fraction as
    /// the overlap fraction.
    #[hot_path]
    pub fn finish(&mut self, model: &mut Sequential, comm: &Comm) {
        let Some(mut engine) = self.engine.take() else {
            return;
        };
        let plan = self.plan.as_ref().expect("finish before begin");
        assert_eq!(
            self.next_bucket,
            plan.buckets.len(),
            "finish() before every bucket was released — a backward hook is missing"
        );
        self.overlap_frac = engine.progress();
        let started = Instant::now();
        engine.wait(comm, &mut self.buf);
        self.comm_wait += started.elapsed();
        let scale = 1.0 / comm.size() as f32;
        for g in &mut self.buf {
            *g *= scale;
        }
        let mut off = 0usize;
        let buf = &self.buf;
        model.visit_params_mut(&mut |p| {
            let len = p.grad.len();
            p.grad.as_mut_slice().copy_from_slice(&buf[off..off + len]);
            off += len;
        });
    }

    /// Comm wait accumulated by `finish` since the last take (the
    /// *blocking* tail only — overlapped comm costs nothing here).
    pub fn take_comm_wait(&mut self) -> Duration {
        std::mem::take(&mut self.comm_wait)
    }

    /// Fraction of the last step's allreduce schedule that completed
    /// before `finish` had to block, in `0..=1`.
    pub fn overlap_fraction(&self) -> f64 {
        self.overlap_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::FusedGradients;
    use crate::model::{mlp, OutputActivation};
    use ltfb_comm::run_world;
    use ltfb_tensor::{mix_seed, seeded_rng};

    fn test_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(mix_seed(&[7, seed]));
        mlp(&[5, 16, 12, 3], 0.1, OutputActivation::LinearOut, &mut rng)
    }

    fn seed_grads(m: &mut Sequential, rank: usize) {
        let mut k = 0u32;
        m.visit_params_mut(&mut |p| {
            for g in p.grad.as_mut_slice() {
                *g = ((rank as u32 * 131 + k) as f32 * 0.37).sin();
                k += 1;
            }
        });
    }

    /// Driving the engine through the hook protocol in reverse-layer
    /// order yields gradients bit-identical to FusedGradients.
    #[test]
    fn overlapped_bit_identical_to_fused() {
        run_world(4, |comm| {
            let mut reference = test_model(0);
            let mut overlapped = test_model(0);
            seed_grads(&mut reference, comm.rank());
            seed_grads(&mut overlapped, comm.rank());

            let mut fused = FusedGradients::with_subchunks(3);
            fused.allreduce(&mut reference, &comm);

            let mut ov = OverlappedGradients::with_config(64, 3);
            ov.begin(&overlapped, &comm);
            for i in (0..overlapped.layers().len()).rev() {
                let layer = &overlapped.layers()[i];
                ov.layer_done(i, layer.as_ref(), &comm);
            }
            ov.finish(&mut overlapped, &comm);

            for (a, b) in reference.params().iter().zip(overlapped.params()) {
                let ab: Vec<u32> = a.grad.as_slice().iter().map(|x| x.to_bits()).collect();
                let bb: Vec<u32> = b.grad.as_slice().iter().map(|x| x.to_bits()).collect();
                assert_eq!(ab, bb, "overlapped allreduce drifted from fused");
            }

            // Steady state: second step must not regrow the buffer.
            let cap = ov.capacity();
            seed_grads(&mut overlapped, comm.rank() + 1);
            ov.begin(&overlapped, &comm);
            for i in (0..overlapped.layers().len()).rev() {
                let layer = &overlapped.layers()[i];
                ov.layer_done(i, layer.as_ref(), &comm);
            }
            ov.finish(&mut overlapped, &comm);
            assert_eq!(ov.capacity(), cap, "overlap staging buffer reallocated");
            assert!(ov.take_comm_wait() > Duration::ZERO);
        });
    }

    /// Single-rank: the whole protocol is a no-op and grads survive.
    #[test]
    fn single_rank_overlap_is_noop() {
        run_world(1, |comm| {
            let mut m = test_model(0);
            seed_grads(&mut m, 0);
            let before: Vec<f32> = m
                .params()
                .iter()
                .flat_map(|p| p.grad.as_slice().to_vec())
                .collect();
            let mut ov = OverlappedGradients::new();
            ov.begin(&m, &comm);
            for i in (0..m.layers().len()).rev() {
                let layer = &m.layers()[i];
                ov.layer_done(i, layer.as_ref(), &comm);
            }
            ov.finish(&mut m, &comm);
            let after: Vec<f32> = m
                .params()
                .iter()
                .flat_map(|p| p.grad.as_slice().to_vec())
                .collect();
            assert_eq!(before, after);
            assert_eq!(ov.take_comm_wait(), Duration::ZERO);
        });
    }
}
