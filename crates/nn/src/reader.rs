//! Data readers: the component of a trainer that feeds mini-batches into
//! the model DAG. Supports the LTFB partitioning scheme — each trainer's
//! reader exposes a disjoint *silo* of the global dataset — and seeded
//! per-epoch shuffling.

use ltfb_tensor::{permutation, seeded_rng, Matrix, TensorRng};

/// An in-memory supervised dataset: row-aligned inputs and targets.
#[derive(Debug, Clone)]
pub struct InMemoryDataset {
    /// `n x d_in` inputs.
    pub inputs: Matrix,
    /// `n x d_out` targets.
    pub targets: Matrix,
}

impl InMemoryDataset {
    pub fn new(inputs: Matrix, targets: Matrix) -> Self {
        assert_eq!(inputs.rows(), targets.rows(), "inputs/targets row mismatch");
        InMemoryDataset { inputs, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguous `1/k` partition assigned to trainer `t` of `k`
    /// (LTFB data siloing). The last partition absorbs the remainder.
    pub fn partition(&self, t: usize, k: usize) -> InMemoryDataset {
        assert!(k > 0 && t < k, "partition {t} of {k} invalid");
        let per = self.len() / k;
        let start = t * per;
        let end = if t == k - 1 { self.len() } else { start + per };
        InMemoryDataset {
            inputs: self.inputs.slice_rows(start, end),
            targets: self.targets.slice_rows(start, end),
        }
    }
}

/// Mini-batch iterator with per-epoch seeded shuffling.
pub struct BatchReader {
    data: InMemoryDataset,
    mb: usize,
    epoch: u64,
    cursor: usize,
    order: Vec<usize>,
    seed: u64,
}

impl BatchReader {
    pub fn new(data: InMemoryDataset, mb: usize, seed: u64) -> Self {
        assert!(mb > 0, "mini-batch must be positive");
        let mut r = BatchReader {
            data,
            mb,
            epoch: 0,
            cursor: 0,
            order: Vec::new(),
            seed,
        };
        r.reshuffle();
        r
    }

    fn reshuffle(&mut self) {
        let mut rng: TensorRng = seeded_rng(self.seed ^ self.epoch.wrapping_mul(0x9E37_79B9));
        self.order = permutation(self.data.len(), &mut rng);
        self.cursor = 0;
    }

    /// Samples in the underlying (possibly partitioned) dataset.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Steps per epoch at this mini-batch size (last short batch counts).
    pub fn steps_per_epoch(&self) -> usize {
        self.data.len().div_ceil(self.mb)
    }

    /// Next mini-batch `(inputs, targets)`; crossing an epoch boundary
    /// reshuffles. The final batch of an epoch may be short.
    pub fn next_batch(&mut self) -> (Matrix, Matrix) {
        assert!(!self.data.is_empty(), "reader over an empty dataset");
        let end = (self.cursor + self.mb).min(self.data.len());
        let idx = &self.order[self.cursor..end];
        let batch = (
            self.data.inputs.gather_rows(idx),
            self.data.targets.gather_rows(idx),
        );
        self.cursor = end;
        if self.cursor >= self.data.len() {
            self.epoch += 1;
            self.reshuffle();
        }
        batch
    }

    /// [`Self::next_batch`] into caller-owned buffers: identical cursor
    /// advance, shuffling and row contents, but zero per-step allocation
    /// once `x`/`y` have their steady-state capacity. (The per-epoch
    /// reshuffle still allocates a permutation; that is amortised over
    /// the whole epoch.)
    pub fn next_batch_into(&mut self, x: &mut Matrix, y: &mut Matrix) {
        assert!(!self.data.is_empty(), "reader over an empty dataset");
        let end = (self.cursor + self.mb).min(self.data.len());
        let idx = &self.order[self.cursor..end];
        self.data.inputs.gather_rows_into(idx, x);
        self.data.targets.gather_rows_into(idx, y);
        self.cursor = end;
        if self.cursor >= self.data.len() {
            self.epoch += 1;
            self.reshuffle();
        }
    }

    /// Full-dataset pass in deterministic order (for evaluation).
    pub fn all(&self) -> (&Matrix, &Matrix) {
        (&self.data.inputs, &self.data.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize) -> InMemoryDataset {
        let inputs = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
        let targets = Matrix::from_fn(n, 1, |r, _| r as f32);
        InMemoryDataset::new(inputs, targets)
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let d = ds(10);
        let parts: Vec<_> = (0..3).map(|t| d.partition(t, 3)).collect();
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 4, "last absorbs remainder");
        let mut seen: Vec<f32> = parts
            .iter()
            .flat_map(|p| p.targets.as_slice().to_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn one_epoch_visits_every_sample_once() {
        let mut r = BatchReader::new(ds(10), 3, 7);
        let mut seen = Vec::new();
        for _ in 0..r.steps_per_epoch() {
            let (_, t) = r.next_batch();
            seen.extend_from_slice(t.as_slice());
        }
        assert_eq!(r.epoch(), 1);
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn batches_align_inputs_with_targets() {
        let mut r = BatchReader::new(ds(20), 4, 9);
        for _ in 0..10 {
            let (x, t) = r.next_batch();
            for row in 0..x.rows() {
                assert_eq!(x.row(row)[0], t.row(row)[0] * 2.0, "row misaligned");
            }
        }
    }

    #[test]
    fn epochs_use_different_shuffles_deterministically() {
        let collect_epoch = |r: &mut BatchReader| {
            let mut order = Vec::new();
            for _ in 0..r.steps_per_epoch() {
                order.extend_from_slice(r.next_batch().1.as_slice());
            }
            order
        };
        let mut a = BatchReader::new(ds(16), 4, 11);
        let e0 = collect_epoch(&mut a);
        let e1 = collect_epoch(&mut a);
        assert_ne!(e0, e1, "epoch shuffles should differ");
        // Same seed reproduces the same sequence.
        let mut b = BatchReader::new(ds(16), 4, 11);
        assert_eq!(collect_epoch(&mut b), e0);
        assert_eq!(collect_epoch(&mut b), e1);
    }

    #[test]
    fn short_final_batch() {
        let mut r = BatchReader::new(ds(10), 4, 3);
        assert_eq!(r.steps_per_epoch(), 3);
        assert_eq!(r.next_batch().0.rows(), 4);
        assert_eq!(r.next_batch().0.rows(), 4);
        assert_eq!(r.next_batch().0.rows(), 2);
    }

    #[test]
    fn different_trainers_see_different_data() {
        let d = ds(100);
        let r0 = BatchReader::new(d.partition(0, 4), 8, 1);
        let r1 = BatchReader::new(d.partition(1, 4), 8, 1);
        let (x0, _) = r0.all();
        let (x1, _) = r1.all();
        assert_ne!(x0.as_slice(), x1.as_slice());
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn misaligned_dataset_rejected() {
        let _ = InMemoryDataset::new(Matrix::zeros(3, 2), Matrix::zeros(4, 1));
    }
}
