//! Training metrics: running averages and loss-history tracking used by
//! the experiment drivers and the Fig. 12/13 harnesses.

/// Numerically stable running mean over a stream of values.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn update(&mut self, v: f32) {
        self.count += 1;
        self.mean += (v as f64 - self.mean) / self.count as f64;
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Drop accumulated state (start of a new epoch).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Loss trajectory of a training run: `(step, value)` pairs recorded at a
/// fixed cadence, the raw material of Figs. 12 and 13.
#[derive(Debug, Clone, Default)]
pub struct LossHistory {
    points: Vec<(u64, f32)>,
}

impl LossHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the loss at `step`.
    pub fn record(&mut self, step: u64, loss: f32) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(step >= last, "loss history must be recorded in step order");
        }
        self.points.push((step, loss));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(u64, f32)] {
        &self.points
    }

    /// Final recorded loss.
    pub fn last(&self) -> Option<f32> {
        self.points.last().map(|&(_, l)| l)
    }

    /// Loss at or before `step` (for aligning runs of different cadence).
    pub fn at_step(&self, step: u64) -> Option<f32> {
        self.points
            .iter()
            .rev()
            .find(|&&(s, _)| s <= step)
            .map(|&(_, l)| l)
    }

    /// Best (minimum) loss seen.
    pub fn best(&self) -> Option<f32> {
        self.points.iter().map(|&(_, l)| l).min_by(f32::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_matches_arithmetic_mean() {
        let vals = [2.0f32, 4.0, 6.0, 8.0];
        let mut m = RunningMean::new();
        for v in vals {
            m.update(v);
        }
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.count(), 4);
        m.reset();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn running_mean_stable_for_many_updates() {
        let mut m = RunningMean::new();
        for _ in 0..1_000_000 {
            m.update(0.1);
        }
        assert!((m.mean() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn history_queries() {
        let mut h = LossHistory::new();
        h.record(0, 1.0);
        h.record(100, 0.5);
        h.record(200, 0.7);
        assert_eq!(h.last(), Some(0.7));
        assert_eq!(h.best(), Some(0.5));
        assert_eq!(h.at_step(150), Some(0.5));
        assert_eq!(h.at_step(0), Some(1.0));
        assert_eq!(h.at_step(500), Some(0.7));
        assert_eq!(LossHistory::new().at_step(5), None);
    }

    #[test]
    #[should_panic(expected = "step order")]
    fn history_rejects_out_of_order() {
        let mut h = LossHistory::new();
        h.record(10, 1.0);
        h.record(5, 0.5);
    }
}
