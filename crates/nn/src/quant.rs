//! Int8 row-quantized inference for [`Sequential`] models.
//!
//! [`QuantSequential::quantize`] converts an f32 MLP into per-layer
//! [`QuantizedWeights`] (symmetric per-output-column int8) captured
//! together with the f32 bias and the fused [`Activation`] epilogue.
//! Inference quantizes each layer's activations per call (affine u8 per
//! row) and runs [`matmul_q8`], dequantizing straight into the f32
//! activation — the same fused-epilogue shape as the f32 path.
//!
//! Accuracy is not taken on faith: [`QuantSequential::infer_bounded`]
//! propagates an analytic worst-case output error alongside the result
//! (per-layer quantization bound from [`q8_preact_error_bound`], carried
//! through each layer's Lipschitz constant and the next layer's column
//! mass). The serve path asserts the realised error against this bound
//! when it publishes a quantized model.

use crate::model::Sequential;
use ltfb_tensor::{
    matmul_q8, q8_preact_error_bound, quantize_rows, quantize_weights, Activation, Matrix,
    QuantizeError, QuantizedWeights, MAX_Q8_K,
};

/// Why a [`Sequential`] could not be quantized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A weight matrix contained NaN/Inf (or a layer was too wide for
    /// the i32 accumulator). Quantizing would silently corrupt values
    /// that the f32 path faithfully propagates.
    Weights(QuantizeError),
    /// The model contains a layer the int8 path has no lowering for.
    Unsupported(&'static str),
    /// A linear layer's fan-in exceeds [`MAX_Q8_K`], risking i32
    /// accumulator overflow in `matmul_q8`.
    TooWide { fan_in: usize },
}

impl core::fmt::Display for QuantError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuantError::Weights(e) => write!(f, "quantize: {e}"),
            QuantError::Unsupported(name) => {
                write!(f, "quantize: no int8 lowering for layer '{name}'")
            }
            QuantError::TooWide { fan_in } => write!(
                f,
                "quantize: fan-in {fan_in} exceeds MAX_Q8_K={MAX_Q8_K} (i32 accumulator)"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

impl From<QuantizeError> for QuantError {
    fn from(e: QuantizeError) -> Self {
        QuantError::Weights(e)
    }
}

/// One fused int8 layer: `act(x @ W + b)` with int8 `W`.
struct QuantLayer {
    weights: QuantizedWeights,
    bias: Matrix,
    act: Activation,
}

/// An int8-weight snapshot of a [`Sequential`], inference-only.
///
/// Holds no optimizer state and shares nothing with the source model:
/// publishing a new f32 model requires re-quantizing.
pub struct QuantSequential {
    layers: Vec<QuantLayer>,
}

impl QuantSequential {
    /// Quantize `model`'s weights. Supported layers: [`crate::Linear`]
    /// (optionally followed by a pure activation, which fuses into the
    /// epilogue) and dropout (identity at inference). Anything else
    /// yields [`QuantError::Unsupported`]; non-finite weights or
    /// over-wide layers are rejected rather than silently clamped.
    pub fn quantize(model: &Sequential) -> Result<Self, QuantError> {
        let mut layers = Vec::new();
        let src = model.layers();
        let mut i = 0;
        while i < src.len() {
            let l = &src[i];
            if let Some(lin) = l.as_linear() {
                if lin.fan_in() > MAX_Q8_K {
                    return Err(QuantError::TooWide {
                        fan_in: lin.fan_in(),
                    });
                }
                let weights = quantize_weights(lin.weight())?;
                // Fuse a directly following pure activation, exactly
                // like the f32 `Sequential::infer` peephole.
                let act = src
                    .get(i + 1)
                    .and_then(|next| next.fused_activation())
                    .inspect(|_| i += 1)
                    .unwrap_or(Activation::Identity);
                layers.push(QuantLayer {
                    weights,
                    bias: lin.bias().clone(),
                    act,
                });
            } else if l.fused_activation().is_some() {
                // A bare activation (not preceded by Linear) has no GEMM
                // to fuse into; the MLPs this repo builds never produce
                // one, and supporting it would need an elementwise int8
                // op for no caller. Reject loudly instead.
                return Err(QuantError::Unsupported(l.name()));
            } else if l.name() == "dropout" {
                // Inverted dropout is the identity at inference.
            } else {
                return Err(QuantError::Unsupported(l.name()));
            }
            i += 1;
        }
        Ok(QuantSequential { layers })
    }

    /// Number of fused int8 layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Int8 inference. Output differs from the f32 [`Sequential::infer`]
    /// by at most the bound reported by [`Self::infer_bounded`].
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.infer_bounded(x).0
    }

    /// Int8 inference plus the analytic worst-case absolute error of the
    /// output versus the f32 model, for this input.
    ///
    /// Per layer: the fresh quantization error is
    /// [`q8_preact_error_bound`]; error `e` carried in from the previous
    /// layer passes through the int8 GEMM with gain at most the largest
    /// column absolute mass of the (quantized) weights. The activation
    /// then contracts by its Lipschitz constant. NaN activations make
    /// the bound NaN — the caller sees "no finite guarantee", which is
    /// exactly right because non-finite rows poison the output row.
    pub fn infer_bounded(&self, x: &Matrix) -> (Matrix, f32) {
        self.infer_bounded_carry(x, 0.0)
    }

    /// [`Self::infer_bounded`] with an error `err_in` already attached to
    /// `x` (e.g. from an upstream quantized network whose output feeds
    /// this one). The carried error composes through the first layer the
    /// same way inter-layer error does, so chained networks get one
    /// end-to-end bound.
    pub fn infer_bounded_carry(&self, x: &Matrix, err_in: f32) -> (Matrix, f32) {
        let mut h = x.clone();
        let mut err = err_in;
        for l in &self.layers {
            let qa = quantize_rows(&h);
            let fresh = q8_preact_error_bound(&qa, &l.weights);
            let carried = err * l.weights.max_col_abs_sum();
            err = l.act.lipschitz() * (fresh + carried);
            let mut y = Matrix::zeros(h.rows(), l.weights.out_dim());
            matmul_q8(&qa, &l.weights, l.bias.as_slice(), l.act, &mut y);
            h = y;
        }
        (h, err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{mlp, OutputActivation};
    use ltfb_tensor::{seeded_rng, uniform};

    #[test]
    fn quantized_mlp_stays_within_reported_bound() {
        let mut rng = seeded_rng(7);
        for out in [
            OutputActivation::LinearOut,
            OutputActivation::TanhOut,
            OutputActivation::SigmoidOut,
        ] {
            let model = mlp(&[12, 24, 16, 5], 0.1, out, &mut rng);
            let q = QuantSequential::quantize(&model).expect("quantizable");
            assert_eq!(q.num_layers(), 3);
            let x = uniform(9, 12, -2.0, 2.0, &mut rng);
            let f32_out = model.infer(&x);
            let (q_out, bound) = q.infer_bounded(&x);
            assert_eq!(q_out.shape(), f32_out.shape());
            assert!(bound.is_finite() && bound > 0.0);
            let worst = q_out
                .as_slice()
                .iter()
                .zip(f32_out.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                worst <= bound * 1.05 + 1e-4,
                "realised {worst} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        let mut rng = seeded_rng(8);
        let mut model = mlp(&[4, 6, 2], 0.1, OutputActivation::LinearOut, &mut rng);
        model.params_mut()[0].value.as_mut_slice()[3] = f32::INFINITY;
        assert!(matches!(
            QuantSequential::quantize(&model),
            Err(QuantError::Weights(_))
        ));
    }

    #[test]
    fn quantized_output_close_to_f32_for_small_net() {
        let mut rng = seeded_rng(9);
        let model = mlp(&[8, 16, 4], 0.05, OutputActivation::TanhOut, &mut rng);
        let q = QuantSequential::quantize(&model).unwrap();
        let x = uniform(5, 8, -1.0, 1.0, &mut rng);
        let a = model.infer(&x);
        let b = q.infer(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 0.2, "int8 drifted: {u} vs {v}");
        }
    }
}
