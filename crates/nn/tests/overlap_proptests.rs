//! Property tests for the gradient-bucket partitioner: for any model
//! shape and any bucket bound, the plan must (a) cover every gradient
//! element exactly once, (b) respect the size bound except for single
//! oversized layers, and (c) release buckets in reverse-layer order
//! (suffix-first over the flat buffer) — the invariant the overlap
//! engine's readiness watermark depends on.

use ltfb_nn::{mlp, BucketPlan, OutputActivation, Sequential};
use ltfb_tensor::{mix_seed, seeded_rng};
use proptest::prelude::*;

fn model_from(widths: &[usize], seed: u64) -> Sequential {
    let mut rng = seeded_rng(mix_seed(&[11, seed]));
    mlp(widths, 0.1, OutputActivation::LinearOut, &mut rng)
}

/// Strategy: 2–5 layer widths in 1..=24 plus a bucket bound and a seed.
fn plan_inputs() -> impl Strategy<Value = (Vec<usize>, usize, u64)> {
    (
        proptest::collection::vec(1usize..=24, 2..6),
        1usize..=600,
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every gradient element is covered by exactly one bucket, buckets
    /// tile the flat buffer contiguously, and walking buckets in
    /// readiness order walks the buffer as a shrinking suffix.
    #[test]
    fn buckets_cover_exactly_and_suffix_first((widths, max_elems, seed) in plan_inputs()) {
        let model = model_from(&widths, seed);
        let plan = BucketPlan::build(&model, max_elems);
        let total = plan.total_elems();
        prop_assert_eq!(total, model.num_params());

        // Readiness order = reverse layer order = shrinking suffix.
        let mut expect_hi = total;
        for b in plan.buckets() {
            prop_assert_eq!(b.hi, expect_hi, "bucket ranges must tile back-to-front");
            prop_assert!(b.lo <= b.hi);
            prop_assert!(b.first_layer <= b.last_layer);
            expect_hi = b.lo;
        }
        prop_assert_eq!(expect_hi, 0, "buckets must cover down to element 0");

        // Layer ranges partition [0, total) and agree with bucket_of.
        let mut covered = vec![0u8; total];
        for i in 0..model.layers().len() {
            let (lo, hi) = plan.layer_range(i);
            for c in &mut covered[lo..hi] {
                *c += 1;
            }
            let b = plan.bucket_of(i);
            prop_assert!(plan.buckets()[b].lo <= lo && hi <= plan.buckets()[b].hi,
                "layer {} range outside its bucket", i);
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "element covered != once");
    }

    /// The size bound holds for every bucket containing more than one
    /// param-bearing layer; an over-bound bucket is only legal when a
    /// single layer alone exceeds the bound.
    #[test]
    fn bucket_size_bound_respected((widths, max_elems, seed) in plan_inputs()) {
        let model = model_from(&widths, seed);
        let plan = BucketPlan::build(&model, max_elems);
        for b in plan.buckets() {
            let elems = b.hi - b.lo;
            if elems > max_elems {
                // Must be a lone oversized layer (plus free-riding
                // parameterless layers contributing zero elements).
                let mut nonzero_layers = 0;
                let mut biggest = 0;
                for i in b.first_layer..=b.last_layer {
                    let (lo, hi) = plan.layer_range(i);
                    if hi > lo {
                        nonzero_layers += 1;
                        biggest = biggest.max(hi - lo);
                    }
                }
                prop_assert_eq!(nonzero_layers, 1,
                    "over-bound bucket must hold exactly one param layer");
                prop_assert!(biggest > max_elems);
            }
        }
    }

    /// Bucket count is monotone: a smaller bound never yields fewer
    /// buckets, and a bound >= total yields exactly one bucket.
    #[test]
    fn bound_extremes((widths, max_elems, seed) in plan_inputs()) {
        let model = model_from(&widths, seed);
        let fine = BucketPlan::build(&model, max_elems).buckets().len();
        let coarse = BucketPlan::build(&model, model.num_params().max(1)).buckets().len();
        prop_assert_eq!(coarse, 1);
        prop_assert!(fine >= coarse);
    }
}
