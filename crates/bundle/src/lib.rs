//! # ltfb-bundle
//!
//! The on-disk sample-bundle subsystem: a self-describing binary shard
//! format plus a memory-mapped reader handing out **zero-copy `&[f32]`
//! sample views** — the storage layer that lets the data store scale past
//! RAM (the paper's 10M-sample/2TB JAG corpus never fits one node).
//!
//! * [`header`] — the fixed `magic | version | len | crc` artifact header
//!   shared by every binary format in the workspace (checkpoints import
//!   it from here);
//! * [`schema`] — schema descriptors for arbitrary named tensor shapes,
//!   so one shard format serves JAG and any future surrogate dataset;
//! * [`shard`]  — the shard codec itself: [`shard::ShardWriter`] appends
//!   fixed-stride records with per-record checksums (streaming ingest
//!   needs append without rewriting a trailing file CRC), and
//!   [`shard::MmapShard`] maps a shard and serves samples as `&[f32]`
//!   borrows of the mapping.

#![forbid(unsafe_code)]

pub mod header;
pub mod schema;
pub mod shard;

pub use header::{CheckpointError, CheckpointHeader};
pub use schema::{BundleSchema, TensorField};
pub use shard::{MmapShard, ShardWriter, SHARD_MAGIC, SHARD_VERSION};
