//! The bundle-shard codec: append-only fixed-stride records behind a
//! self-describing header, read back through a memory mapping.
//!
//! Layout (little-endian):
//!
//! ```text
//! header   20 B   CheckpointHeader { "LTBS", version, schema_len, crc32(schema) }
//! schema   var    BundleSchema descriptor (see `schema` module)
//! pad      0–3 B  zeros, so the data region is 4-byte aligned
//! records  n ×    { id u64 | payload_crc u32 | payload record_len × f32 }
//! ```
//!
//! Design points, all driven by the out-of-core store:
//!
//! * **per-record CRCs, no trailing file CRC** — a shard stays valid
//!   under `O_APPEND`-style streaming ingest; a whole-payload checksum
//!   (as in the legacy `.jagb` format) would need rewriting on every
//!   append;
//! * **fixed stride** — sample `i` lives at a computable offset, so a
//!   mapped shard serves `&[f32]` views with zero per-fetch I/O or
//!   deserialisation;
//! * **ids in the record header** — ingest shards carry arbitrary global
//!   ids (fresh samples get ids past the base corpus), so the reader
//!   indexes `id → record` at map time instead of assuming density.

use crate::header::{CheckpointError, CheckpointHeader, HEADER_BYTES};
use crate::schema::BundleSchema;
use ltfb_tensor::crc32;
use memmap2::Mmap;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// `"LTBS"` — LTfb Bundle Shard.
pub const SHARD_MAGIC: u32 = 0x4C54_4253;
/// Bump on any layout change (enforced by lint rule LA005's convention).
pub const SHARD_VERSION: u32 = 1;

/// Bytes before the payload within one record (`id u64 | crc u32`).
const RECORD_HEADER_BYTES: usize = 12;

fn data_offset(schema_len: usize) -> usize {
    let unaligned = HEADER_BYTES + schema_len;
    unaligned + (4 - unaligned % 4) % 4
}

fn record_stride(schema: &BundleSchema) -> usize {
    RECORD_HEADER_BYTES + schema.record_bytes()
}

/// Append-only shard writer (creation and streaming ingest).
pub struct ShardWriter {
    file: BufWriter<File>,
    path: PathBuf,
    schema: BundleSchema,
    count: usize,
    bytes_written: u64,
}

impl ShardWriter {
    /// Create (truncating) a shard at `path` with the given schema.
    pub fn create(path: &Path, schema: BundleSchema) -> Result<ShardWriter, CheckpointError> {
        let mut file = BufWriter::new(File::create(path)?);
        let body = schema.encode();
        CheckpointHeader::for_body(SHARD_MAGIC, SHARD_VERSION, &body).write_to(&mut file)?;
        file.write_all(&body)?;
        let pad = data_offset(body.len()) - HEADER_BYTES - body.len();
        file.write_all(&[0u8; 3][..pad])?;
        file.flush()?;
        Ok(ShardWriter {
            file,
            path: path.to_path_buf(),
            schema,
            count: 0,
            bytes_written: 0,
        })
    }

    /// Re-open an existing shard for appending. The on-disk schema must
    /// match `schema` exactly, and the existing tail must be whole
    /// records.
    pub fn open_append(path: &Path, schema: BundleSchema) -> Result<ShardWriter, CheckpointError> {
        let existing = MmapShard::open(path)?;
        if existing.schema() != &schema {
            return Err(CheckpointError::ConfigMismatch(format!(
                "shard schema on disk differs from the writer's ({} vs {} fields)",
                existing.schema().fields.len(),
                schema.fields.len()
            )));
        }
        let count = existing.len();
        let file = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok(ShardWriter {
            file,
            path: path.to_path_buf(),
            schema,
            count,
            bytes_written: 0,
        })
    }

    /// Append one record. `payload` must be exactly one record long.
    pub fn append(&mut self, id: u64, payload: &[f32]) -> Result<(), CheckpointError> {
        if payload.len() != self.schema.record_len() {
            return Err(CheckpointError::ConfigMismatch(format!(
                "record payload has {} f32s, schema says {}",
                payload.len(),
                self.schema.record_len()
            )));
        }
        let mut raw = Vec::with_capacity(payload.len() * 4);
        for &v in payload {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.file.write_all(&id.to_le_bytes())?;
        self.file.write_all(&crc32(&raw).to_le_bytes())?;
        self.file.write_all(&raw)?;
        self.count += 1;
        self.bytes_written += (RECORD_HEADER_BYTES + raw.len()) as u64;
        Ok(())
    }

    /// Flush buffered records to the file system — a reader re-mapping
    /// the shard sees everything appended before the flush.
    pub fn flush(&mut self) -> Result<(), CheckpointError> {
        self.file.flush()?;
        Ok(())
    }

    /// Records in the shard (pre-existing plus appended).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Payload + record-header bytes appended by this writer.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn schema(&self) -> &BundleSchema {
        &self.schema
    }
}

/// A memory-mapped shard serving zero-copy `&[f32]` sample views.
pub struct MmapShard {
    mmap: Mmap,
    path: PathBuf,
    schema: BundleSchema,
    data_off: usize,
    /// Record ids in record order (`ids[i]` is record `i`).
    ids: Vec<u64>,
    index: HashMap<u64, usize>,
    /// Strict mode refuses a partial tail record; streaming mode (the
    /// ingest reader) exposes only the complete prefix.
    strict: bool,
}

impl MmapShard {
    /// Map a shard, requiring the tail to be whole records.
    pub fn open(path: &Path) -> Result<MmapShard, CheckpointError> {
        Self::open_mode(path, true)
    }

    /// Map a shard that a writer may still be appending to: a partial
    /// tail record is not an error, it is simply not visible yet.
    pub fn open_streaming(path: &Path) -> Result<MmapShard, CheckpointError> {
        Self::open_mode(path, false)
    }

    fn open_mode(path: &Path, strict: bool) -> Result<MmapShard, CheckpointError> {
        let mmap = Mmap::map_path(path)?;
        let mut shard = MmapShard {
            mmap,
            path: path.to_path_buf(),
            schema: BundleSchema::new(vec![]),
            data_off: 0,
            ids: Vec::new(),
            index: HashMap::new(),
            strict,
        };
        shard.decode_layout()?;
        Ok(shard)
    }

    fn decode_layout(&mut self) -> Result<(), CheckpointError> {
        let raw: &[u8] = &self.mmap;
        let head: [u8; HEADER_BYTES] = raw
            .get(..HEADER_BYTES)
            .and_then(|s| s.try_into().ok())
            .ok_or(CheckpointError::Truncated)?;
        let header = CheckpointHeader::decode(&head, SHARD_MAGIC, SHARD_VERSION)?;
        let schema_len = header.body_len as usize;
        let body = raw
            .get(HEADER_BYTES..HEADER_BYTES + schema_len)
            .ok_or(CheckpointError::Truncated)?;
        if crc32(body) != header.crc {
            return Err(CheckpointError::BadChecksum);
        }
        self.schema = BundleSchema::decode(body)?;
        self.data_off = data_offset(schema_len);
        if raw.len() < self.data_off {
            return Err(CheckpointError::Truncated);
        }
        let stride = record_stride(&self.schema);
        let data_len = raw.len() - self.data_off;
        if self.strict && !data_len.is_multiple_of(stride) {
            return Err(CheckpointError::Truncated);
        }
        let n = data_len / stride;
        self.ids.clear();
        self.index.clear();
        self.ids.reserve(n);
        for i in 0..n {
            let off = self.data_off + i * stride;
            let id_raw: [u8; 8] = raw
                .get(off..off + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or(CheckpointError::Truncated)?;
            let id = u64::from_le_bytes(id_raw);
            self.ids.push(id);
            self.index.insert(id, i);
        }
        Ok(())
    }

    /// Re-map the file, picking up records appended (and flushed) since
    /// the last map. Header and schema must be unchanged.
    pub fn refresh(&mut self) -> Result<(), CheckpointError> {
        let schema_before = self.schema.clone();
        self.mmap = Mmap::map_path(&self.path)?;
        self.decode_layout()?;
        if self.schema != schema_before {
            return Err(CheckpointError::ConfigMismatch(
                "shard schema changed under an open reader".into(),
            ));
        }
        Ok(())
    }

    /// Complete records visible in the mapping.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Record ids in record order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Record index of global id `id`, if present.
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.index.get(&id).copied()
    }

    pub fn schema(&self) -> &BundleSchema {
        &self.schema
    }

    /// Bytes this mapping spans.
    pub fn bytes_mapped(&self) -> u64 {
        self.mmap.len() as u64
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Zero-copy view of record `idx`'s full payload, after verifying
    /// its checksum against the record header. Every failure is typed;
    /// this never panics on disk corruption.
    pub fn sample(&self, idx: usize) -> Result<&[f32], CheckpointError> {
        let stride = record_stride(&self.schema);
        if idx >= self.ids.len() {
            return Err(CheckpointError::ConfigMismatch(format!(
                "record {idx} out of range 0..{}",
                self.ids.len()
            )));
        }
        let off = self.data_off + idx * stride;
        let raw: &[u8] = &self.mmap;
        let crc_raw: [u8; 4] = raw
            .get(off + 8..off + 12)
            .and_then(|s| s.try_into().ok())
            .ok_or(CheckpointError::Truncated)?;
        let payload = raw
            .get(off + RECORD_HEADER_BYTES..off + stride)
            .ok_or(CheckpointError::Truncated)?;
        if crc32(payload) != u32::from_le_bytes(crc_raw) {
            return Err(CheckpointError::BadChecksum);
        }
        self.mmap
            .as_f32s(off + RECORD_HEADER_BYTES, self.schema.record_len())
            .ok_or(CheckpointError::Truncated)
    }

    /// [`MmapShard::sample`] addressed by global id.
    pub fn sample_by_id(&self, id: u64) -> Result<Option<&[f32]>, CheckpointError> {
        match self.index_of(id) {
            Some(idx) => Ok(Some(self.sample(idx)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TensorField;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ltbs-shard-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn schema() -> BundleSchema {
        BundleSchema::new(vec![
            TensorField::new("a", vec![3]),
            TensorField::new("b/c", vec![2, 2]),
        ])
    }

    fn payload(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (seed * 31 + i as u64) as f32 * 0.5)
            .collect()
    }

    #[test]
    fn write_then_mmap_views_bit_exact() {
        let p = temp_path("rt");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        for id in [7u64, 3, 99] {
            w.append(id, &payload(id, s.record_len())).unwrap();
        }
        w.flush().unwrap();
        let shard = MmapShard::open(&p).unwrap();
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.ids(), &[7, 3, 99]);
        assert_eq!(shard.schema(), &s);
        for id in [7u64, 3, 99] {
            let view = shard.sample_by_id(id).unwrap().unwrap();
            assert_eq!(view, &payload(id, s.record_len())[..], "id {id}");
        }
        assert!(shard.sample_by_id(1).unwrap().is_none());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn append_reopen_and_refresh() {
        let p = temp_path("append");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        w.append(0, &payload(0, s.record_len())).unwrap();
        w.flush().unwrap();

        let mut reader = MmapShard::open_streaming(&p).unwrap();
        assert_eq!(reader.len(), 1);

        let mut w2 = ShardWriter::open_append(&p, s.clone()).unwrap();
        assert_eq!(w2.count(), 1);
        w2.append(1, &payload(1, s.record_len())).unwrap();
        w2.append(2, &payload(2, s.record_len())).unwrap();
        w2.flush().unwrap();

        // Snapshot semantics: invisible until refresh.
        assert_eq!(reader.len(), 1);
        reader.refresh().unwrap();
        assert_eq!(reader.len(), 3);
        assert_eq!(
            reader.sample_by_id(2).unwrap().unwrap(),
            &payload(2, s.record_len())[..]
        );
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn partial_tail_streaming_vs_strict() {
        let p = temp_path("tail");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        w.append(0, &payload(0, s.record_len())).unwrap();
        w.append(1, &payload(1, s.record_len())).unwrap();
        w.flush().unwrap();
        // Chop mid-record.
        let raw = std::fs::read(&p).unwrap();
        std::fs::write(&p, &raw[..raw.len() - 5]).unwrap();
        assert!(matches!(
            MmapShard::open(&p),
            Err(CheckpointError::Truncated)
        ));
        let streaming = MmapShard::open_streaming(&p).unwrap();
        assert_eq!(streaming.len(), 1, "only the complete record is visible");
        assert_eq!(
            streaming.sample(0).unwrap(),
            &payload(0, s.record_len())[..]
        );
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupt_record_crc_is_typed_on_read() {
        let p = temp_path("crc");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        w.append(0, &payload(0, s.record_len())).unwrap();
        w.append(1, &payload(1, s.record_len())).unwrap();
        w.flush().unwrap();
        let mut raw = std::fs::read(&p).unwrap();
        let last = raw.len() - 1; // inside record 1's payload
        raw[last] ^= 0xFF;
        std::fs::write(&p, &raw).unwrap();
        let shard = MmapShard::open(&p).unwrap();
        assert!(shard.sample(0).is_ok(), "record 0 untouched");
        assert!(matches!(shard.sample(1), Err(CheckpointError::BadChecksum)));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn wrong_magic_and_schema_mismatch_rejected() {
        let p = temp_path("magic");
        std::fs::write(&p, vec![0u8; 64]).unwrap();
        assert!(matches!(
            MmapShard::open(&p),
            Err(CheckpointError::BadMagic(0))
        ));
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        w.append(0, &payload(0, s.record_len())).unwrap();
        w.flush().unwrap();
        let other = BundleSchema::new(vec![TensorField::new("z", vec![1])]);
        assert!(matches!(
            ShardWriter::open_append(&p, other),
            Err(CheckpointError::ConfigMismatch(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn wrong_payload_len_refused_by_writer() {
        let p = temp_path("len");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        assert!(matches!(
            w.append(0, &[1.0, 2.0]),
            Err(CheckpointError::ConfigMismatch(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_shard_round_trips() {
        let p = temp_path("empty");
        let s = schema();
        let mut w = ShardWriter::create(&p, s.clone()).unwrap();
        w.flush().unwrap();
        let shard = MmapShard::open(&p).unwrap();
        assert!(shard.is_empty());
        assert_eq!(shard.schema(), &s);
        std::fs::remove_file(&p).unwrap();
    }
}
