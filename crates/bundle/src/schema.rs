//! Schema descriptors: the self-describing part of a bundle shard.
//!
//! A shard stores fixed-stride records of f32 words; the schema names the
//! tensors inside one record and their shapes, so a reader can slice a
//! record into fields without out-of-band knowledge — the property HDF5
//! gives the paper, reduced to the f32 tensors this workspace moves.

use crate::header::CheckpointError;

/// One named tensor inside a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorField {
    /// Field name; `/`-separated paths mirror the Conduit-node layout
    /// (e.g. `"outputs/images"`).
    pub name: String,
    /// Tensor shape; the field occupies `dims.iter().product()` f32s.
    pub dims: Vec<u64>,
}

impl TensorField {
    pub fn new(name: impl Into<String>, dims: Vec<u64>) -> TensorField {
        TensorField {
            name: name.into(),
            dims,
        }
    }

    /// Number of f32 elements the field occupies.
    pub fn len(&self) -> usize {
        self.dims.iter().product::<u64>() as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full record schema of a shard: fields in record order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleSchema {
    pub fields: Vec<TensorField>,
}

impl BundleSchema {
    pub fn new(fields: Vec<TensorField>) -> BundleSchema {
        BundleSchema { fields }
    }

    /// Total f32 words per record.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(TensorField::len).sum()
    }

    /// Total payload bytes per record.
    pub fn record_bytes(&self) -> usize {
        self.record_len() * 4
    }

    /// The f32-word range field `i` occupies within a record.
    pub fn field_range(&self, i: usize) -> std::ops::Range<usize> {
        let start: usize = self.fields[..i].iter().map(TensorField::len).sum();
        start..start + self.fields[i].len()
    }

    /// Find a field by name, returning its index and descriptor.
    pub fn field_named(&self, name: &str) -> Option<(usize, &TensorField)> {
        self.fields.iter().enumerate().find(|(_, f)| f.name == name)
    }

    /// Serialise the schema descriptor (the shard header's body).
    ///
    /// Layout, little-endian:
    /// `n_fields u32 | { name_len u32 | name bytes | ndims u32 | dims u64… }…`
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for f in &self.fields {
            out.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
            out.extend_from_slice(f.name.as_bytes());
            out.extend_from_slice(&(f.dims.len() as u32).to_le_bytes());
            for &d in &f.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    /// Decode a schema descriptor; every malformation is a typed error,
    /// never a panic (the bytes come from disk).
    pub fn decode(raw: &[u8]) -> Result<BundleSchema, CheckpointError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
            let s = raw.get(*pos..*pos + n).ok_or(CheckpointError::Truncated)?;
            *pos += n;
            Ok(s)
        };
        let take_u32 = |pos: &mut usize| -> Result<u32, CheckpointError> {
            let b = take(pos, 4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        };
        let n_fields = take_u32(&mut pos)? as usize;
        let mut fields = Vec::with_capacity(n_fields.min(1024));
        for _ in 0..n_fields {
            let name_len = take_u32(&mut pos)? as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|e| CheckpointError::ConfigMismatch(format!("field name: {e}")))?
                .to_string();
            let ndims = take_u32(&mut pos)? as usize;
            let mut dims = Vec::with_capacity(ndims.min(16));
            for _ in 0..ndims {
                let b = take(&mut pos, 8)?;
                dims.push(u64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]));
            }
            fields.push(TensorField { name, dims });
        }
        if pos != raw.len() {
            return Err(CheckpointError::ConfigMismatch(format!(
                "schema descriptor has {} trailing bytes",
                raw.len() - pos
            )));
        }
        Ok(BundleSchema { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jag_like() -> BundleSchema {
        BundleSchema::new(vec![
            TensorField::new("inputs/params", vec![5]),
            TensorField::new("outputs/scalars", vec![15]),
            TensorField::new("outputs/images", vec![12, 8, 8]),
        ])
    }

    #[test]
    fn record_geometry() {
        let s = jag_like();
        assert_eq!(s.record_len(), 5 + 15 + 12 * 8 * 8);
        assert_eq!(s.record_bytes(), s.record_len() * 4);
        assert_eq!(s.field_range(0), 0..5);
        assert_eq!(s.field_range(1), 5..20);
        assert_eq!(s.field_range(2), 20..20 + 12 * 8 * 8);
        let (i, f) = s.field_named("outputs/scalars").unwrap();
        assert_eq!(i, 1);
        assert_eq!(f.len(), 15);
        assert!(s.field_named("nope").is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = jag_like();
        assert_eq!(BundleSchema::decode(&s.encode()).unwrap(), s);
        let empty = BundleSchema::new(vec![]);
        assert_eq!(BundleSchema::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn truncated_descriptor_is_typed() {
        let enc = jag_like().encode();
        for cut in [0, 3, 7, enc.len() - 1] {
            assert!(
                matches!(
                    BundleSchema::decode(&enc[..cut]),
                    Err(CheckpointError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = jag_like().encode();
        enc.push(0);
        assert!(matches!(
            BundleSchema::decode(&enc),
            Err(CheckpointError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn non_utf8_name_rejected() {
        let mut enc = Vec::new();
        enc.extend_from_slice(&1u32.to_le_bytes());
        enc.extend_from_slice(&2u32.to_le_bytes());
        enc.extend_from_slice(&[0xFF, 0xFE]);
        enc.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            BundleSchema::decode(&enc),
            Err(CheckpointError::ConfigMismatch(_))
        ));
    }
}
