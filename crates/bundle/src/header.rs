//! The fixed artifact header shared by every binary format in the
//! workspace: checkpoints (`ltfb-core`), surrogate snapshots, and the
//! bundle shards of this crate. Relocated here from `ltfb-core` (which
//! re-exports it unchanged) so storage formats below the training stack
//! can reuse it without a dependency cycle.

use bytes::Bytes;
use ltfb_tensor::crc32;
use std::io::{Read, Write};

/// The fixed on-disk header every binary artifact starts with:
/// `magic | version | body_len | crc32(body)`, all little-endian. The
/// `version` field is mandatory for every checkpoint format in this
/// workspace (enforced by `ltfb-analyze lint`, rule LA005): readers must
/// be able to reject an artifact from a future writer before touching
/// the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format discriminator (e.g. `"LTCP"` for populations, `"LTSV"` for
    /// surrogates, `"LTBS"` for bundle shards).
    pub magic: u32,
    /// Format version; bump on any body layout change.
    pub version: u32,
    /// Byte length of the body that follows the header.
    pub body_len: u64,
    /// CRC-32 of the body.
    pub crc: u32,
}

/// Size of the serialised header in bytes.
pub const HEADER_BYTES: usize = 20;

impl CheckpointHeader {
    /// Header describing `body` for a `(magic, version)` format.
    pub fn for_body(magic: u32, version: u32, body: &[u8]) -> CheckpointHeader {
        CheckpointHeader {
            magic,
            version,
            body_len: body.len() as u64,
            crc: crc32(body),
        }
    }

    /// Write the header in its fixed 20-byte on-disk layout.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        w.write_all(&self.magic.to_le_bytes())?;
        w.write_all(&self.version.to_le_bytes())?;
        w.write_all(&self.body_len.to_le_bytes())?;
        w.write_all(&self.crc.to_le_bytes())?;
        Ok(())
    }

    /// Decode a header from its fixed 20-byte layout, checking `magic`
    /// and `version` against the expected format.
    pub fn decode(
        raw: &[u8; HEADER_BYTES],
        want_magic: u32,
        want_version: u32,
    ) -> Result<CheckpointHeader, CheckpointError> {
        let le32 = |lo: usize| u32::from_le_bytes([raw[lo], raw[lo + 1], raw[lo + 2], raw[lo + 3]]);
        let header = CheckpointHeader {
            magic: le32(0),
            version: le32(4),
            body_len: u64::from_le_bytes([
                raw[8], raw[9], raw[10], raw[11], raw[12], raw[13], raw[14], raw[15],
            ]),
            crc: le32(16),
        };
        if header.magic != want_magic {
            return Err(CheckpointError::BadMagic(header.magic));
        }
        if header.version != want_version {
            return Err(CheckpointError::BadVersion(header.version));
        }
        Ok(header)
    }

    /// Read a header, checking `magic` and `version` against the expected
    /// format before the caller reads the body.
    pub fn read_from(
        r: &mut impl Read,
        want_magic: u32,
        want_version: u32,
    ) -> Result<CheckpointHeader, CheckpointError> {
        let mut raw = [0u8; HEADER_BYTES];
        r.read_exact(&mut raw)
            .map_err(|_| CheckpointError::Truncated)?;
        Self::decode(&raw, want_magic, want_version)
    }

    /// Read the body the header describes and verify its checksum.
    pub fn read_body(&self, r: &mut impl Read) -> Result<Bytes, CheckpointError> {
        let mut body = vec![0u8; self.body_len as usize];
        r.read_exact(&mut body)
            .map_err(|_| CheckpointError::Truncated)?;
        if crc32(&body) != self.crc {
            return Err(CheckpointError::BadChecksum);
        }
        Ok(Bytes::from(body))
    }
}

/// Errors from artifact I/O (checkpoints, surrogate snapshots, shards).
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    BadMagic(u32),
    BadVersion(u32),
    BadChecksum,
    Truncated,
    /// Artifact was written for a different configuration/geometry.
    ConfigMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic(m) => write!(f, "not a checkpoint (magic {m:#x})"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum => write!(f, "checkpoint corrupt (checksum)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ConfigMismatch(s) => write!(f, "config mismatch: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_bytes() {
        let body = b"some body bytes";
        let h = CheckpointHeader::for_body(0xABCD, 3, body);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES);
        let mut r = &buf[..];
        let back = CheckpointHeader::read_from(&mut r, 0xABCD, 3).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let h = CheckpointHeader::for_body(1, 1, b"x");
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert!(matches!(
            CheckpointHeader::read_from(&mut &buf[..], 2, 1),
            Err(CheckpointError::BadMagic(1))
        ));
        assert!(matches!(
            CheckpointHeader::read_from(&mut &buf[..], 1, 2),
            Err(CheckpointError::BadVersion(1))
        ));
    }

    #[test]
    fn corrupt_body_detected() {
        let body = b"payload".to_vec();
        let h = CheckpointHeader::for_body(7, 1, &body);
        let mut tampered = body.clone();
        tampered[0] ^= 0xFF;
        assert!(matches!(
            h.read_body(&mut &tampered[..]),
            Err(CheckpointError::BadChecksum)
        ));
        assert_eq!(&h.read_body(&mut &body[..]).unwrap()[..], b"payload");
    }

    #[test]
    fn short_header_is_truncated() {
        let raw = [0u8; 10];
        assert!(matches!(
            CheckpointHeader::read_from(&mut &raw[..], 1, 1),
            Err(CheckpointError::Truncated)
        ));
    }
}
