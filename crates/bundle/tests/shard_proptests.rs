//! Property-based tests for the bundle shard codec: arbitrary schemas
//! and sample counts round-trip bit-exactly through encode → mmap →
//! decode, and damaged shards (truncation anywhere, payload corruption)
//! surface as typed errors — never panics.

use ltfb_bundle::{BundleSchema, CheckpointError, MmapShard, ShardWriter, TensorField};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_shard() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltfb-bundle-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case_{}.ltbs",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Arbitrary schema: 1..4 fields, each 1..3 dims, bounded volume.
fn schema_strategy() -> impl Strategy<Value = BundleSchema> {
    prop::collection::vec(
        (
            "[a-z][a-z0-9/_]{0,12}",
            prop::collection::vec(1u64..5, 1..3),
        ),
        1..4,
    )
    .prop_map(|fields| {
        BundleSchema::new(
            fields
                .into_iter()
                .enumerate()
                // Disambiguate names: schemas address fields by name.
                .map(|(i, (name, dims))| TensorField::new(format!("{name}{i}"), dims))
                .collect(),
        )
    })
}

/// A schema plus samples shaped to it (finite payload words).
fn shard_strategy() -> impl Strategy<Value = (BundleSchema, Vec<(u64, Vec<f32>)>)> {
    schema_strategy().prop_flat_map(|schema| {
        let len = schema.record_len();
        let sample = (
            any::<u64>(),
            prop::collection::vec(
                any::<f32>().prop_filter("finite", |v| v.is_finite()),
                len..len + 1,
            ),
        );
        prop::collection::vec(sample, 0..6).prop_map(move |mut samples| {
            // Ids must be unique within a shard.
            samples.sort_by_key(|(id, _)| *id);
            samples.dedup_by_key(|(id, _)| *id);
            (schema.clone(), samples)
        })
    })
}

fn write_shard(path: &Path, schema: &BundleSchema, samples: &[(u64, Vec<f32>)]) {
    let mut w = ShardWriter::create(path, schema.clone()).unwrap();
    for (id, payload) in samples {
        w.append(*id, payload).unwrap();
    }
    w.flush().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary shapes and counts encode → mmap-decode bit-exactly.
    #[test]
    fn round_trip_bit_exact((schema, samples) in shard_strategy()) {
        let path = tmp_shard();
        write_shard(&path, &schema, &samples);
        let shard = MmapShard::open(&path).unwrap();
        prop_assert_eq!(shard.schema(), &schema);
        prop_assert_eq!(shard.len(), samples.len());
        for (idx, (id, payload)) in samples.iter().enumerate() {
            let view = shard.sample(idx).unwrap();
            prop_assert_eq!(view, &payload[..], "sample {} by index", idx);
            let by_id = shard.sample_by_id(*id).unwrap();
            prop_assert_eq!(by_id, Some(&payload[..]), "sample {} by id", id);
        }
        std::fs::remove_file(&path).ok();
    }

    /// The schema itself round-trips through its binary descriptor.
    #[test]
    fn schema_round_trip(schema in schema_strategy()) {
        let decoded = BundleSchema::decode(&schema.encode()).unwrap();
        prop_assert_eq!(decoded, schema);
    }

    /// Truncating a strict shard anywhere is a typed error, never a panic
    /// (and never a silently shorter shard).
    #[test]
    fn truncation_is_typed((schema, samples) in shard_strategy(), cut_frac in 0.0f64..1.0) {
        let path = tmp_shard();
        write_shard(&path, &schema, &samples);
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        // A cut landing exactly on a record boundary is indistinguishable
        // from a legitimately shorter shard; everywhere else must error.
        let stride = 12 + schema.record_bytes();
        let data_off = full.len() - samples.len() * stride;
        let clean = cut >= data_off && (cut - data_off).is_multiple_of(stride);
        std::fs::write(&path, &full[..cut]).unwrap();
        match MmapShard::open(&path) {
            Ok(shard) => prop_assert!(
                clean && shard.len() == (cut - data_off) / stride,
                "truncated shard ({cut}/{} bytes) opened with {} samples",
                full.len(),
                shard.len()
            ),
            Err(
                CheckpointError::Truncated
                | CheckpointError::BadMagic { .. }
                | CheckpointError::BadVersion { .. }
                | CheckpointError::BadChecksum,
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// A streaming open of a truncated shard exposes exactly the complete
    /// record prefix.
    #[test]
    fn streaming_open_keeps_complete_prefix((schema, samples) in shard_strategy(), cut_words in 0usize..8) {
        prop_assume!(!samples.is_empty());
        let path = tmp_shard();
        write_shard(&path, &schema, &samples);
        let full = std::fs::read(&path).unwrap();
        // Chop a partial tail off the last record (keep its header intact
        // or not — both are "incomplete last record").
        let cut = full.len() - (cut_words.min(schema.record_len()) * 4).max(1);
        std::fs::write(&path, &full[..cut]).unwrap();
        let shard = MmapShard::open_streaming(&path).unwrap();
        prop_assert_eq!(shard.len(), samples.len() - 1, "only the complete prefix is visible");
        for (idx, (_, payload)) in samples.iter().take(shard.len()).enumerate() {
            prop_assert_eq!(shard.sample(idx).unwrap(), &payload[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any payload byte is caught by the per-record checksum.
    #[test]
    fn payload_corruption_is_typed((schema, samples) in shard_strategy(), victim in any::<prop::sample::Index>(), bit in 0u8..8) {
        prop_assume!(!samples.is_empty());
        let path = tmp_shard();
        write_shard(&path, &schema, &samples);
        let mut raw = std::fs::read(&path).unwrap();
        // Corrupt one byte of one record's payload.
        let header = raw.len() - samples.len() * (12 + schema.record_bytes());
        let v = victim.index(samples.len());
        let off = header + v * (12 + schema.record_bytes()) + 12;
        raw[off] ^= 1 << bit;
        std::fs::write(&path, &raw).unwrap();
        let shard = MmapShard::open(&path).unwrap();
        match shard.sample(v) {
            Err(CheckpointError::BadChecksum) => {}
            Ok(_) => prop_assert!(false, "corrupted payload served"),
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
