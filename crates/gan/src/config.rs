//! CycleGAN surrogate configuration (Section II-D).

use ltfb_jag::{JagConfig, N_PARAMS, N_SCALARS};

/// Architecture and loss weights of the CycleGAN surrogate.
///
/// The paper's networks are "standard fully-connected neural networks";
/// widths here default to laptop-scale values and scale with the image
/// resolution of the attached [`JagConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CycleGanConfig {
    /// Problem geometry (drives the output-bundle width).
    pub jag: JagConfig,
    /// Latent dimension (paper: 20).
    pub latent: usize,
    /// Hidden width of the encoder/decoder stacks.
    pub ae_hidden: usize,
    /// Hidden width of the forward/inverse/discriminator stacks.
    pub net_hidden: usize,
    /// LeakyReLU slope.
    pub leak: f32,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Weight of the latent fidelity term (surrogate fidelity loss).
    pub fidelity_weight: f32,
    /// Weight of the adversarial term (physical consistency loss).
    pub adv_weight: f32,
    /// Weight of the cycle term `G(F(x)) ~ x` (self consistency loss).
    pub cycle_weight: f32,
    /// Weight of the decoded-output MAE term (internal consistency loss).
    pub recon_weight: f32,
}

impl CycleGanConfig {
    /// Laptop-scale defaults at the given image resolution.
    pub fn small(img_size: usize) -> Self {
        CycleGanConfig {
            jag: JagConfig::small(img_size),
            latent: 20,
            ae_hidden: 96,
            net_hidden: 64,
            leak: 0.1,
            lr: 1.0e-3,
            fidelity_weight: 1.0,
            adv_weight: 0.05,
            cycle_weight: 1.0,
            recon_weight: 0.5,
        }
    }

    /// Width of the multimodal output bundle (15 scalars + all images).
    pub fn y_dim(&self) -> usize {
        N_SCALARS + self.jag.image_len()
    }

    /// Width of the input parameter vector.
    pub fn x_dim(&self) -> usize {
        N_PARAMS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_follow_image_size() {
        let c = CycleGanConfig::small(8);
        assert_eq!(c.x_dim(), 5);
        assert_eq!(c.y_dim(), 15 + 12 * 64);
        assert_eq!(c.latent, 20);
    }
}
