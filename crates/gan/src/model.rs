//! The CycleGAN surrogate (Fig. 2): five fully-connected networks and the
//! four consistency losses.
//!
//! * encoder `E : R^y -> R^20` and decoder `Dec : R^20 -> R^y` form the
//!   multimodal autoencoder, trained a priori and then frozen;
//! * forward model `F : R^5 -> R^20` predicts the latent code of the
//!   outputs from the experiment inputs (*surrogate fidelity* +
//!   *internal consistency* via the frozen decoder);
//! * discriminator `D : R^20 -> logit` distinguishes real latent codes
//!   from predicted ones (*physical consistency*);
//! * inverse model `G : R^20 -> R^5` maps back to inputs
//!   (*self/cycle consistency*, `G ∘ F ≈ I`).
//!
//! Only `F` and `G` — the *generator* — cross trainers during an LTFB
//! round; `E`, `Dec` and `D` stay local (Section III-C).

use crate::config::CycleGanConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ltfb_hotpath::hot_path;
use ltfb_nn::{mlp, Adam, Layer, Optimizer, OutputActivation, Sequential, Workspace};
use ltfb_tensor::{
    axpy, bce_with_logits, bce_with_logits_grad, bce_with_logits_grad_into, mean_absolute_error,
    mean_absolute_error_grad, mean_absolute_error_grad_into, mix_seed, seeded_rng, DecodeError,
    Matrix,
};

/// Per-step training losses.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepLosses {
    /// Discriminator BCE (real + fake halves).
    pub d_loss: f32,
    /// Generator's adversarial (physical consistency) term.
    pub adv: f32,
    /// Latent fidelity term.
    pub fidelity: f32,
    /// Cycle (self consistency) term.
    pub cycle: f32,
    /// Decoded-output (internal consistency) term.
    pub recon: f32,
}

impl StepLosses {
    /// Total generator objective.
    pub fn generator_total(&self, cfg: &CycleGanConfig) -> f32 {
        cfg.fidelity_weight * self.fidelity
            + cfg.adv_weight * self.adv
            + cfg.cycle_weight * self.cycle
            + cfg.recon_weight * self.recon
    }
}

/// Validation-time losses (the paper's "forward and inverse loss").
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalLosses {
    /// Output-space reconstruction MAE of `Dec(F(x))` vs `y`.
    pub forward: f32,
    /// Cycle MAE of `G(F(x))` vs `x`.
    pub inverse: f32,
    /// Latent fidelity MAE of `F(x)` vs `E(y)`.
    pub fidelity: f32,
}

impl EvalLosses {
    /// The combined validation metric used for tournaments and Figs 12/13
    /// (lower is better).
    pub fn combined(&self) -> f32 {
        self.forward + self.inverse
    }
}

/// Which trainable network of the [`CycleGan`] a gradient-sync callback
/// refers to (the three nets that see a data-parallel allreduce; the
/// frozen encoder/decoder never sync).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncNet {
    Discriminator,
    ForwardModel,
    InverseModel,
}

/// Backward-overlapped gradient synchronisation, the structured upgrade
/// of the `sync: FnMut(&mut Sequential)` callback: `begin` arms a
/// nonblocking allreduce for a network just before its (final) hooked
/// backward, `layer_done` streams per-layer gradients into it as the
/// backward walks the net in reverse, and `finish` drains it exactly
/// where the old callback would have run the blocking collective.
///
/// `ltfb-gan` stays comm-free: the data-parallel implementation lives in
/// `ltfb-core`, and [`NoOverlap`] recovers the plain serial step. Hooks
/// must never run blocking collectives themselves (lint LA011).
pub trait OverlapSync {
    /// Arm synchronisation for `net` (called before its hooked backward).
    fn begin(&mut self, net: SyncNet, model: &Sequential);
    /// Layer `layer` (forward index) of `net` finished backward; its
    /// parameter gradients are final.
    fn layer_done(&mut self, net: SyncNet, layer: usize, l: &dyn Layer);
    /// Drain: after this, `model`'s gradients hold the synchronised
    /// (averaged) values.
    fn finish(&mut self, net: SyncNet, model: &mut Sequential);
}

/// The no-op [`OverlapSync`]: [`CycleGan::train_step_ws_overlapped`]
/// with this is bit-identical to [`CycleGan::train_step_ws`].
pub struct NoOverlap;

impl OverlapSync for NoOverlap {
    fn begin(&mut self, _net: SyncNet, _model: &Sequential) {}
    fn layer_done(&mut self, _net: SyncNet, _layer: usize, _l: &dyn Layer) {}
    fn finish(&mut self, _net: SyncNet, _model: &mut Sequential) {}
}

/// The full surrogate: five networks plus their optimizers.
pub struct CycleGan {
    pub cfg: CycleGanConfig,
    encoder: Sequential,
    decoder: Sequential,
    forward_model: Sequential,
    inverse_model: Sequential,
    discriminator: Sequential,
    opt_ae: Adam,
    opt_f: Adam,
    opt_g: Adam,
    opt_d: Adam,
}

impl CycleGan {
    /// Build with per-network seeds derived from `seed` (LTFB initialises
    /// each trainer's population member with a distinct seed).
    pub fn new(cfg: CycleGanConfig, seed: u64) -> Self {
        let y = cfg.y_dim();
        let x = cfg.x_dim();
        let l = cfg.latent;
        let h = cfg.net_hidden;
        let ah = cfg.ae_hidden;
        let mk = |tag: u64| seeded_rng(mix_seed(&[seed, tag]));
        CycleGan {
            encoder: mlp(
                &[y, ah, ah / 2, l],
                cfg.leak,
                OutputActivation::TanhOut,
                &mut mk(1),
            ),
            decoder: mlp(
                &[l, ah / 2, ah, y],
                cfg.leak,
                OutputActivation::LinearOut,
                &mut mk(2),
            ),
            forward_model: mlp(
                &[x, h, h, l],
                cfg.leak,
                OutputActivation::TanhOut,
                &mut mk(3),
            ),
            inverse_model: mlp(
                &[l, h, h / 2, x],
                cfg.leak,
                OutputActivation::SigmoidOut,
                &mut mk(4),
            ),
            discriminator: mlp(
                &[l, h, h / 2, 1],
                cfg.leak,
                OutputActivation::LinearOut,
                &mut mk(5),
            ),
            opt_ae: Adam::new(cfg.lr),
            opt_f: Adam::new(cfg.lr),
            opt_g: Adam::new(cfg.lr),
            opt_d: Adam::new(cfg.lr),
            cfg,
        }
    }

    /// Total trainable parameters across all five networks.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params()
            + self.decoder.num_params()
            + self.forward_model.num_params()
            + self.inverse_model.num_params()
            + self.discriminator.num_params()
    }

    /// Override the learning rate of the trainable networks (generator
    /// F/G and discriminator). Used by LTFB populations with
    /// hyperparameter diversity ("initialized with different weights and
    /// hyperparameters", Section III-C).
    pub fn set_learning_rates(&mut self, lr: f32) {
        self.opt_f.set_learning_rate(lr);
        self.opt_g.set_learning_rate(lr);
        self.opt_d.set_learning_rate(lr);
    }

    /// Current generator learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.opt_f.learning_rate()
    }

    /// Parameters in the exchanged generator (F + G).
    pub fn generator_params(&self) -> usize {
        self.forward_model.num_params() + self.inverse_model.num_params()
    }

    /// One autoencoder pre-training step on an output batch; returns the
    /// reconstruction MAE. ("trained a priori using a multimodal
    /// autoencoder of all outputs")
    pub fn pretrain_autoencoder_step(&mut self, y: &Matrix) -> f32 {
        self.encoder.zero_grads();
        self.decoder.zero_grads();
        let z = self.encoder.forward(y, true);
        let y_hat = self.decoder.forward(&z, true);
        let loss = mean_absolute_error(&y_hat, y);
        let g = mean_absolute_error_grad(&y_hat, y);
        let gz = self.decoder.backward(&g);
        self.encoder.backward(&gz);
        // One optimizer drives both autoencoder halves.
        let mut params = self.encoder.params_mut();
        params.extend(self.decoder.params_mut());
        // (params_mut borrows encoder and decoder disjointly)
        self.opt_ae.step(&mut params);
        loss
    }

    /// One adversarial training step on an `(x, y)` batch.
    pub fn train_step(&mut self, x: &Matrix, y: &Matrix) -> StepLosses {
        self.train_step_with_sync(x, y, &mut |_| {})
    }

    /// Training step with a gradient-synchronisation hook: `sync` is
    /// called on each trainable network after its gradients are fully
    /// accumulated and before its optimizer step — the seam data-parallel
    /// replicas use to allreduce gradients across the trainer's ranks
    /// (Fig. 4's intra-trainer parallelism).
    pub fn train_step_with_sync(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        sync: &mut dyn FnMut(&mut Sequential),
    ) -> StepLosses {
        assert_eq!(x.rows(), y.rows(), "x/y batch mismatch");
        let n = x.rows();
        let ones = Matrix::full(n, 1, 1.0);
        let zeros = Matrix::zeros(n, 1);
        let mut losses = StepLosses::default();

        // Frozen encoder: the "real" latent codes.
        let z_real = self.encoder.forward(y, false);

        // ---- Discriminator update (physical consistency, D side) ----
        let z_fake = self.forward_model.forward(x, true);
        self.discriminator.zero_grads();
        let logit_real = self.discriminator.forward(&z_real, true);
        losses.d_loss += bce_with_logits(&logit_real, &ones);
        let g_real = bce_with_logits_grad(&logit_real, &ones);
        self.discriminator.backward(&g_real);
        let logit_fake = self.discriminator.forward(&z_fake, true);
        losses.d_loss += bce_with_logits(&logit_fake, &zeros);
        let g_fake = bce_with_logits_grad(&logit_fake, &zeros);
        self.discriminator.backward(&g_fake);
        sync(&mut self.discriminator);
        self.opt_d.step(&mut self.discriminator.params_mut());

        // ---- Generator update (F and G) ----
        self.forward_model.zero_grads();
        self.inverse_model.zero_grads();
        let z_fake = self.forward_model.forward(x, true); // fresh caches

        // Surrogate fidelity: MAE(F(x), E(y)).
        losses.fidelity = mean_absolute_error(&z_fake, &z_real);
        let mut gz = mean_absolute_error_grad(&z_fake, &z_real);
        ltfb_tensor::scale(self.cfg.fidelity_weight, &mut gz);

        // Physical consistency: fool the (now frozen) discriminator.
        let logit = self.discriminator.forward(&z_fake, true);
        losses.adv = bce_with_logits(&logit, &ones);
        let mut ga = bce_with_logits_grad(&logit, &ones);
        ltfb_tensor::scale(self.cfg.adv_weight, &mut ga);
        let gz_adv = self.discriminator.backward(&ga);
        axpy(1.0, &gz_adv, &mut gz);
        // The discriminator accumulated spurious grads from this pass;
        // they are discarded by the zero_grads at its next update.

        // Internal consistency: decoded outputs match ground truth
        // (decoder frozen — gradients flow through, not into, it).
        let y_hat = self.decoder.forward(&z_fake, false);
        losses.recon = mean_absolute_error(&y_hat, y);
        let mut gr = mean_absolute_error_grad(&y_hat, y);
        ltfb_tensor::scale(self.cfg.recon_weight, &mut gr);
        self.decoder.zero_grads();
        let gz_rec = self.decoder.backward(&gr);
        self.decoder.zero_grads(); // decoder stays frozen
        axpy(1.0, &gz_rec, &mut gz);

        // Self consistency: G(F(x)) ~ x.
        let x_hat = self.inverse_model.forward(&z_fake, true);
        losses.cycle = mean_absolute_error(&x_hat, x);
        let mut gc = mean_absolute_error_grad(&x_hat, x);
        ltfb_tensor::scale(self.cfg.cycle_weight, &mut gc);
        let gz_cyc = self.inverse_model.backward(&gc);
        axpy(1.0, &gz_cyc, &mut gz);

        // Backprop the combined latent gradient into F; sync and step.
        self.forward_model.backward(&gz);
        sync(&mut self.forward_model);
        sync(&mut self.inverse_model);
        self.opt_f.step(&mut self.forward_model.params_mut());
        self.opt_g.step(&mut self.inverse_model.params_mut());

        losses
    }

    /// Workspace-path training step: bit-identical losses and weight
    /// trajectory to [`Self::train_step`], with every activation,
    /// gradient and label buffer drawn from `ws` — zero heap allocation
    /// once the pool and layer caches are warm.
    #[hot_path]
    pub fn train_step_ws(&mut self, x: &Matrix, y: &Matrix, ws: &mut Workspace) -> StepLosses {
        self.train_step_ws_with_sync(x, y, ws, &mut |_| {})
    }

    /// [`Self::train_step_with_sync`] on the workspace path. The op
    /// sequence below mirrors the allocating step exactly — same kernel
    /// calls, same order, same f32 expression trees — so the two paths
    /// produce bit-identical weights from identical starting states.
    #[hot_path]
    pub fn train_step_ws_with_sync(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        ws: &mut Workspace,
        sync: &mut dyn FnMut(&mut Sequential),
    ) -> StepLosses {
        assert_eq!(x.rows(), y.rows(), "x/y batch mismatch");
        let n = x.rows();
        let mut ones = ws.take(n, 1);
        ones.fill(1.0);
        let mut zeros = ws.take(n, 1);
        zeros.fill(0.0);
        let mut losses = StepLosses::default();

        // Frozen encoder: the "real" latent codes.
        let z_real = self.encoder.forward_ws(y, false, ws);

        // ---- Discriminator update (physical consistency, D side) ----
        let z_fake = self.forward_model.forward_ws(x, true, ws);
        self.discriminator.zero_grads();
        let logit_real = self.discriminator.forward_ws(&z_real, true, ws);
        losses.d_loss += bce_with_logits(&logit_real, &ones);
        let mut g_real = ws.take_like(&logit_real);
        bce_with_logits_grad_into(&logit_real, &ones, &mut g_real);
        ws.give(logit_real);
        let d_in = self.discriminator.backward_ws(&g_real, ws);
        ws.give(d_in);
        ws.give(g_real);
        let logit_fake = self.discriminator.forward_ws(&z_fake, true, ws);
        losses.d_loss += bce_with_logits(&logit_fake, &zeros);
        let mut g_fake = ws.take_like(&logit_fake);
        bce_with_logits_grad_into(&logit_fake, &zeros, &mut g_fake);
        ws.give(logit_fake);
        let d_in = self.discriminator.backward_ws(&g_fake, ws);
        ws.give(d_in);
        ws.give(g_fake);
        sync(&mut self.discriminator);
        self.opt_d.step_model(&mut self.discriminator);
        ws.give(z_fake);

        // ---- Generator update (F and G) ----
        self.forward_model.zero_grads();
        self.inverse_model.zero_grads();
        let z_fake = self.forward_model.forward_ws(x, true, ws); // fresh caches

        // Surrogate fidelity: MAE(F(x), E(y)).
        losses.fidelity = mean_absolute_error(&z_fake, &z_real);
        let mut gz = ws.take_like(&z_fake);
        mean_absolute_error_grad_into(&z_fake, &z_real, &mut gz);
        ltfb_tensor::scale(self.cfg.fidelity_weight, &mut gz);

        // Physical consistency: fool the (now frozen) discriminator.
        let logit = self.discriminator.forward_ws(&z_fake, true, ws);
        losses.adv = bce_with_logits(&logit, &ones);
        let mut ga = ws.take_like(&logit);
        bce_with_logits_grad_into(&logit, &ones, &mut ga);
        ltfb_tensor::scale(self.cfg.adv_weight, &mut ga);
        ws.give(logit);
        let gz_adv = self.discriminator.backward_ws(&ga, ws);
        ws.give(ga);
        axpy(1.0, &gz_adv, &mut gz);
        ws.give(gz_adv);
        // The discriminator accumulated spurious grads from this pass;
        // they are discarded by the zero_grads at its next update.

        // Internal consistency: decoded outputs match ground truth
        // (decoder frozen — gradients flow through, not into, it).
        let y_hat = self.decoder.forward_ws(&z_fake, false, ws);
        losses.recon = mean_absolute_error(&y_hat, y);
        let mut gr = ws.take_like(&y_hat);
        mean_absolute_error_grad_into(&y_hat, y, &mut gr);
        ltfb_tensor::scale(self.cfg.recon_weight, &mut gr);
        ws.give(y_hat);
        self.decoder.zero_grads();
        let gz_rec = self.decoder.backward_ws(&gr, ws);
        ws.give(gr);
        self.decoder.zero_grads(); // decoder stays frozen
        axpy(1.0, &gz_rec, &mut gz);
        ws.give(gz_rec);

        // Self consistency: G(F(x)) ~ x.
        let x_hat = self.inverse_model.forward_ws(&z_fake, true, ws);
        losses.cycle = mean_absolute_error(&x_hat, x);
        let mut gc = ws.take_like(&x_hat);
        mean_absolute_error_grad_into(&x_hat, x, &mut gc);
        ltfb_tensor::scale(self.cfg.cycle_weight, &mut gc);
        ws.give(x_hat);
        let gz_cyc = self.inverse_model.backward_ws(&gc, ws);
        ws.give(gc);
        axpy(1.0, &gz_cyc, &mut gz);
        ws.give(gz_cyc);

        // Backprop the combined latent gradient into F; sync and step.
        let f_in = self.forward_model.backward_ws(&gz, ws);
        ws.give(f_in);
        ws.give(gz);
        ws.give(z_fake);
        ws.give(z_real);
        sync(&mut self.forward_model);
        sync(&mut self.inverse_model);
        self.opt_f.step_model(&mut self.forward_model);
        self.opt_g.step_model(&mut self.inverse_model);
        ws.give(ones);
        ws.give(zeros);

        losses
    }

    /// [`Self::train_step_ws`] with backward-overlapped gradient sync:
    /// the op sequence, kernel calls and f32 expression trees are the
    /// exact mirror of [`Self::train_step_ws_with_sync`] — the *only*
    /// differences are (a) backwards that feed a sync run through
    /// `backward_ws_hooked` (same arithmetic, plus per-layer callbacks)
    /// and (b) the blocking `sync(net)` points become `ov.finish(net)`.
    /// With a bit-identical sync implementation (e.g. the nonblocking
    /// bucketed allreduce, or [`NoOverlap`] serially) the weight
    /// trajectory is bit-identical to the plain workspace step.
    ///
    /// Hook placement notes:
    /// * D's gradients accumulate across the real and fake passes, so
    ///   only the **second** backward is hooked — after it every D layer
    ///   gradient is final. (The spurious D grads of the later generator
    ///   adversarial pass land *after* `finish` and are discarded by the
    ///   next `zero_grads`, exactly as on the plain path.)
    /// * G and F each have a single backward; G's entire allreduce
    ///   overlaps F's backward, which the `ltfb-core` impl drives by
    ///   polling G's engine from F's `layer_done` hooks.
    #[hot_path]
    pub fn train_step_ws_overlapped(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        ws: &mut Workspace,
        ov: &mut dyn OverlapSync,
    ) -> StepLosses {
        assert_eq!(x.rows(), y.rows(), "x/y batch mismatch");
        let n = x.rows();
        let mut ones = ws.take(n, 1);
        ones.fill(1.0);
        let mut zeros = ws.take(n, 1);
        zeros.fill(0.0);
        let mut losses = StepLosses::default();

        // Frozen encoder: the "real" latent codes.
        let z_real = self.encoder.forward_ws(y, false, ws);

        // ---- Discriminator update (physical consistency, D side) ----
        let z_fake = self.forward_model.forward_ws(x, true, ws);
        self.discriminator.zero_grads();
        let logit_real = self.discriminator.forward_ws(&z_real, true, ws);
        losses.d_loss += bce_with_logits(&logit_real, &ones);
        let mut g_real = ws.take_like(&logit_real);
        bce_with_logits_grad_into(&logit_real, &ones, &mut g_real);
        ws.give(logit_real);
        let d_in = self.discriminator.backward_ws(&g_real, ws);
        ws.give(d_in);
        ws.give(g_real);
        let logit_fake = self.discriminator.forward_ws(&z_fake, true, ws);
        losses.d_loss += bce_with_logits(&logit_fake, &zeros);
        let mut g_fake = ws.take_like(&logit_fake);
        bce_with_logits_grad_into(&logit_fake, &zeros, &mut g_fake);
        ws.give(logit_fake);
        ov.begin(SyncNet::Discriminator, &self.discriminator);
        let d_in = self
            .discriminator
            .backward_ws_hooked(&g_fake, ws, &mut |i, l| {
                ov.layer_done(SyncNet::Discriminator, i, l)
            });
        ws.give(d_in);
        ws.give(g_fake);
        ov.finish(SyncNet::Discriminator, &mut self.discriminator);
        self.opt_d.step_model(&mut self.discriminator);
        ws.give(z_fake);

        // ---- Generator update (F and G) ----
        self.forward_model.zero_grads();
        self.inverse_model.zero_grads();
        let z_fake = self.forward_model.forward_ws(x, true, ws); // fresh caches

        // Surrogate fidelity: MAE(F(x), E(y)).
        losses.fidelity = mean_absolute_error(&z_fake, &z_real);
        let mut gz = ws.take_like(&z_fake);
        mean_absolute_error_grad_into(&z_fake, &z_real, &mut gz);
        ltfb_tensor::scale(self.cfg.fidelity_weight, &mut gz);

        // Physical consistency: fool the (now frozen) discriminator.
        let logit = self.discriminator.forward_ws(&z_fake, true, ws);
        losses.adv = bce_with_logits(&logit, &ones);
        let mut ga = ws.take_like(&logit);
        bce_with_logits_grad_into(&logit, &ones, &mut ga);
        ltfb_tensor::scale(self.cfg.adv_weight, &mut ga);
        ws.give(logit);
        let gz_adv = self.discriminator.backward_ws(&ga, ws);
        ws.give(ga);
        axpy(1.0, &gz_adv, &mut gz);
        ws.give(gz_adv);
        // The discriminator accumulated spurious grads from this pass;
        // they are discarded by the zero_grads at its next update.

        // Internal consistency: decoded outputs match ground truth
        // (decoder frozen — gradients flow through, not into, it).
        let y_hat = self.decoder.forward_ws(&z_fake, false, ws);
        losses.recon = mean_absolute_error(&y_hat, y);
        let mut gr = ws.take_like(&y_hat);
        mean_absolute_error_grad_into(&y_hat, y, &mut gr);
        ltfb_tensor::scale(self.cfg.recon_weight, &mut gr);
        ws.give(y_hat);
        self.decoder.zero_grads();
        let gz_rec = self.decoder.backward_ws(&gr, ws);
        ws.give(gr);
        self.decoder.zero_grads(); // decoder stays frozen
        axpy(1.0, &gz_rec, &mut gz);
        ws.give(gz_rec);

        // Self consistency: G(F(x)) ~ x.
        let x_hat = self.inverse_model.forward_ws(&z_fake, true, ws);
        losses.cycle = mean_absolute_error(&x_hat, x);
        let mut gc = ws.take_like(&x_hat);
        mean_absolute_error_grad_into(&x_hat, x, &mut gc);
        ltfb_tensor::scale(self.cfg.cycle_weight, &mut gc);
        ws.give(x_hat);
        ov.begin(SyncNet::InverseModel, &self.inverse_model);
        let gz_cyc = self.inverse_model.backward_ws_hooked(&gc, ws, &mut |i, l| {
            ov.layer_done(SyncNet::InverseModel, i, l)
        });
        ws.give(gc);
        axpy(1.0, &gz_cyc, &mut gz);
        ws.give(gz_cyc);

        // Backprop the combined latent gradient into F; G's in-flight
        // allreduce keeps progressing under F's backward via the hooks.
        ov.begin(SyncNet::ForwardModel, &self.forward_model);
        let f_in = self.forward_model.backward_ws_hooked(&gz, ws, &mut |i, l| {
            ov.layer_done(SyncNet::ForwardModel, i, l)
        });
        ws.give(f_in);
        ws.give(gz);
        ws.give(z_fake);
        ws.give(z_real);
        ov.finish(SyncNet::ForwardModel, &mut self.forward_model);
        ov.finish(SyncNet::InverseModel, &mut self.inverse_model);
        self.opt_f.step_model(&mut self.forward_model);
        self.opt_g.step_model(&mut self.inverse_model);
        ws.give(ones);
        ws.give(zeros);

        losses
    }

    /// Evaluate on a validation batch (no parameter updates).
    pub fn evaluate(&mut self, x: &Matrix, y: &Matrix) -> EvalLosses {
        let z_real = self.encoder.forward(y, false);
        let z_fake = self.forward_model.forward(x, false);
        let y_hat = self.decoder.forward(&z_fake, false);
        let x_hat = self.inverse_model.forward(&z_fake, false);
        EvalLosses {
            forward: mean_absolute_error(&y_hat, y),
            inverse: mean_absolute_error(&x_hat, x),
            fidelity: mean_absolute_error(&z_fake, &z_real),
        }
    }

    /// Predict the output bundle for a batch of inputs: `Dec(F(x))`.
    pub fn predict(&mut self, x: &Matrix) -> Matrix {
        let z = self.forward_model.forward(x, false);
        self.decoder.forward(&z, false)
    }

    /// Inference-only forward prediction `Dec(F(x))`: shared-reference
    /// [`predict`](Self::predict), bit-identical to it, usable from a
    /// model behind `Arc` serving concurrent requests.
    pub fn infer_forward(&self, x: &Matrix) -> Matrix {
        let z = self.forward_model.infer(x);
        self.decoder.infer(&z)
    }

    /// Inference-only inversion `G(E(y))`: shared-reference
    /// [`invert`](Self::invert), bit-identical to it.
    pub fn infer_inverse(&self, y: &Matrix) -> Matrix {
        let z = self.encoder.infer(y);
        self.inverse_model.infer(&z)
    }

    /// Local-discriminator logits on generated latent codes `D(F(x))` —
    /// the GAN-specific tournament evaluation of Fig. 6(b).
    pub fn discriminator_logits(&mut self, x: &Matrix) -> Matrix {
        let z = self.forward_model.forward(x, false);
        self.discriminator.forward(&z, false)
    }

    /// Predict inputs back from outputs: `G(E(y))` (robust model
    /// inversion, Section II-A).
    pub fn invert(&mut self, y: &Matrix) -> Matrix {
        let z = self.encoder.forward(y, false);
        self.inverse_model.forward(&z, false)
    }

    /// Serialise the generator (F + G) for an LTFB exchange. The
    /// discriminator, encoder and decoder stay local.
    pub fn generator_to_bytes(&self) -> Bytes {
        let f = self.forward_model.weights_to_bytes();
        let g = self.inverse_model.weights_to_bytes();
        let mut buf = BytesMut::with_capacity(f.len() + g.len() + 16);
        buf.put_u64_le(f.len() as u64);
        buf.put_slice(&f);
        buf.put_u64_le(g.len() as u64);
        buf.put_slice(&g);
        buf.freeze()
    }

    /// Install generator weights received from another trainer.
    pub fn load_generator(&mut self, mut data: Bytes) -> Result<(), DecodeError> {
        let take = |data: &mut Bytes| -> Result<Bytes, DecodeError> {
            if data.remaining() < 8 {
                return Err(DecodeError::Truncated {
                    needed: 8,
                    have: data.remaining(),
                });
            }
            let len = data.get_u64_le() as usize;
            if data.remaining() < len {
                return Err(DecodeError::Truncated {
                    needed: len,
                    have: data.remaining(),
                });
            }
            Ok(data.copy_to_bytes(len))
        };
        let f = take(&mut data)?;
        let g = take(&mut data)?;
        self.forward_model.weights_from_bytes(f)?;
        self.inverse_model.weights_from_bytes(g)?;
        // Foreign weights live elsewhere on the loss surface: stale Adam
        // moments would immediately drag them back. LBANN keeps optimizer
        // state local; we reset it, which is equivalent at exchange time.
        self.opt_f.reset_state();
        self.opt_g.reset_state();
        Ok(())
    }

    /// Serialise the frozen autoencoder (encoder + decoder). The paper
    /// trains the multimodal autoencoder *a priori*, once, and every
    /// trainer's surrogate is built against that shared latent space —
    /// without this, exchanged generators would target incompatible
    /// latent embeddings and tournaments would degenerate.
    pub fn autoencoder_to_bytes(&self) -> Bytes {
        let e = self.encoder.weights_to_bytes();
        let d = self.decoder.weights_to_bytes();
        let mut buf = BytesMut::with_capacity(e.len() + d.len() + 16);
        buf.put_u64_le(e.len() as u64);
        buf.put_slice(&e);
        buf.put_u64_le(d.len() as u64);
        buf.put_slice(&d);
        buf.freeze()
    }

    /// Install a shared pre-trained autoencoder.
    pub fn load_autoencoder(&mut self, mut data: Bytes) -> Result<(), DecodeError> {
        let take = |data: &mut Bytes| -> Result<Bytes, DecodeError> {
            if data.remaining() < 8 {
                return Err(DecodeError::Truncated {
                    needed: 8,
                    have: data.remaining(),
                });
            }
            let len = data.get_u64_le() as usize;
            if data.remaining() < len {
                return Err(DecodeError::Truncated {
                    needed: len,
                    have: data.remaining(),
                });
            }
            Ok(data.copy_to_bytes(len))
        };
        let e = take(&mut data)?;
        let d = take(&mut data)?;
        self.encoder.weights_from_bytes(e)?;
        self.decoder.weights_from_bytes(d)?;
        self.opt_ae.reset_state();
        Ok(())
    }

    /// Install generator weights *without* touching optimizer state —
    /// used to temporarily score a foreign generator during a tournament
    /// and then restore the local one if it wins.
    pub fn swap_generator_weights(&mut self, data: Bytes) -> Result<(), DecodeError> {
        let take = |data: &mut Bytes| -> Result<Bytes, DecodeError> {
            if data.remaining() < 8 {
                return Err(DecodeError::Truncated {
                    needed: 8,
                    have: data.remaining(),
                });
            }
            let len = data.get_u64_le() as usize;
            if data.remaining() < len {
                return Err(DecodeError::Truncated {
                    needed: len,
                    have: data.remaining(),
                });
            }
            Ok(data.copy_to_bytes(len))
        };
        let mut data = data;
        let f = take(&mut data)?;
        let g = take(&mut data)?;
        self.forward_model.weights_from_bytes(f)?;
        self.inverse_model.weights_from_bytes(g)?;
        Ok(())
    }

    /// Fingerprint of the generator weights (tournament bookkeeping).
    pub fn generator_fingerprint(&self) -> u64 {
        self.forward_model
            .weights_fingerprint()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.inverse_model.weights_fingerprint()
    }

    /// Synchronise every network's weights from `root`'s replica and the
    /// autoencoder too — trainer start-up for data-parallel replicas.
    pub fn networks_mut(&mut self) -> [&mut Sequential; 5] {
        [
            &mut self.encoder,
            &mut self.decoder,
            &mut self.forward_model,
            &mut self.inverse_model,
            &mut self.discriminator,
        ]
    }

    /// Access the whole-model pieces (ablation benches).
    pub fn networks(&self) -> [&Sequential; 5] {
        [
            &self.encoder,
            &self.decoder,
            &self.forward_model,
            &self.inverse_model,
            &self.discriminator,
        ]
    }
}

/// Mean over a batch of eval losses.
pub fn mean_eval(evals: &[EvalLosses]) -> EvalLosses {
    if evals.is_empty() {
        return EvalLosses::default();
    }
    let n = evals.len() as f32;
    EvalLosses {
        forward: evals.iter().map(|e| e.forward).sum::<f32>() / n,
        inverse: evals.iter().map(|e| e.inverse).sum::<f32>() / n,
        fidelity: evals.iter().map(|e| e.fidelity).sum::<f32>() / n,
    }
}
