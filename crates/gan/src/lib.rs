//! # ltfb-gan
//!
//! The CycleGAN surrogate model for ICF experiments (Fig. 2 of the
//! paper): a frozen multimodal autoencoder defining a 20-D latent space,
//! a forward model `F: R^5 -> R^20`, an adversarial discriminator on the
//! latent space, and an inverse model `G: R^20 -> R^5`, trained with the
//! surrogate-fidelity, physical-consistency (adversarial), internal-
//! consistency (decoder MAE) and self-consistency (cycle MAE) losses.
//!
//! The *generator* — F plus G — is the unit LTFB exchanges between
//! trainers; everything else stays trainer-local.

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod model;
pub mod quant;

pub use batch::{batch_from_samples, split_output};
pub use config::CycleGanConfig;
pub use model::{mean_eval, CycleGan, EvalLosses, NoOverlap, OverlapSync, StepLosses, SyncNet};
pub use quant::QuantCycleGan;
