//! Conversion between JAG samples and the (x, y) matrices the networks
//! consume: x rows are the 5-D inputs, y rows the multimodal output
//! bundles (15 scalars then all image pixels).

use crate::config::CycleGanConfig;
use ltfb_jag::Sample;
use ltfb_tensor::Matrix;

/// Pack samples into `(x, y)` mini-batch matrices.
pub fn batch_from_samples(cfg: &CycleGanConfig, samples: &[&Sample]) -> (Matrix, Matrix) {
    let n = samples.len();
    let mut x = Matrix::zeros(n, cfg.x_dim());
    let mut y = Matrix::zeros(n, cfg.y_dim());
    for (r, s) in samples.iter().enumerate() {
        assert_eq!(
            s.images.len(),
            cfg.jag.image_len(),
            "sample geometry does not match the model config"
        );
        x.row_mut(r).copy_from_slice(&s.params);
        let yr = y.row_mut(r);
        yr[..s.scalars.len()].copy_from_slice(&s.scalars);
        yr[s.scalars.len()..].copy_from_slice(&s.images);
    }
    (x, y)
}

/// Split a predicted output-bundle row back into `(scalars, images)`.
pub fn split_output(cfg: &CycleGanConfig, row: &[f32]) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(row.len(), cfg.y_dim());
    let n_scalars = ltfb_jag::N_SCALARS;
    (row[..n_scalars].to_vec(), row[n_scalars..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltfb_jag::{r2_point, JagSimulator};

    #[test]
    fn pack_and_split_round_trip() {
        let cfg = CycleGanConfig::small(4);
        let sim = JagSimulator::new(cfg.jag);
        let samples: Vec<_> = (0..3).map(|i| sim.simulate(r2_point(i))).collect();
        let refs: Vec<&ltfb_jag::Sample> = samples.iter().collect();
        let (x, y) = batch_from_samples(&cfg, &refs);
        assert_eq!(x.shape(), (3, 5));
        assert_eq!(y.shape(), (3, cfg.y_dim()));
        for (r, s) in samples.iter().enumerate() {
            assert_eq!(x.row(r), &s.params[..]);
            let (scalars, images) = split_output(&cfg, y.row(r));
            assert_eq!(scalars, s.scalars.to_vec());
            assert_eq!(images, s.images);
        }
    }
}
