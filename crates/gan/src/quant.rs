//! Int8 inference snapshot of the [`CycleGan`](crate::CycleGan) surrogate.
//!
//! Serving only ever exercises two compositions: the forward prediction
//! `Dec(F(x))` and the inversion `G(E(y))`. [`QuantCycleGan`] quantizes
//! exactly the four networks those paths touch (the discriminator is a
//! training-time device and stays f32), and reports the analytic
//! worst-case output error of each composition so the serve layer can
//! gate publication on accuracy instead of hoping.

use crate::model::CycleGan;
use ltfb_nn::{QuantError, QuantSequential};
use ltfb_tensor::Matrix;

/// Int8-weight inference snapshot of a [`CycleGan`]: the four networks
/// behind [`infer_forward`](QuantCycleGan::infer_forward) and
/// [`infer_inverse`](QuantCycleGan::infer_inverse), frozen at quantize
/// time. Publishing new f32 weights requires re-quantizing.
pub struct QuantCycleGan {
    encoder: QuantSequential,
    decoder: QuantSequential,
    forward_model: QuantSequential,
    inverse_model: QuantSequential,
}

impl QuantCycleGan {
    /// Forward prediction `Dec(F(x))` on the int8 path.
    pub fn infer_forward(&self, x: &Matrix) -> Matrix {
        self.infer_forward_bounded(x).0
    }

    /// Forward prediction plus its analytic worst-case absolute error
    /// versus the f32 [`CycleGan::infer_forward`]. The error carried out
    /// of `F` passes through `Dec`'s int8 GEMMs with gain at most each
    /// layer's column mass — [`QuantSequential::infer_bounded`] already
    /// composes that, so chaining bounds is just feeding the carried
    /// error forward.
    pub fn infer_forward_bounded(&self, x: &Matrix) -> (Matrix, f32) {
        let (z, ez) = self.forward_model.infer_bounded(x);
        let (y, ey) = self.decoder.infer_bounded_carry(&z, ez);
        (y, ey)
    }

    /// Inversion `G(E(y))` on the int8 path.
    pub fn infer_inverse(&self, y: &Matrix) -> Matrix {
        self.infer_inverse_bounded(y).0
    }

    /// Inversion plus its analytic worst-case absolute error versus the
    /// f32 [`CycleGan::infer_inverse`].
    pub fn infer_inverse_bounded(&self, y: &Matrix) -> (Matrix, f32) {
        let (z, ez) = self.encoder.infer_bounded(y);
        let (x, ex) = self.inverse_model.infer_bounded_carry(&z, ez);
        (x, ex)
    }
}

impl CycleGan {
    /// Quantize the inference networks to int8 weights. Fails loudly on
    /// non-finite weights or unsupported layers — serving falls back to
    /// the f32 model rather than publishing a silently-wrong one.
    pub fn quantize_int8(&self) -> Result<QuantCycleGan, QuantError> {
        let [encoder, decoder, forward_model, inverse_model, _disc] = self.networks();
        Ok(QuantCycleGan {
            encoder: QuantSequential::quantize(encoder)?,
            decoder: QuantSequential::quantize(decoder)?,
            forward_model: QuantSequential::quantize(forward_model)?,
            inverse_model: QuantSequential::quantize(inverse_model)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::CycleGanConfig;
    use crate::CycleGan;
    use ltfb_tensor::{seeded_rng, uniform};

    fn worst_abs_diff(a: &ltfb_tensor::Matrix, b: &ltfb_tensor::Matrix) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    #[test]
    fn quantized_paths_stay_within_reported_bounds() {
        let cfg = CycleGanConfig::small(4);
        let model = CycleGan::new(cfg, 42);
        let q = model.quantize_int8().expect("surrogate MLPs quantize");
        let mut rng = seeded_rng(11);
        let x = uniform(16, cfg.x_dim(), 0.0, 1.0, &mut rng);
        let y = uniform(16, cfg.y_dim(), -1.0, 1.0, &mut rng);

        let (yq, ef) = q.infer_forward_bounded(&x);
        let yf = model.infer_forward(&x);
        assert_eq!(yq.shape(), yf.shape());
        assert!(ef.is_finite() && ef > 0.0);
        let worst = worst_abs_diff(&yq, &yf);
        assert!(
            worst <= ef * 1.05 + 1e-4,
            "forward: realised {worst} exceeds bound {ef}"
        );

        let (xq, ei) = q.infer_inverse_bounded(&y);
        let xf = model.infer_inverse(&y);
        assert_eq!(xq.shape(), xf.shape());
        assert!(ei.is_finite() && ei > 0.0);
        let worst = worst_abs_diff(&xq, &xf);
        assert!(
            worst <= ei * 1.05 + 1e-4,
            "inverse: realised {worst} exceeds bound {ei}"
        );
    }

    #[test]
    fn non_finite_generator_weights_fail_quantization() {
        let cfg = CycleGanConfig::small(4);
        let mut model = CycleGan::new(cfg, 43);
        let [_, _, f, _, _] = model.networks_mut();
        f.params_mut()[0].value.as_mut_slice()[0] = f32::NAN;
        assert!(model.quantize_int8().is_err());
    }
}
