//! End-to-end training tests for the CycleGAN surrogate: the losses must
//! actually fall on the synthetic JAG problem, the exchange protocol must
//! move generators faithfully, and evaluation must be side-effect free.

use bytes::Bytes;
use ltfb_gan::{batch_from_samples, mean_eval, CycleGan, CycleGanConfig};
use ltfb_jag::{r2_point, JagSimulator, Sample};
use ltfb_tensor::Matrix;

fn dataset(cfg: &CycleGanConfig, start: u64, n: usize) -> Vec<Sample> {
    let sim = JagSimulator::new(cfg.jag);
    (0..n as u64)
        .map(|i| sim.simulate(r2_point(start + i)))
        .collect()
}

fn batches(cfg: &CycleGanConfig, samples: &[Sample], mb: usize) -> Vec<(Matrix, Matrix)> {
    samples
        .chunks(mb)
        .map(|chunk| {
            let refs: Vec<&Sample> = chunk.iter().collect();
            batch_from_samples(cfg, &refs)
        })
        .collect()
}

/// Pretrain the autoencoder, then run GAN steps; both phases must reduce
/// their objective.
#[test]
fn training_reduces_losses() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 42);
    let train = dataset(&cfg, 0, 256);
    let bs = batches(&cfg, &train, 32);

    // Autoencoder pretraining.
    let mut first_ae = None;
    let mut last_ae = 0.0;
    for epoch in 0..30 {
        for (_, y) in &bs {
            last_ae = gan.pretrain_autoencoder_step(y);
            if first_ae.is_none() {
                first_ae = Some(last_ae);
            }
        }
        let _ = epoch;
    }
    let first_ae = first_ae.unwrap();
    assert!(
        last_ae < 0.6 * first_ae,
        "autoencoder failed to learn: {first_ae} -> {last_ae}"
    );

    // Adversarial surrogate training.
    let val = dataset(&cfg, 10_000, 64);
    let (vx, vy) = {
        let refs: Vec<&Sample> = val.iter().collect();
        batch_from_samples(&cfg, &refs)
    };
    let before = gan.evaluate(&vx, &vy);
    for _ in 0..20 {
        for (x, y) in &bs {
            gan.train_step(x, y);
        }
    }
    let after = gan.evaluate(&vx, &vy);
    assert!(
        after.combined() < before.combined(),
        "validation loss did not improve: {} -> {}",
        before.combined(),
        after.combined()
    );
    assert!(
        after.inverse < before.inverse,
        "cycle consistency did not improve: {} -> {}",
        before.inverse,
        after.inverse
    );
}

/// Golden-seed trajectory equivalence: the workspace path must walk the
/// exact same weight trajectory as the allocating path, bit for bit, and
/// stop allocating pool buffers after the first step.
#[test]
fn workspace_training_trajectory_bit_identical() {
    use ltfb_nn::Workspace;
    let cfg = CycleGanConfig::small(4);
    let mut reference = CycleGan::new(cfg, 2019);
    let mut pooled = CycleGan::new(cfg, 2019);
    let train = dataset(&cfg, 0, 96);
    let bs = batches(&cfg, &train, 32);
    let mut ws = Workspace::new();
    let mut warm_misses = 0;
    for (step, (x, y)) in bs.iter().cycle().take(9).enumerate() {
        let lr = reference.train_step(x, y);
        let lw = pooled.train_step_ws(x, y, &mut ws);
        assert_eq!(
            lr.d_loss.to_bits(),
            lw.d_loss.to_bits(),
            "step {step}: d_loss drifted"
        );
        assert_eq!(
            lr.generator_total(&cfg).to_bits(),
            lw.generator_total(&cfg).to_bits(),
            "step {step}: generator loss drifted"
        );
        if step == 2 {
            // Batches repeat with period 3: every shape is warm now.
            warm_misses = ws.misses();
        }
    }
    for (a, b) in reference.networks().iter().zip(pooled.networks().iter()) {
        assert_eq!(
            a.weights_fingerprint(),
            b.weights_fingerprint(),
            "workspace path diverged from reference weights"
        );
    }
    assert_eq!(
        ws.misses(),
        warm_misses,
        "steady-state training steps must not allocate pool buffers"
    );
    assert!(ws.hits() > 0);
}

/// Golden-seed serial bit-identity for the overlapped step: with the
/// no-op sync, `train_step_ws_overlapped` must walk the exact same
/// weight trajectory as `train_step_ws` — the hooked backward is the
/// same arithmetic plus callbacks — and stay zero-alloc once warm.
#[test]
fn overlapped_step_with_noop_sync_bit_identical_to_ws() {
    use ltfb_gan::NoOverlap;
    use ltfb_nn::Workspace;
    let cfg = CycleGanConfig::small(4);
    let mut reference = CycleGan::new(cfg, 2019);
    let mut overlapped = CycleGan::new(cfg, 2019);
    let train = dataset(&cfg, 0, 96);
    let bs = batches(&cfg, &train, 32);
    let mut ws_ref = Workspace::new();
    let mut ws_ov = Workspace::new();
    let mut warm_misses = 0;
    for (step, (x, y)) in bs.iter().cycle().take(9).enumerate() {
        let lr = reference.train_step_ws(x, y, &mut ws_ref);
        let lo = overlapped.train_step_ws_overlapped(x, y, &mut ws_ov, &mut NoOverlap);
        assert_eq!(
            lr.d_loss.to_bits(),
            lo.d_loss.to_bits(),
            "step {step}: d_loss drifted"
        );
        assert_eq!(
            lr.generator_total(&cfg).to_bits(),
            lo.generator_total(&cfg).to_bits(),
            "step {step}: generator loss drifted"
        );
        if step == 2 {
            warm_misses = ws_ov.misses();
        }
    }
    for (a, b) in reference
        .networks()
        .iter()
        .zip(overlapped.networks().iter())
    {
        assert_eq!(
            a.weights_fingerprint(),
            b.weights_fingerprint(),
            "overlapped path diverged from workspace reference weights"
        );
    }
    assert_eq!(
        ws_ov.misses(),
        warm_misses,
        "steady-state overlapped steps must not allocate pool buffers"
    );
}

#[test]
fn evaluate_is_side_effect_free() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 7);
    let val = dataset(&cfg, 0, 16);
    let refs: Vec<&Sample> = val.iter().collect();
    let (x, y) = batch_from_samples(&cfg, &refs);
    let a = gan.evaluate(&x, &y);
    let b = gan.evaluate(&x, &y);
    assert_eq!(
        a.combined(),
        b.combined(),
        "evaluation must not change the model"
    );
    assert_eq!(gan.generator_fingerprint(), gan.generator_fingerprint());
}

#[test]
fn generator_exchange_transfers_behaviour() {
    let cfg = CycleGanConfig::small(4);
    let mut a = CycleGan::new(cfg, 1);
    let mut b = CycleGan::new(cfg, 2);
    assert_ne!(a.generator_fingerprint(), b.generator_fingerprint());

    let val = dataset(&cfg, 0, 8);
    let refs: Vec<&Sample> = val.iter().collect();
    let (x, _y) = batch_from_samples(&cfg, &refs);

    let a_pred = a.predict(&x);
    b.load_generator(a.generator_to_bytes()).unwrap();
    assert_eq!(
        a.generator_fingerprint(),
        b.generator_fingerprint(),
        "exchange must copy the generator exactly"
    );
    // b's decoder differs (stays local), so compare latent codes through
    // the same decoder: predictions under a's decoder must match if we
    // compare F outputs — use cycle side instead, which is pure F+G.
    let a_cycle = {
        let z = a_pred; // decoder of a
        z
    };
    let _ = a_cycle;
    // F+G behaviour must be identical: invert-of-predict path through
    // exchanged nets only.
    let za = a.generator_to_bytes();
    let zb = b.generator_to_bytes();
    assert_eq!(
        &za[..],
        &zb[..],
        "serialized generators must be byte-identical"
    );
}

#[test]
fn discriminator_stays_local_through_exchange() {
    let cfg = CycleGanConfig::small(4);
    let a = CycleGan::new(cfg, 1);
    let mut b = CycleGan::new(cfg, 2);
    // Train b's discriminator a little so it differs from fresh init.
    let train = dataset(&cfg, 0, 32);
    let refs: Vec<&Sample> = train.iter().collect();
    let (x, y) = batch_from_samples(&cfg, &refs);
    b.train_step(&x, &y);
    let b_disc_before = b.networks()[4].weights_fingerprint();
    b.load_generator(a.generator_to_bytes()).unwrap();
    let b_disc_after = b.networks()[4].weights_fingerprint();
    assert_eq!(
        b_disc_before, b_disc_after,
        "exchange must not touch the discriminator"
    );
    // Encoder/decoder also stay local.
    assert_ne!(
        a.networks()[0].weights_fingerprint(),
        b.networks()[0].weights_fingerprint()
    );
}

#[test]
fn corrupted_generator_payload_rejected() {
    let cfg = CycleGanConfig::small(4);
    let a = CycleGan::new(cfg, 1);
    let mut b = CycleGan::new(cfg, 2);
    let mut raw = a.generator_to_bytes().to_vec();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    assert!(b.load_generator(Bytes::from(raw)).is_err());
    let truncated = a.generator_to_bytes().slice(..10);
    assert!(b.load_generator(truncated).is_err());
}

#[test]
fn predictions_have_output_geometry() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 3);
    let x = Matrix::full(6, 5, 0.5);
    let y_hat = gan.predict(&x);
    assert_eq!(y_hat.shape(), (6, cfg.y_dim()));
    let x_hat = gan.invert(&y_hat);
    assert_eq!(x_hat.shape(), (6, 5));
    // Inverse model has sigmoid output: predictions in [0, 1] like the
    // design space.
    assert!(x_hat.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
}

#[test]
fn adversarial_game_moves_discriminator() {
    let cfg = CycleGanConfig::small(4);
    let mut gan = CycleGan::new(cfg, 4);
    let train = dataset(&cfg, 0, 64);
    let refs: Vec<&Sample> = train.iter().collect();
    let (x, y) = batch_from_samples(&cfg, &refs);
    let d0 = gan.networks()[4].weights_fingerprint();
    let losses = gan.train_step(&x, &y);
    let d1 = gan.networks()[4].weights_fingerprint();
    assert_ne!(d0, d1, "discriminator must update");
    assert!(losses.d_loss > 0.0 && losses.adv > 0.0);
    assert!(losses.fidelity > 0.0 && losses.cycle > 0.0 && losses.recon > 0.0);
    assert!(losses.generator_total(&cfg) > 0.0);
}

#[test]
fn mean_eval_averages() {
    use ltfb_gan::EvalLosses;
    let a = EvalLosses {
        forward: 1.0,
        inverse: 2.0,
        fidelity: 3.0,
    };
    let b = EvalLosses {
        forward: 3.0,
        inverse: 0.0,
        fidelity: 1.0,
    };
    let m = mean_eval(&[a, b]);
    assert_eq!(m.forward, 2.0);
    assert_eq!(m.inverse, 1.0);
    assert_eq!(m.fidelity, 2.0);
    assert_eq!(mean_eval(&[]).combined(), 0.0);
}
