//! Property-based tests for the CycleGAN surrogate's exchange payloads
//! and training-step invariants.

use bytes::Bytes;
use ltfb_gan::{CycleGan, CycleGanConfig};
use ltfb_tensor::Matrix;
use proptest::prelude::*;

fn gan(seed: u64) -> CycleGan {
    CycleGan::new(CycleGanConfig::small(4), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generator payloads round-trip across arbitrary seed pairs, and the
    /// receiver's non-generator networks never change.
    #[test]
    fn generator_exchange_round_trip(sa in any::<u64>(), sb in any::<u64>()) {
        prop_assume!(sa != sb);
        let a = gan(sa);
        let mut b = gan(sb);
        let enc_before = b.networks()[0].weights_fingerprint();
        let dec_before = b.networks()[1].weights_fingerprint();
        let disc_before = b.networks()[4].weights_fingerprint();
        b.load_generator(a.generator_to_bytes()).unwrap();
        prop_assert_eq!(b.generator_fingerprint(), a.generator_fingerprint());
        prop_assert_eq!(b.networks()[0].weights_fingerprint(), enc_before);
        prop_assert_eq!(b.networks()[1].weights_fingerprint(), dec_before);
        prop_assert_eq!(b.networks()[4].weights_fingerprint(), disc_before);
    }

    /// Any single corrupted byte in a generator payload is rejected.
    #[test]
    fn corrupted_generator_rejected(seed in any::<u64>(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let a = gan(seed);
        let mut b = gan(seed.wrapping_add(1));
        let mut raw = a.generator_to_bytes().to_vec();
        // Stay inside a payload region (skip the outer length prefix).
        let idx = 40 + ((raw.len() - 60) as f64 * pos_frac) as usize;
        raw[idx] ^= flip;
        prop_assert!(b.load_generator(Bytes::from(raw)).is_err(),
            "corruption at byte {idx} accepted");
    }

    /// swap-in/swap-out of a foreign generator is an exact involution
    /// (tournament restore path).
    #[test]
    fn swap_restore_is_identity(sa in any::<u64>(), sb in any::<u64>()) {
        let a = gan(sa);
        let mut b = gan(sb);
        let own = b.generator_to_bytes();
        let fp = b.generator_fingerprint();
        b.swap_generator_weights(a.generator_to_bytes()).unwrap();
        b.swap_generator_weights(own).unwrap();
        prop_assert_eq!(b.generator_fingerprint(), fp);
    }

    /// Training steps keep every network finite for inputs across the
    /// design cube (no NaN blowups from the adversarial game).
    #[test]
    fn train_step_stays_finite(seed in any::<u64>(), scale in 0.1f32..1.0) {
        let mut g = gan(seed);
        let cfg = g.cfg;
        let x = Matrix::full(8, 5, scale.clamp(0.0, 1.0));
        let y = Matrix::full(8, cfg.y_dim(), scale * 0.5);
        for _ in 0..3 {
            let l = g.train_step(&x, &y);
            prop_assert!(l.d_loss.is_finite() && l.adv.is_finite());
            prop_assert!(l.fidelity.is_finite() && l.cycle.is_finite() && l.recon.is_finite());
        }
        let pred = g.predict(&x);
        prop_assert!(pred.all_finite());
    }

    /// Evaluation losses are non-negative and symmetric in batch order.
    #[test]
    fn evaluate_invariants(seed in any::<u64>()) {
        let mut g = gan(seed);
        let cfg = g.cfg;
        let x = ltfb_tensor::uniform(6, 5, 0.0, 1.0, &mut ltfb_tensor::seeded_rng(seed));
        let y = ltfb_tensor::uniform(6, cfg.y_dim(), 0.0, 1.0, &mut ltfb_tensor::seeded_rng(seed ^ 1));
        let e = g.evaluate(&x, &y);
        prop_assert!(e.forward >= 0.0 && e.inverse >= 0.0 && e.fidelity >= 0.0);
        // Reversing the batch rows must not change the mean losses.
        let rev: Vec<usize> = (0..6).rev().collect();
        let e2 = g.evaluate(&x.gather_rows(&rev), &y.gather_rows(&rev));
        prop_assert!((e.combined() - e2.combined()).abs() < 1e-5);
    }
}
