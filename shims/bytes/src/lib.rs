//! Vendored offline shim for the subset of the `bytes` crate this
//! workspace uses: cheaply cloneable immutable buffers ([`Bytes`]), an
//! append-only builder ([`BytesMut`]), and the little-endian cursor traits
//! ([`Buf`], [`BufMut`]).
//!
//! [`Bytes`] shares one allocation across clones and sub-slices via `Arc`,
//! so model-exchange payloads are reference-counted views, as with the
//! real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer; reading via [`Buf`] advances
/// an internal cursor, and `Deref` exposes the *remaining* bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Borrow a static slice (copies here; the shim keeps one ownership
    /// model rather than a borrowed variant).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A sub-view of the remaining bytes, sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.len() >= N,
            "buffer underflow: need {N}, have {}",
            self.len()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// Growable byte builder; [`BufMut`] writes append at the tail.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Read cursor over a byte buffer (little-endian accessors).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn get_f32_le(&mut self) -> f32;
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        *self = &self[n..];
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(&self[..len]);
        *self = &self[len..];
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Slice cursor helper backing the `&[u8]` [`Buf`] impl.
trait TakeArray {
    fn take_array<const N: usize>(&mut self) -> [u8; N];
}

impl TakeArray for &[u8] {
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.len() >= N,
            "buffer underflow: need {N}, have {}",
            self.len()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Write cursor appending little-endian values.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i64_le(-9);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(&r[..], b"xyz");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut r = Bytes::from(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let _ = r.get_u32_le();
        assert_eq!(&r[..2], &[5, 6]);
        assert_eq!(r.remaining(), 5);
    }

    #[test]
    fn copy_to_bytes_shares_and_advances() {
        let mut r = Bytes::from((0u8..32).collect::<Vec<_>>());
        r.advance(4);
        let mid = r.copy_to_bytes(8);
        assert_eq!(&mid[..], (4u8..12).collect::<Vec<_>>().as_slice());
        assert_eq!(r.remaining(), 20);
        assert_eq!(r[0], 12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1, 2]);
        let _ = r.get_u32_le();
    }
}
