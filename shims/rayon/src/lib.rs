//! Vendored offline shim for the `rayon` API surface this workspace uses:
//! `par_chunks_mut(..).enumerate().for_each(..)` over mutable slices.
//!
//! Work is fanned out over scoped std threads. Small inputs run inline —
//! scoped-thread spawn costs microseconds, so parallelism only pays above
//! a size threshold; the GEMM panels this backs are bit-identical either
//! way because chunks are disjoint and each chunk's computation does not
//! depend on the split.

/// Below this many elements the dispatch runs inline on the caller.
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// Extension trait mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// elements (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Parallel chunk iterator (consume with [`Self::for_each`] or
/// [`Self::enumerate`]).
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { inner: self }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive(self.data, self.chunk_size, &|_, chunk| f(chunk));
    }
}

/// Enumerated parallel chunk iterator.
pub struct EnumerateParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumerateParChunksMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        drive(self.inner.data, self.inner.chunk_size, &|i, chunk| {
            f((i, chunk))
        });
    }
}

/// Cached worker count: `available_parallelism` reads cgroup files on
/// Linux (allocating) — far too expensive to consult on every dispatch
/// from an allocation-free hot loop.
fn hardware_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    })
}

fn drive<T: Send>(data: &mut [T], chunk_size: usize, f: &(dyn Fn(usize, &mut [T]) + Sync)) {
    // Inline check first: small dispatches must not touch the (possibly
    // syscalling) worker-count probe at all.
    if data.len() < PARALLEL_THRESHOLD {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_size);
    let workers = hardware_workers().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks_per_worker = n_chunks.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut next_index = 0;
        while !rest.is_empty() {
            let take = (chunks_per_worker * chunk_size).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = next_index;
            next_index += head.len().div_ceil(chunk_size);
            s.spawn(move || {
                for (i, chunk) in head.chunks_mut(chunk_size).enumerate() {
                    f(base + i, chunk);
                }
            });
        }
    });
}

pub mod slice {
    pub use crate::ParallelSliceMut;
}

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn small_input_runs_inline() {
        let mut v: Vec<u32> = (0..100).collect();
        v.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += (i * 1000) as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[7], 1007);
        assert_eq!(v[99], 14099);
    }

    #[test]
    fn large_input_matches_serial_reference() {
        let n = (1 << 16) + 13;
        let mut par: Vec<u64> = (0..n).collect();
        let mut ser: Vec<u64> = (0..n).collect();
        par.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = x.wrapping_mul(i as u64 + 1).wrapping_add(j as u64);
            }
        });
        for (i, c) in ser.chunks_mut(64).enumerate() {
            for (j, x) in c.iter_mut().enumerate() {
                *x = x.wrapping_mul(i as u64 + 1).wrapping_add(j as u64);
            }
        }
        assert_eq!(par, ser);
    }

    #[test]
    fn ragged_tail_chunk_covered() {
        let mut v = vec![0u8; (1 << 15) + 5];
        v.par_chunks_mut(1000).for_each(|c| c.fill(1));
        assert!(v.iter().all(|&b| b == 1));
    }
}
