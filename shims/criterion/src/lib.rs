//! Vendored offline shim for the `criterion` API surface this workspace
//! uses: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and
//! `Bencher::iter`.
//!
//! Measurement is deliberately simple — a short calibration pass picks an
//! iteration count targeting ~100ms per sample, then `sample_size`
//! samples are timed and the mean/min reported to stdout. No statistical
//! analysis, HTML reports, or baseline comparison; good enough to rank
//! kernels and catch order-of-magnitude regressions offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark context handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 30,
            throughput: None,
        }
    }

    /// Group-less convenience used by some criterion setups.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("default");
        g.bench_function(name.to_string(), f);
        g.finish();
        self
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let (mean, min) = b.stats(self.sample_size);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} mean {:>12}  min {:>12}{}",
            self.name,
            id,
            fmt_time(mean),
            fmt_time(min),
            rate
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Per-benchmark timing driver: the closure passed to `bench_function`
/// calls [`Bencher::iter`], which records samples immediately.
#[derive(Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

/// Per-sample time budget; calibration aims each timed sample near this.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Hard cap on total time spent in one benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the per-sample budget?
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= SAMPLE_BUDGET / 4 || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample *= 2;
        }
        // Timed samples until the bench budget runs out (at least 2).
        let start = Instant::now();
        self.samples.clear();
        while self.samples.len() < 2 || start.elapsed() < BENCH_BUDGET {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
            if self.samples.len() >= 512 {
                break;
            }
        }
    }

    /// (mean, min) over up to `limit` recorded samples.
    fn stats(&self, limit: usize) -> (f64, f64) {
        let take = self.samples.len().min(limit.max(2));
        let s = &self.samples[..take.min(self.samples.len())];
        if s.is_empty() {
            return (0.0, 0.0);
        }
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        (mean, min)
    }
}

/// Define a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(selftest, tiny_bench);

    #[test]
    fn group_runs_and_records_samples() {
        selftest();
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64) * 7);
        let (mean, min) = b.stats(10);
        assert!(mean > 0.0 && min > 0.0 && min <= mean * 1.0001);
    }
}
