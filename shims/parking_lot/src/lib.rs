//! Vendored offline shim for `parking_lot` 0.12: wraps the std primitives
//! behind parking_lot's non-poisoning API. A panic while holding a lock
//! simply releases it (poison is discarded), which matches parking_lot's
//! observable behaviour for the workspace's uses.

use std::sync::{self, TryLockError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult};

/// Non-poisoning mutual exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait; re-acquires before
    /// returning. (parking_lot mutates the guard in place; the shim swaps
    /// it through std's consuming API.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut result = None;
        take_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            result = Some(r);
            g
        });
        result.expect("wait_timeout did not run")
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the owned guard, writing the returned guard back in place.
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten before being overwritten, so the old
    // guard is never dropped (its lock ownership transfers through `f`),
    // and `ptr::write` installs the re-acquired guard without reading the
    // stale value. A panic inside `f` (impossible for std condvar waits
    // after poison recovery) would leak a forgotten guard, never
    // double-unlock.
    unsafe {
        let owned = std::ptr::read(slot);
        let new_guard = f(owned);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
