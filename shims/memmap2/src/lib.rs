//! Offline shim for the `memmap2` crate: read-only file "mappings" with
//! the real crate's observable semantics for the subset this workspace
//! uses.
//!
//! The genuine `memmap2::Mmap::map` is `unsafe` (the kernel may change
//! the file under the mapping); this workspace forbids `unsafe` outright,
//! so the shim *snapshots* the file into an owned buffer instead of
//! issuing `mmap(2)`. Two semantics matter to callers and are preserved:
//!
//! * a mapping is an immutable `&[u8]` view of the file as it was at map
//!   time — later appends by a writer are **not** visible until the
//!   caller re-maps (exactly how a fixed-length real mapping behaves);
//! * [`Mmap::as_f32s`] hands out aligned `&[f32]` views without copying
//!   per call — the stand-in for the `bytemuck`-style cast consumers do
//!   on a real mapping. The word buffer is decoded once at map time
//!   (little-endian), so repeated sample views are zero-copy slices.
//!
//! The snapshot costs one extra copy of the file relative to a true
//! mapping; for the out-of-core store this preserves the *access
//! pattern* (no per-fetch deserialisation, no per-fetch I/O) which is
//! what the workspace measures.

#![forbid(unsafe_code)]

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::Path;

/// A read-only mapping of a file (see module docs for shim semantics).
pub struct Mmap {
    bytes: Vec<u8>,
    /// The file's 4-byte-aligned prefix decoded as little-endian f32
    /// words, so [`Mmap::as_f32s`] is a plain slice borrow.
    words: Vec<f32>,
}

impl Mmap {
    /// Map `file` from offset 0, regardless of its current cursor.
    ///
    /// Safe in this shim (it snapshots; see module docs) where the real
    /// crate's is `unsafe`.
    pub fn map(file: &File) -> std::io::Result<Mmap> {
        let mut f = file;
        f.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Ok(Mmap::from_bytes(bytes))
    }

    /// Convenience: open `path` read-only and map it.
    pub fn map_path(path: &Path) -> std::io::Result<Mmap> {
        Mmap::map(&File::open(path)?)
    }

    fn from_bytes(bytes: Vec<u8>) -> Mmap {
        let words = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Mmap { bytes, words }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A zero-copy `&[f32]` view of `count` words starting at byte
    /// offset `byte_off`. `None` if the offset is not 4-byte aligned or
    /// the range runs past the mapping.
    pub fn as_f32s(&self, byte_off: usize, count: usize) -> Option<&[f32]> {
        if !byte_off.is_multiple_of(4) {
            return None;
        }
        let start = byte_off / 4;
        let end = start.checked_add(count)?;
        self.words.get(start..end)
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(tag: &str, contents: &[u8]) -> PathBuf {
        let p = std::env::temp_dir().join(format!("memmap2-shim-{tag}-{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_whole_file_as_bytes() {
        let p = temp_file("bytes", b"hello mapping");
        let m = Mmap::map_path(&p).unwrap();
        assert_eq!(&*m, b"hello mapping");
        assert_eq!(m.len(), 13);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn f32_views_decode_little_endian_words() {
        let vals = [1.5f32, -2.25, 3.0e7, f32::MIN_POSITIVE];
        let mut raw = Vec::new();
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let p = temp_file("f32", &raw);
        let m = Mmap::map_path(&p).unwrap();
        assert_eq!(m.as_f32s(0, 4).unwrap(), &vals);
        assert_eq!(m.as_f32s(4, 2).unwrap(), &vals[1..3]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn misaligned_or_overlong_views_are_refused() {
        let p = temp_file("refuse", &[0u8; 16]);
        let m = Mmap::map_path(&p).unwrap();
        assert!(m.as_f32s(2, 1).is_none(), "unaligned offset");
        assert!(m.as_f32s(0, 5).is_none(), "past the end");
        assert!(m.as_f32s(16, 1).is_none());
        assert_eq!(m.as_f32s(12, 1).unwrap().len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn map_ignores_file_cursor_and_snapshots() {
        let p = temp_file("cursor", b"0123456789");
        let mut f = File::open(&p).unwrap();
        f.seek(SeekFrom::Start(5)).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(&*m, b"0123456789");
        // Appends after mapping are invisible until a re-map.
        let mut w = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        w.write_all(b"AB").unwrap();
        drop(w);
        assert_eq!(m.len(), 10);
        let remapped = Mmap::map_path(&p).unwrap();
        assert_eq!(remapped.len(), 12);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let p = temp_file("empty", b"");
        let m = Mmap::map_path(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_f32s(0, 0).unwrap(), &[] as &[f32]);
        std::fs::remove_file(&p).unwrap();
    }
}
