//! Vendored offline shim for `crossbeam-channel` 0.5: multi-producer
//! multi-consumer channels built on `Mutex` + `Condvar`.
//!
//! Semantics match the real crate for the API subset the workspace uses:
//! senders and receivers are both cloneable; `send` fails once every
//! receiver is gone; `recv` drains remaining messages and then fails once
//! every sender is gone; bounded channels block senders at capacity
//! (`try_send` reports `Full` instead of blocking).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Error from [`Sender::send`]: all receivers disconnected. Returns the
/// unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error from [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Bounded channel at capacity.
    Full(T),
    /// All receivers disconnected.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error from [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error from [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // The shim never panics while holding the lock, but be robust to
        // poisoning from panicking user closures on other threads.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Channel buffering at most `cap` messages; senders block at capacity.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send, blocking while a bounded channel is at capacity.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Non-blocking send; reports `Full` at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake blocked receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message or total sender disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Blocking iterator; ends when the channel is empty and disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator over currently buffered messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake blocked senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_blocks_and_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
