//! Vendored offline shim for the parts of `rand` 0.8 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal in-tree implementations of its external dependencies (see
//! `shims/README.md`). This crate provides:
//!
//! * [`RngCore`] — the raw 32/64-bit generator interface;
//! * [`SeedableRng`] — seeded construction (`seed_from_u64`, `from_seed`);
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`,
//!   `gen_bool`, `fill`), blanket-implemented for every [`RngCore`].
//!
//! Determinism is the only contract the workspace relies on (all draws go
//! through seeded ChaCha streams); the exact output values of upstream
//! `rand` are *not* reproduced.

/// Raw generator interface: everything derives from `next_u32`/`next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in chunks.by_ref() {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeded construction of a deterministic generator.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for the ChaCha generators).
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with SplitMix64, matching the
    /// approach (though not the exact bytes) of upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample(rng);
        // Clamp below end: rounding in the lerp can hit `end` exactly.
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// The ergonomic sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = Lcg(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u64);
            assert!(w <= 4);
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = Lcg(13);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5f32..0.25);
            assert!((-0.5..0.25).contains(&v), "{v}");
        }
    }
}
