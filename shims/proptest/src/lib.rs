//! Vendored offline shim for the `proptest` 1.x API surface this
//! workspace uses.
//!
//! Provides random-input property testing: strategies (ranges, tuples,
//! arrays, collections, regex-lite string patterns, `prop_map` /
//! `prop_filter` / `prop_recursive`, `prop_oneof!`), the `proptest!` test
//! macro, and `prop_assert*` / `prop_assume!`. Unlike the real crate
//! there is **no shrinking** — a failing case reports its inputs via the
//! panic message instead of minimising them — and case generation is
//! deterministic per (test, case-index) so CI failures reproduce exactly.

use std::collections::BTreeMap;
use std::rc::Rc;

pub mod test_runner {
    /// Deterministic generator state for one test case (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count, try another.
        Reject(String),
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Attempt multiplier before giving up on a test whose assumptions
        /// reject too often.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
///
/// Object-safety note: `sample` takes `&self` and combinators build plain
/// structs, so strategies compose by value like the real crate's.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy: generate a value, then sample from
    /// the strategy it selects (the real crate's flat-map).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Discard values failing `pred` (resampled, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = Rc::new(self);
        BoxedStrategy {
            sample: Rc::new(move |rng| s.sample(rng)),
        }
    }

    /// Build recursive structures: `depth` levels of `expand` applied on
    /// top of `self` as the leaf strategy. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of the real crate are accepted
    /// and ignored.
    fn prop_recursive<B, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        B: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> B,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for level in 0..depth {
            let branch = expand(strat).boxed();
            let leaf = leaf.clone();
            // Deeper levels lean more on leaves so trees stay bounded.
            let leaf_bias = 0.4 + 0.1 * level as f64;
            strat = BoxedStrategy {
                sample: Rc::new(move |rng: &mut TestRng| {
                    if rng.unit_f64() < leaf_bias {
                        leaf.sample(rng)
                    } else {
                        branch.sample(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    /// Arbitrary *bit patterns* — includes NaN and the infinities, which
    /// is what the workspace's `prop_filter("finite", ..)` guards expect
    /// to see occasionally.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy for any value of `T` (full range).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

/// `&str` as a strategy: a regex-lite pattern producing `String`s.
///
/// Supported syntax (everything the workspace's tests use): literal
/// characters, character classes `[a-z0-9_ ]` with ranges, and counted
/// repetition `{n}` / `{m,n}` after a class or literal.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One unit: a class or a literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad repeat lower bound"),
                    hi.trim().parse::<usize>().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies (`prop::collection::{vec, btree_map}`).
/// The real crate's `prop::sample` module: strategies for picking
/// positions out of runtime-sized collections.
pub mod sample_support {
    use crate::test_runner::TestRng;
    use crate::Arbitrary;

    /// An index into a collection whose length is only known inside the
    /// test body (`any::<Index>()` then `idx.index(len)`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`. Panics on `len == 0` like the real crate.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vector with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    }

    /// Map with entry count drawn from `size` (duplicate keys collapse, as
    /// in the real crate).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Uniformly pick one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::one_of(arms)
    }};
}

/// Runtime helper behind [`prop_oneof!`].
pub fn one_of<V: 'static>(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
    assert!(!arms.is_empty());
    BoxedStrategy {
        sample: Rc::new(move |rng: &mut TestRng| {
            let k = rng.below(arms.len() as u64) as usize;
            arms[k].sample(rng)
        }),
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`) at {}:{}",
                l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {} at {}:{}",
                l, r, format!($($fmt)*), file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{:?}`) at {}:{}",
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// The property-test macro: each `fn name(bindings...) { body }` becomes a
/// `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Per-test deterministic seed stream.
            let test_seed: u64 = {
                let name = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                if attempts > config.cases + config.max_global_rejects {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                }
                let mut rng = $crate::test_runner::TestRng::new(
                    test_seed ^ (attempts as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (attempt {}): {}",
                            stringify!($name), passed, attempts, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };

    /// `prop::collection::...` / `prop::sample::...` paths as used in
    /// test files.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample_support as sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_sampler_respects_syntax() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::sample_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0.0f32..=1.0, s in any::<u64>()) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            let _ = s;
        }

        #[test]
        fn tuple_pattern_destructures((x, y) in (0u8..4, 10i64..20)) {
            prop_assert!(x < 4);
            prop_assert!((10..20).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn collections_and_oneof(
            xs in prop::collection::vec(any::<u8>(), 0..8),
            pick in prop_oneof![Just(1u32), Just(2), Just(3)],
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn always_fails(v in 0u8..4) {
                prop_assert!(v % 7 == 5, "v was {}", v);
            }
        }
        always_fails();
    }
}
