//! Offline shim for the `wide` crate: an 8-lane `f32` SIMD vector.
//!
//! The workspace forbids `unsafe` everywhere (enforced by ltfb-analyze
//! rule LA006), so this shim cannot reach for `core::arch` intrinsics or
//! nightly `std::simd`. Instead [`f32x8`] wraps a `[f32; 8]` and
//! implements every operation as a fixed-length lane loop. LLVM reliably
//! turns these 8-wide loops into vector instructions at `opt-level >= 2`
//! on x86-64 (SSE/AVX) and aarch64 (NEON) — the same codegen strategy the
//! real `wide` crate uses on targets without explicit intrinsics.
//!
//! Semantics contract (the kernels in `ltfb-tensor` depend on it):
//!
//! * every lane op is exactly the scalar IEEE-754 `f32` op — *no* FMA
//!   contraction, no reassociation, no flush-to-zero. `a * b + c` rounds
//!   twice, exactly like the scalar expression, so SIMD and scalar
//!   kernels are bit-identical and NaN/Inf propagate lane-wise;
//! * [`f32x8::reduce_add`] folds lanes strictly left-to-right from
//!   `+0.0` (`((0.0+l0)+l1)+...`), matching the scalar 8-accumulator
//!   reduction (`iter().sum::<f32>()`) the pre-SIMD kernels used.

#![forbid(unsafe_code)]

use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Number of `f32` lanes in [`f32x8`].
pub const LANES: usize = 8;

/// An 8-lane `f32` vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[allow(non_camel_case_types)]
pub struct f32x8 {
    lanes: [f32; 8],
}

impl f32x8 {
    /// All lanes zero.
    pub const ZERO: f32x8 = f32x8 { lanes: [0.0; 8] };

    /// Broadcast `v` into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        f32x8 { lanes: [v; 8] }
    }

    /// Build from an array.
    #[inline(always)]
    pub fn new(lanes: [f32; 8]) -> Self {
        f32x8 { lanes }
    }

    /// Load from the first 8 elements of a slice. Panics if `s.len() < 8`.
    #[inline(always)]
    pub fn from_slice(s: &[f32]) -> Self {
        f32x8 {
            lanes: [s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]],
        }
    }

    /// Store into the first 8 elements of a slice. Panics if `out.len() < 8`.
    #[inline(always)]
    pub fn write_to_slice(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.lanes);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        self.lanes
    }

    /// Borrow the lanes.
    #[inline(always)]
    pub fn as_array_ref(&self) -> &[f32; 8] {
        &self.lanes
    }

    /// Strict left-to-right horizontal sum starting from `+0.0`:
    /// `((0.0 + l0) + l1) + ...`.
    ///
    /// This deliberately mirrors the scalar 8-accumulator reduction
    /// (`acc.iter().sum::<f32>()`, which folds from `0.0`) so SIMD dot
    /// products are bit-identical to the scalar reference — including
    /// the signed-zero case, where the leading `+0.0` turns an all-`-0.0`
    /// lane sum into `+0.0` exactly like `Sum<f32>` does.
    #[inline(always)]
    pub fn reduce_add(self) -> f32 {
        self.lanes.iter().copied().fold(0.0f32, |acc, l| acc + l)
    }

    /// Lane-wise `max`.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut lanes = self.lanes;
        for (l, r) in lanes.iter_mut().zip(rhs.lanes) {
            *l = l.max(r);
        }
        f32x8 { lanes }
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut lanes = self.lanes;
        for l in &mut lanes {
            *l = l.abs();
        }
        f32x8 { lanes }
    }
}

impl From<[f32; 8]> for f32x8 {
    #[inline(always)]
    fn from(lanes: [f32; 8]) -> Self {
        f32x8 { lanes }
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for f32x8 {
            type Output = f32x8;
            #[inline(always)]
            fn $method(self, rhs: f32x8) -> f32x8 {
                let mut lanes = [0.0f32; 8];
                for i in 0..8 {
                    lanes[i] = self.lanes[i] $op rhs.lanes[i];
                }
                f32x8 { lanes }
            }
        }
        impl $assign_trait for f32x8 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: f32x8) {
                for i in 0..8 {
                    self.lanes[i] = self.lanes[i] $op rhs.lanes[i];
                }
            }
        }
    };
}

lanewise_binop!(Add, add, +, AddAssign, add_assign);
lanewise_binop!(Sub, sub, -, SubAssign, sub_assign);
lanewise_binop!(Mul, mul, *, MulAssign, mul_assign);

impl Neg for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn neg(self) -> f32x8 {
        let mut lanes = self.lanes;
        for l in &mut lanes {
            *l = -*l;
        }
        f32x8 { lanes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_arith_are_lanewise() {
        let a = f32x8::splat(2.0);
        let b = f32x8::from([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(
            (a * b).to_array(),
            [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
        );
        assert_eq!(
            (a + b).to_array(),
            [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        );
        assert_eq!(
            (b - a).to_array(),
            [-1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
    }

    #[test]
    fn mul_add_is_not_contracted() {
        // a * b + c must round twice, exactly like scalar f32 code: the
        // kernels rely on bit-identity with their scalar references.
        let a = 1.000_000_1f32;
        let b = 1.000_000_2f32;
        let c = -1.000_000_3f32;
        let scalar = a * b + c;
        let v = f32x8::splat(a) * f32x8::splat(b) + f32x8::splat(c);
        for lane in v.to_array() {
            assert_eq!(lane.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn reduce_add_folds_left_to_right() {
        // Values chosen so the fold order is observable in f32.
        let v = f32x8::from([1e8, 1.0, -1e8, 1.0, 0.5, 0.25, 0.125, 0.0625]);
        let expected = {
            let l = v.to_array();
            l.iter().sum::<f32>()
        };
        assert_eq!(v.reduce_add().to_bits(), expected.to_bits());
        // Signed zero: Sum<f32> folds from +0.0, so an all-(-0.0) vector
        // reduces to +0.0. reduce_add must match bit-for-bit.
        let z = f32x8::splat(-0.0);
        assert_eq!(z.reduce_add().to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn nan_and_inf_propagate_lanewise() {
        let a = f32x8::from([f32::NAN, f32::INFINITY, 0.0, 1.0, -1.0, 0.0, 0.0, 0.0]);
        let b = f32x8::splat(0.0);
        let prod = (a * b).to_array();
        assert!(prod[0].is_nan());
        assert!(prod[1].is_nan(), "0 * inf must be NaN");
        assert_eq!(prod[2], 0.0);
    }

    #[test]
    fn slice_round_trip() {
        let src: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let v = f32x8::from_slice(&src);
        let mut out = [0.0f32; 9];
        v.write_to_slice(&mut out);
        assert_eq!(&out[..8], &src[..8]);
        assert_eq!(out[8], 0.0);
    }
}
