//! Vendored offline shim for `rand_chacha` 0.3: a genuine ChaCha8 stream
//! cipher used as a deterministic RNG.
//!
//! This is a faithful ChaCha implementation (RFC 8439 quarter-round and
//! block function, 8 double-rounds) — only the integration glue with the
//! `rand` crate is simplified. Output is deterministic in the seed, which
//! is the property the workspace depends on; byte-exact agreement with
//! upstream `rand_chacha` is not claimed.

use rand::{RngCore, SeedableRng};

/// Re-export location the workspace imports `SeedableRng` from
/// (`use rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with a configurable number of double-rounds.
#[derive(Clone, Debug)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    /// Key (8 words) + stream id (2 words); the counter lives separately.
    key: [u32; 8],
    counter: u64,
    /// Current 64-byte block, as 16 output words.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(key_bytes: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key_bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            core: ChaChaCore<$double_rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (4 double-rounds).");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds (6 double-rounds).");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (10 double-rounds).");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be uncorrelated");
    }

    #[test]
    fn chacha20_rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our stream layout fixes the nonce words
        // to zero, so reproduce the raw block function directly instead.
        let mut state: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, 0x03020100, 0x07060504, 0x0b0a0908,
            0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, 0x00000001, 0x09000000,
            0x4a000000, 0x00000000,
        ];
        let input = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        assert_eq!(state[0], 0xe4e7f110);
        assert_eq!(state[15], 0x4e3c50a2);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
    }
}
