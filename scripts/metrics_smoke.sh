#!/usr/bin/env bash
# Metrics smoke test: exercise the unified ltfb-obs exports end to end and
# check that instrumentation stays cheap.
#
# 1. A small distributed LTFB run (with datastore ingest) must emit a
#    single metrics report containing per-round adoption rates, comm
#    bytes, datastore shuffle bytes, and step-latency percentiles.
# 2. A serve-bench run must emit a report with serving latency
#    percentiles from the same registry type.
# 3. Overhead gate: the same train run with --metrics must cost < 5%
#    extra wall clock vs. the plain run (best of 3 each, to shave
#    scheduler noise).
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=target/release/ltfb-cli
[[ -x "$CLI" ]] || {
    echo "metrics_smoke: $CLI missing; run cargo build --release first" >&2
    exit 1
}

RESULTS="$(mktemp -d)"
trap 'rm -rf "$RESULTS"' EXIT
export LTFB_RESULTS_DIR="$RESULTS"

TRAIN_ARGS=(train --trainers 4 --steps 150 --ae-steps 60 --samples 768
    --exchange 25 --eval 60 --distributed --ingest)

need() { # need <file> <pattern> <label>
    grep -q "$2" "$1" || {
        echo "metrics_smoke: $3 missing from $1 (pattern: $2)" >&2
        exit 1
    }
}

echo "==> LTFB train export"
"$CLI" "${TRAIN_ARGS[@]}" --metrics >/dev/null
LTFB_JSON="$RESULTS/ltfb_metrics.json"
[[ -f "$LTFB_JSON" ]] || { echo "metrics_smoke: $LTFB_JSON not written" >&2; exit 1; }
need "$LTFB_JSON" 'ltfb\.round1\.adoption_rate' "per-round adoption rate"
need "$LTFB_JSON" 'comm\.r0\.sent_bytes' "comm bytes"
need "$LTFB_JSON" 'datastore\.r0\.shuffled_bytes' "datastore shuffle bytes"
need "$LTFB_JSON" 'ltfb\.step_us' "step latency histogram"
need "$LTFB_JSON" '"p99"' "latency percentiles"
need "$LTFB_JSON" 'train\.alloc_bytes_per_step' "hot-path allocation gauge"
need "$LTFB_JSON" 'train\.prefetch_hit' "datastore prefetch hit counter"
need "$LTFB_JSON" 'train\.prefetch_stall_ms' "datastore prefetch stall gauge"
need "$LTFB_JSON" 'comm\.r0\.allreduce_chunk_inflight' "allreduce overlap gauge"
need "$LTFB_JSON" 'train\.comm_wait_ms' "comm-wait histogram (split from step latency)"
need "$LTFB_JSON" 'train\.overlap_frac' "overlap-hiding fraction gauge"
need "$LTFB_JSON" 'comm\.r0\.bucket_inflight' "gradient-bucket inflight gauge"
echo "    ok: $LTFB_JSON"

echo "==> two-level (data-parallel) train export"
"$CLI" train --trainers 2 --steps 30 --ae-steps 20 --samples 256 \
    --exchange 10 --eval 15 --replicas 2 --metrics >/dev/null
[[ -f "$LTFB_JSON" ]] || { echo "metrics_smoke: $LTFB_JSON not written" >&2; exit 1; }
need "$LTFB_JSON" 'train\.comm_wait_ms' "two-level comm-wait histogram"
need "$LTFB_JSON" 'train\.overlap_frac' "two-level overlap fraction"
need "$LTFB_JSON" 'comm\.r3\.bucket_inflight' "per-replica bucket inflight gauge"
need "$LTFB_JSON" 'ltfb\.step_us' "two-level step latency histogram"
echo "    ok: $LTFB_JSON (two-level)"

echo "==> serve-bench export"
"$CLI" serve-bench --clients 4 --requests 100 --metrics >/dev/null
SERVE_JSON="$RESULTS/serve_metrics.json"
[[ -f "$SERVE_JSON" ]] || { echo "metrics_smoke: $SERVE_JSON not written" >&2; exit 1; }
need "$SERVE_JSON" 'serve\.latency_us' "serve latency histogram"
need "$SERVE_JSON" 'serve\.forward' "forward counter"
need "$SERVE_JSON" '"p50"' "p50 percentile"
need "$SERVE_JSON" '"p95"' "p95 percentile"
need "$SERVE_JSON" '"p99"' "p99 percentile"
echo "    ok: $SERVE_JSON"

echo "==> overhead gate (<5% wall clock with --metrics)"
# Interleave base/metrics runs and take the minimum of each: scheduler
# noise only ever adds time, so the min converges on the true cost, and
# interleaving keeps slow drift (thermal, background load) from landing
# on one arm only. One untimed warm-up pair first (page cache, file
# creation for the ingest dataset).
one_ms() { # one_ms <extra args...> — single run, milliseconds
    local t0 t1
    t0=$(date +%s%N)
    "$CLI" "${TRAIN_ARGS[@]}" "$@" >/dev/null
    t1=$(date +%s%N)
    echo $(((t1 - t0) / 1000000))
}
one_ms >/dev/null
one_ms --metrics >/dev/null
BASE="" WITH=""
for _ in 1 2 3 4 5 6 7; do
    ms=$(one_ms)
    if [[ -z "$BASE" || "$ms" -lt "$BASE" ]]; then BASE=$ms; fi
    ms=$(one_ms --metrics)
    if [[ -z "$WITH" || "$ms" -lt "$WITH" ]]; then WITH=$ms; fi
done
echo "    base ${BASE}ms, with-metrics ${WITH}ms"
if (((WITH - BASE) * 100 > BASE * 5)); then
    echo "metrics_smoke: overhead gate failed: ${BASE}ms -> ${WITH}ms (>5%)" >&2
    exit 1
fi

echo "metrics smoke green."
