#!/usr/bin/env bash
# Repository CI gate: build, test, format, lint. Run from the repo root.
# Everything is offline (external deps resolve to shims/, see
# shims/README.md), so this needs nothing but a Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ltfb-analyze lint (workspace invariant rules)"
cargo run -q -p ltfb-analyze -- lint

echo "==> ltfb-analyze check (fixed-seed model-check suite)"
cargo run -q -p ltfb-analyze -- check

echo "==> causality-audit smoke (vector-clock trace certification)"
scripts/trace_smoke.sh

echo "==> fault-injection smoke"
scripts/fault_smoke.sh

echo "==> metrics smoke"
scripts/metrics_smoke.sh

echo "==> perf smoke (zero-alloc hot path + kernel/throughput regression gates + int8 accuracy)"
scripts/perf_smoke.sh

echo "==> store smoke (tiered bit-identity + tier/ingest metrics + bench)"
scripts/store_smoke.sh

echo "==> serve smoke (fleet overload goodput + shed + CO gates vs BENCH_serve.json)"
scripts/serve_smoke.sh

echo "CI green."
