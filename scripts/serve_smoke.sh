#!/usr/bin/env bash
# Serving-fleet smoke: a fixed-seed fleet bench run gated against the
# committed BENCH_serve.json:
#
# 1. Admission control must actually engage: under 2x overload the run
#    must shed at least one request (shed_at_2x > 0), and goodput must
#    stay >= 70% of the measured closed-loop capacity — the acceptance
#    bar for SLO shedding (turning away work instead of collapsing).
# 2. Coordinated-omission sanity: the schedule-corrected p99 can never
#    be below the send-clock p99 (the correction only adds the queueing
#    the closed send-clock view hides). Machine-independent.
# 3. Ratio floor vs the committed baseline: fresh goodput_frac_at_2x
#    must stay >= 35% of the committed figure. The fraction is a ratio
#    of two numbers from one host, so it is CPU-frequency independent;
#    absolute rps are recorded but not gated.
# 4. The --metrics causal trace of the overload run must certify under
#    `ltfb-analyze trace` — every shed happens inside an overload
#    episode that causally follows the SLO announcement
#    (fleet-shed-implies-overload), and replica publishes stay serial
#    per shard.
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=target/release/ltfb-cli
ANALYZE=target/release/ltfb-analyze
[[ -x "$CLI" && -x "$ANALYZE" ]] || {
    echo "serve_smoke: release binaries missing; run cargo build --release first" >&2
    exit 1
}
[[ -f BENCH_serve.json ]] || {
    echo "serve_smoke: committed BENCH_serve.json missing" >&2
    exit 1
}

FRESH=$(mktemp -d)
trap 'rm -rf "$FRESH"' EXIT

echo "==> serve-bench --shards 2 (fresh fixed-seed fleet run)"
LTFB_SERVE_JSON="$FRESH/BENCH_serve.json" LTFB_RESULTS_DIR="$FRESH" \
    "$CLI" serve-bench --shards 2 --seed 2019 \
    --metrics "$FRESH/serve_fleet_metrics.json"

# Top-level scalar: "key": <number> anywhere in the file (first match).
json_num() { # json_num <file> <key>
    sed -n "s/.*\"$2\": \(-\{0,1\}[0-9.][0-9.]*\).*/\1/p" "$1" | head -1
}

fresh_frac=$(json_num "$FRESH/BENCH_serve.json" goodput_frac_at_2x)
fresh_shed=$(json_num "$FRESH/BENCH_serve.json" shed_at_2x)
fresh_corr=$(json_num "$FRESH/BENCH_serve.json" co_corrected_p99_us)
fresh_send=$(json_num "$FRESH/BENCH_serve.json" co_send_clock_p99_us)
committed_frac=$(json_num BENCH_serve.json goodput_frac_at_2x)

[[ -n "$fresh_frac" && -n "$fresh_shed" && -n "$fresh_corr" && -n "$fresh_send" && -n "$committed_frac" ]] || {
    echo "serve_smoke: failed to parse fleet bench JSON" >&2
    cat "$FRESH/BENCH_serve.json" >&2
    exit 1
}

echo "==> gate: shed_at_2x $fresh_shed > 0 (admission control engaged)"
awk -v s="$fresh_shed" 'BEGIN { exit (s > 0 ? 0 : 1) }' || {
    echo "serve_smoke: FAIL — no sheds under 2x overload; admission control never engaged" >&2
    exit 1
}

echo "==> gate: goodput_frac_at_2x $fresh_frac >= 0.7 (goodput preserved under overload)"
awk -v f="$fresh_frac" 'BEGIN { exit (f >= 0.7 ? 0 : 1) }' || {
    echo "serve_smoke: FAIL — goodput collapsed under 2x overload ($fresh_frac of capacity)" >&2
    exit 1
}

echo "==> gate: goodput_frac_at_2x $fresh_frac within 35% floor of committed $committed_frac"
awk -v f="$fresh_frac" -v c="$committed_frac" 'BEGIN { exit (f >= 0.35 * c ? 0 : 1) }' || {
    echo "serve_smoke: FAIL — overload goodput regressed: fresh $fresh_frac vs committed $committed_frac (floor: 0.35x)" >&2
    exit 1
}

echo "==> gate: corrected p99 $fresh_corr >= send-clock p99 $fresh_send (CO correction direction)"
awk -v a="$fresh_corr" -v b="$fresh_send" 'BEGIN { exit (a >= b ? 0 : 1) }' || {
    echo "serve_smoke: FAIL — schedule-corrected p99 below send-clock p99; the CO correction is broken" >&2
    exit 1
}

echo "==> ltfb-analyze trace (fleet overload run must certify)"
out=$("$ANALYZE" trace "$FRESH/serve_fleet_metrics.json")
echo "$out"
grep -q "certified" <<<"$out" || {
    echo "serve_smoke: FAIL — fleet causal trace did not certify" >&2
    exit 1
}

echo "serve smoke green."
