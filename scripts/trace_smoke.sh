#!/usr/bin/env bash
# Causality-audit smoke: end-to-end check of the vector-clock
# happens-before auditor (`ltfb-analyze trace`) against real traces.
#
# 1. Auditor selftest: a clean instrumented world certifies, a seeded
#    probe-skip violation is caught with a causal-cut certificate, and a
#    truncated trace is refused.
# 2. A fault-injected distributed train run (trainer death mid-run, with
#    datastore ingest) exports a causal trace that must certify: rank
#    death must not reorder broadcasts, collectives, or shuffle epochs.
# 3. An int8 serve-bench run exports the registry's publish/probe trace,
#    which must certify (every quantized publish causally follows a
#    passed probe).
#
# On violation the auditor prints a replayable certificate (offending
# event pair + minimal causal cut); this script surfaces it verbatim.
# Budget: the whole smoke stays under ~5 s.
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=target/release/ltfb-cli
ANALYZE=target/release/ltfb-analyze
[[ -x "$CLI" && -x "$ANALYZE" ]] || {
    echo "trace_smoke: release binaries missing; run cargo build --release first" >&2
    exit 1
}

RESULTS="$(mktemp -d)"
trap 'rm -rf "$RESULTS"' EXIT
export LTFB_RESULTS_DIR="$RESULTS"

need() { # need <output> <pattern> <label>
    grep -q "$2" <<<"$1" || {
        echo "trace_smoke: $3 missing (pattern: $2)" >&2
        echo "--- output ---" >&2
        echo "$1" >&2
        exit 1
    }
}

audit() { # audit <metrics.json> — certify or print the certificate(s)
    local out
    if ! out="$("$ANALYZE" trace "$1")"; then
        echo "trace_smoke: audit of $1 found violations:" >&2
        echo "$out" >&2
        exit 1
    fi
    need "$out" 'trace: certified' "certification line for $1"
    grep '^trace: ' <<<"$out" | sed 's/^/    /'
}

echo "==> auditor selftest (clean certifies, seeded violation caught, truncation refused)"
OUT="$("$ANALYZE" trace --selftest)"
need "$OUT" 'clean trace certified' "clean-trace certification"
need "$OUT" 'causal cut' "seeded-violation certificate"
need "$OUT" 'truncated trace refused' "truncation refusal"

echo "==> fault-injected train trace certifies (trainer 2 dies at step 15)"
"$CLI" train --trainers 4 --steps 40 --ae-steps 30 --samples 256 \
    --exchange 10 --eval 20 --seed 2019 --distributed --ingest \
    --fault kill:2@15 --metrics >/dev/null
audit "$RESULTS/ltfb_metrics.json"

echo "==> int8 serve-bench trace certifies (publish follows probe)"
"$CLI" serve-bench --clients 2 --requests 60 --quant int8 --metrics >/dev/null
audit "$RESULTS/serve_metrics.json"

echo "trace smoke green."
