#!/usr/bin/env bash
# Tiered-store smoke test: the out-of-core path must train bit-identically
# to the in-memory reference, keep a warm hot tier, and export its
# tier/ingest metrics.
#
# 1. Build a small shard dataset and train the CLI store demo over it
#    (in-memory vs mmap-tiered, plus a streaming-ingest adoption); the
#    demo must report bit_identical=true and a hot-tier hit rate >= 0.50.
# 2. The --metrics export must carry the tier and ingest keys
#    (store.rN.tier_hit/miss/evicted, store.rN.bytes_mapped,
#    ingest.samples/bytes, ingest.epoch_growth).
# 3. The store tiering bench must produce BENCH_store.json with a warm
#    hit rate >= 0.50.
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=target/release/ltfb-cli
BENCH=target/release/replay_store_bench
for bin in "$CLI" "$BENCH"; do
    [[ -x "$bin" ]] || {
        echo "store_smoke: $bin missing; run cargo build --release first" >&2
        exit 1
    }
done

RESULTS="$(mktemp -d)"
trap 'rm -rf "$RESULTS"' EXIT
export LTFB_RESULTS_DIR="$RESULTS"

echo "==> tiered-store demo (bit-identity vs in-memory + ingest adoption)"
OUT="$("$CLI" train --trainers 2 --steps 5 --ae-steps 5 --samples 64 \
    --store mmap --metrics "$RESULTS/store_metrics.json")"
echo "$OUT" | grep "store demo:"

echo "$OUT" | grep -q "bit_identical=true" || {
    echo "store_smoke: tiered training diverged from the in-memory reference" >&2
    exit 1
}

HIT_RATE="$(echo "$OUT" | sed -n 's/.*tier_hit_rate=\([0-9.]*\).*/\1/p')"
[[ -n "$HIT_RATE" ]] || {
    echo "store_smoke: no tier_hit_rate in demo output" >&2
    exit 1
}
awk -v r="$HIT_RATE" 'BEGIN { exit !(r >= 0.50) }' || {
    echo "store_smoke: hot-tier hit rate $HIT_RATE below the 0.50 floor" >&2
    exit 1
}

echo "==> tier/ingest metric keys"
METRICS="$RESULTS/store_metrics.json"
[[ -f "$METRICS" ]] || {
    echo "store_smoke: $METRICS not written" >&2
    exit 1
}
for key in store.r0.tier_hit store.r0.tier_miss store.r0.tier_evicted \
    store.r0.bytes_mapped store.r1.tier_hit \
    ingest.samples ingest.bytes ingest.epoch_growth; do
    grep -q "\"$key\"" "$METRICS" || {
        echo "store_smoke: metric key $key missing from $METRICS" >&2
        exit 1
    }
done

echo "==> store tiering bench (BENCH_store.json)"
BENCH_JSON="$RESULTS/BENCH_store.json"
LTFB_BENCH_JSON="$BENCH_JSON" "$BENCH" >/dev/null
[[ -f "$BENCH_JSON" ]] || {
    echo "store_smoke: $BENCH_JSON not written" >&2
    exit 1
}
WARM="$(sed -n 's/.*"tiered_warm_hit_rate": \([0-9.]*\).*/\1/p' "$BENCH_JSON")"
awk -v r="$WARM" 'BEGIN { exit !(r >= 0.50) }' || {
    echo "store_smoke: bench warm hit rate $WARM below the 0.50 floor" >&2
    exit 1
}

echo "store_smoke: OK (bit_identical=true, demo hit rate $HIT_RATE, bench warm hit rate $WARM)"
