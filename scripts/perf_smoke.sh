#!/usr/bin/env bash
# Steady-state hot-path performance gate.
#
# Runs the train_throughput bench and compares the fresh numbers against
# the committed BENCH_train.json:
#
# 1. allocs/step on the workspace path must be EXACTLY 0 — the defining
#    property of the zero-allocation hot path, machine-independent.
# 2. The fresh workspace/reference speedup ratio must not regress more
#    than 20% below the committed ratio. The ratio comes from one binary
#    and one run, so it is CPU-frequency independent; absolute steps/sec
#    are not gated (they vary with the host).
#
# The committed JSON also records the pre-change baseline (allocating
# step + per-dispatch parallelism probe) measured once when the
# optimisation landed; see DESIGN.md §6d. That figure is provenance, not
# a gate.
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=target/release/train_throughput
[[ -x "$BENCH" ]] || {
    echo "perf_smoke: $BENCH missing; run cargo build --release first" >&2
    exit 1
}
[[ -f BENCH_train.json ]] || {
    echo "perf_smoke: committed BENCH_train.json missing" >&2
    exit 1
}

FRESH=$(mktemp -d)
trap 'rm -rf "$FRESH"' EXIT

echo "==> train_throughput (fresh run)"
LTFB_BENCH_JSON="$FRESH/BENCH_train.json" LTFB_RESULTS_DIR="$FRESH" "$BENCH"

json_num() { # json_num <file> <key>
    sed -n "s/.*\"$2\": \([0-9.][0-9.]*\).*/\1/p" "$1" | head -1
}

# The workspace object is on its own line; grab its allocs_per_step.
fresh_ws_allocs=$(grep '"workspace"' "$FRESH/BENCH_train.json" \
    | sed -n 's/.*"allocs_per_step": \([0-9.]*\).*/\1/p')
fresh_ratio=$(json_num "$FRESH/BENCH_train.json" speedup_steps_per_sec)
committed_ratio=$(json_num BENCH_train.json speedup_steps_per_sec)

[[ -n "$fresh_ws_allocs" && -n "$fresh_ratio" && -n "$committed_ratio" ]] || {
    echo "perf_smoke: failed to parse bench JSON" >&2
    exit 1
}

echo "==> gate: workspace allocs/step == 0 (got $fresh_ws_allocs)"
awk -v a="$fresh_ws_allocs" 'BEGIN { exit (a == 0.0 ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — workspace path allocates ($fresh_ws_allocs allocs/step)" >&2
    exit 1
}

echo "==> gate: speedup ratio $fresh_ratio within 20% of committed $committed_ratio"
awk -v f="$fresh_ratio" -v c="$committed_ratio" \
    'BEGIN { exit (f >= 0.8 * c ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — workspace/reference ratio regressed: fresh $fresh_ratio vs committed $committed_ratio (floor: 0.8x)" >&2
    exit 1
}

echo "perf smoke green."
