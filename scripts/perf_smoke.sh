#!/usr/bin/env bash
# Steady-state hot-path performance gate.
#
# Runs the train_throughput and kernel_bench benches and compares the
# fresh numbers against the committed BENCH_train.json / BENCH_kernels.json:
#
# 1. allocs/step on the workspace path must be EXACTLY 0 — the defining
#    property of the zero-allocation hot path, machine-independent.
# 2. The fresh workspace/reference speedup ratio must not regress more
#    than 20% below the committed ratio. The ratio comes from one binary
#    and one run, so it is CPU-frequency independent; absolute steps/sec
#    are not gated (they vary with the host).
# 3. Kernel-throughput ratio floors: the SIMD GEMM must stay >= 80% of
#    the committed simd_vs_scalar and simd_vs_naive advantage — a
#    regression here means the microkernels stopped vectorising.
# 4. Quantized-accuracy gate: kernel_bench asserts the int8 path's
#    realised error against its analytic bound per shape; here we also
#    require the fresh worst-case realised/bound ratio <= 1.
#
# The committed JSONs also record the pre-change baseline (allocating
# step + per-dispatch parallelism probe) measured once when each
# optimisation landed; see DESIGN.md §6d/§7. Those figures are
# provenance, not gates.
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=target/release/train_throughput
KBENCH=target/release/kernel_bench
for b in "$BENCH" "$KBENCH"; do
    [[ -x "$b" ]] || {
        echo "perf_smoke: $b missing; run cargo build --release first" >&2
        exit 1
    }
done
for f in BENCH_train.json BENCH_kernels.json; do
    [[ -f "$f" ]] || {
        echo "perf_smoke: committed $f missing" >&2
        exit 1
    }
done

FRESH=$(mktemp -d)
trap 'rm -rf "$FRESH"' EXIT

echo "==> train_throughput (fresh run)"
LTFB_BENCH_JSON="$FRESH/BENCH_train.json" LTFB_RESULTS_DIR="$FRESH" "$BENCH"

echo "==> kernel_bench (fresh run)"
LTFB_KERNEL_JSON="$FRESH/BENCH_kernels.json" LTFB_RESULTS_DIR="$FRESH" "$KBENCH"

# Top-level scalar: "key": <number> anywhere in the file (first match).
json_num() { # json_num <file> <key>
    sed -n "s/.*\"$2\": \([0-9.][0-9.]*\).*/\1/p" "$1" | head -1
}

# Scalar inside a named one-line block: the bench JSONs keep each object
# ("workspace": {...}, "reference": {...}, "ratios": {...}) on its own
# line, so select that line first, then the key within it. This is the
# fix for the old json_num, which matched the first occurrence of the
# key anywhere in the file — for keys repeated across blocks
# (steps_per_sec, allocs_per_step) that silently read the wrong block.
json_block_num() { # json_block_num <file> <block> <key>
    grep "\"$2\"" "$1" | sed -n "s/.*\"$3\": \(-\{0,1\}[0-9.][0-9.]*\).*/\1/p" | head -1
}

fresh_ws_allocs=$(json_block_num "$FRESH/BENCH_train.json" workspace allocs_per_step)
fresh_ref_allocs=$(json_block_num "$FRESH/BENCH_train.json" reference allocs_per_step)
fresh_ratio=$(json_num "$FRESH/BENCH_train.json" speedup_steps_per_sec)
committed_ratio=$(json_num BENCH_train.json speedup_steps_per_sec)

[[ -n "$fresh_ws_allocs" && -n "$fresh_ref_allocs" && -n "$fresh_ratio" && -n "$committed_ratio" ]] || {
    echo "perf_smoke: failed to parse train bench JSON" >&2
    exit 1
}

echo "==> gate: workspace allocs/step == 0 (got $fresh_ws_allocs; reference path: $fresh_ref_allocs)"
awk -v a="$fresh_ws_allocs" 'BEGIN { exit (a == 0.0 ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — workspace path allocates ($fresh_ws_allocs allocs/step)" >&2
    exit 1
}

echo "==> gate: speedup ratio $fresh_ratio within 20% of committed $committed_ratio"
awk -v f="$fresh_ratio" -v c="$committed_ratio" \
    'BEGIN { exit (f >= 0.8 * c ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — workspace/reference ratio regressed: fresh $fresh_ratio vs committed $committed_ratio (floor: 0.8x)" >&2
    exit 1
}

# Backward-overlapped data-parallel gates (the "overlap" block). Both
# figures come from the same fresh multi-rank run, so they are
# host-speed independent: (a) the overlapped path must keep at least
# 80% of the committed overlapped/serialized steps/sec ratio, and
# (b) the overlapped path must spend strictly less time blocked on the
# gradient allreduce than the serialized path — the whole point of the
# bucketed nonblocking engine.
fresh_ov_ratio=$(json_block_num "$FRESH/BENCH_train.json" overlap speedup)
committed_ov_ratio=$(json_block_num BENCH_train.json overlap speedup)
fresh_wait_ser=$(json_block_num "$FRESH/BENCH_train.json" overlap comm_wait_ms_per_step_serialized)
fresh_wait_ov=$(json_block_num "$FRESH/BENCH_train.json" overlap comm_wait_ms_per_step_overlapped)
fresh_ov_bits=$(json_block_num "$FRESH/BENCH_train.json" overlap ranks)
[[ -n "$fresh_ov_ratio" && -n "$committed_ov_ratio" && -n "$fresh_wait_ser" && -n "$fresh_wait_ov" && -n "$fresh_ov_bits" ]] || {
    echo "perf_smoke: failed to parse overlap block from train bench JSON" >&2
    exit 1
}
echo "==> gate: overlapped/serialized steps/sec ratio $fresh_ov_ratio within 20% of committed $committed_ov_ratio"
awk -v f="$fresh_ov_ratio" -v c="$committed_ov_ratio" \
    'BEGIN { exit (f >= 0.8 * c ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — overlapped DP throughput regressed: fresh ratio $fresh_ov_ratio vs committed $committed_ov_ratio (floor: 0.8x)" >&2
    exit 1
}
echo "==> gate: overlapped comm wait $fresh_wait_ov ms/step < serialized $fresh_wait_ser ms/step"
awk -v o="$fresh_wait_ov" -v s="$fresh_wait_ser" 'BEGIN { exit (o < s ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — overlap engine no longer hides comm: overlapped wait $fresh_wait_ov ms/step >= serialized $fresh_wait_ser ms/step" >&2
    exit 1
}

for ratio in simd_vs_scalar simd_vs_naive; do
    fresh=$(json_block_num "$FRESH/BENCH_kernels.json" ratios "$ratio")
    committed=$(json_block_num BENCH_kernels.json ratios "$ratio")
    [[ -n "$fresh" && -n "$committed" ]] || {
        echo "perf_smoke: failed to parse kernel bench JSON ($ratio)" >&2
        exit 1
    }
    echo "==> gate: kernel $ratio $fresh within 20% of committed $committed"
    awk -v f="$fresh" -v c="$committed" 'BEGIN { exit (f >= 0.8 * c ? 0 : 1) }' || {
        echo "perf_smoke: FAIL — kernel ratio $ratio regressed: fresh $fresh vs committed $committed (floor: 0.8x)" >&2
        exit 1
    }
done

q8_ratio=$(json_block_num "$FRESH/BENCH_kernels.json" int8 worst_err_over_bound)
[[ -n "$q8_ratio" ]] || {
    echo "perf_smoke: failed to parse int8 accuracy from kernel bench JSON" >&2
    exit 1
}
echo "==> gate: int8 worst realised/bound error ratio $q8_ratio <= 1"
awk -v r="$q8_ratio" 'BEGIN { exit (r <= 1.0 ? 0 : 1) }' || {
    echo "perf_smoke: FAIL — int8 path exceeded its analytic error bound (ratio $q8_ratio)" >&2
    exit 1
}

echo "perf smoke green."
