#!/usr/bin/env bash
# Fault-injection smoke suite: fixed-seed end-to-end checks that a
# degraded world *recovers* instead of deadlocking or crashing.
#
# 1. Distributed LTFB with a mid-run trainer death: the run must finish,
#    report the victim's truncated history, and still produce a best
#    survivor.
# 2. Sole-survivor run (everyone else dies): the lone trainer finishes.
# 3. Serial failure driver via the same --fault spec: survivors keep
#    training past the kill step.
# 4. Recovery model replays: a fixed seed through the model checker's
#    fault-recovery worlds must come back ok (the deterministic analogue
#    of the exhaustive certificates `ltfb-analyze check` maintains).
#
# Assumes `cargo build --release` has already run (ci.sh does).
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=target/release/ltfb-cli
ANALYZE=target/release/ltfb-analyze
[[ -x "$CLI" && -x "$ANALYZE" ]] || {
    echo "fault_smoke: release binaries missing; run cargo build --release first" >&2
    exit 1
}

TRAIN_ARGS=(train --trainers 4 --steps 60 --ae-steps 40 --samples 512
    --exchange 15 --eval 30 --seed 2019)

need() { # need <output> <pattern> <label>
    grep -q "$2" <<<"$1" || {
        echo "fault_smoke: $3 missing (pattern: $2)" >&2
        echo "--- output ---" >&2
        echo "$1" >&2
        exit 1
    }
}

echo "==> distributed kill: trainer 2 dies at step 15, survivors finish"
OUT="$("$CLI" "${TRAIN_ARGS[@]}" --distributed --fault kill:2@15)"
need "$OUT" 'fault plan: 1 kill' "fault plan banner"
need "$OUT" '^trainer 0: .*60:' "survivor 0 finished all steps"
need "$OUT" '^trainer 3: .*60:' "survivor 3 finished all steps"
need "$OUT" 'best: trainer [013] ' "best model chosen among survivors"
if grep -qE '^trainer 2: .*60:' <<<"$OUT"; then
    echo "fault_smoke: dead trainer 2 reported a final validation" >&2
    exit 1
fi

echo "==> distributed sole survivor: three deaths, the run still completes"
OUT="$("$CLI" "${TRAIN_ARGS[@]}" --distributed --fault 'kill:0@5,kill:1@20,kill:3@35')"
need "$OUT" 'fault plan: 3 kill' "fault plan banner"
need "$OUT" '^trainer 2: .*60:' "sole survivor finished"
need "$OUT" 'best: trainer 2 ' "sole survivor is the best"

echo "==> serial failure driver accepts the same spec"
OUT="$("$CLI" "${TRAIN_ARGS[@]}" --fault kill:1@20)"
need "$OUT" 'survivors keep training' "serial fault banner"
need "$OUT" '^trainer 0: .*60:' "serial survivor finished"

echo "==> recovery model replays are deterministic and ok"
for model in barrier-recovery allreduce-recovery ltfb-exchange-recovery; do
    OUT="$("$ANALYZE" replay --model "$model" --seed 2019)"
    need "$OUT" 'ok' "$model seed-2019 replay"
done

echo "fault smoke green."
