//! Smoke tests for the `ltfb-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ltfb-cli"))
}

#[test]
fn help_exits_cleanly() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("train"));
    assert!(text.contains("simulate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_fig11_prints_sweep() {
    let out = cli().args(["simulate", "fig11"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("64 trainers"));
    assert!(text.contains("speedup"));
}

#[test]
fn train_tiny_run_reports_best() {
    let out = cli()
        .args([
            "train",
            "--trainers",
            "2",
            "--steps",
            "20",
            "--samples",
            "128",
            "--exchange",
            "10",
            "--eval",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best: trainer"), "missing summary: {text}");
}

#[test]
fn generate_writes_dataset() {
    let dir = ltfb::jag::temp_dataset_dir("cli-generate");
    let out = cli()
        .args([
            "generate",
            "--dir",
            dir.to_str().unwrap(),
            "--samples",
            "60",
            "--per-file",
            "20",
            "--img-size",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let spec = ltfb::jag::DatasetSpec::new(dir.clone(), ltfb::jag::JagConfig::small(4), 60, 20);
    assert!(spec.is_generated());
    // And the files are valid bundles.
    let mut r = spec.open_file(2).unwrap();
    assert_eq!(r.read_all().unwrap().len(), 20);
    ltfb::jag::cleanup_dataset_dir(&dir);
}

#[test]
fn generate_without_dir_fails() {
    let out = cli().arg("generate").output().unwrap();
    assert!(!out.status.success());
}
