//! Cross-crate assertions that every figure harness reproduces the
//! *shape* of its paper counterpart — who wins, roughly by how much, and
//! where the crossovers/regressions fall. These are the claims
//! EXPERIMENTS.md records; the fig binaries print the full series.

use ltfb::hpcsim::{
    dp_placement, evaluate_config, paper_sweep, ConfigOutcome, IngestMode, MachineSpec,
    TrainingModel, WorkloadSpec,
};

fn setup() -> (MachineSpec, WorkloadSpec, TrainingModel) {
    (
        MachineSpec::lassen(),
        WorkloadSpec::icf_cyclegan(),
        TrainingModel::default(),
    )
}

#[test]
fn fig9_shape_diminishing_strong_scaling() {
    let (m, w, t) = setup();
    let samples = 1_000_000;
    let mut prev_time = f64::INFINITY;
    let mut prev_eff = 1.01f64;
    let mut base = None;
    for gpus in [1usize, 2, 4, 8, 16] {
        let out = evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(gpus),
            samples,
            IngestMode::NoStore,
            1,
        );
        let total = out.steady_total().unwrap();
        assert!(total < prev_time, "epoch time must fall with GPUs");
        prev_time = total;
        let b = *base.get_or_insert(total);
        let eff = (b / total) / gpus as f64;
        assert!(eff <= prev_eff + 1e-9, "efficiency must not rise: {eff}");
        prev_eff = eff;
        if gpus == 16 {
            let speedup = b / total;
            assert!(
                (8.0..11.0).contains(&speedup),
                "16-GPU speedup {speedup:.2} should be near the paper's 9.36x"
            );
            assert!(
                (0.50..0.68).contains(&eff),
                "efficiency {eff:.2} should be near 58%"
            );
        }
    }
}

#[test]
fn fig10_shape_store_modes() {
    let (m, w, t) = setup();
    let samples = 1_000_000;

    // Preload OOM exactly at 1 and 2 GPUs.
    for gpus in [1usize, 2] {
        let out = evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(gpus),
            samples,
            IngestMode::Preloaded,
            1,
        );
        assert!(
            matches!(out, ConfigOutcome::OutOfMemory { .. }),
            "preload at {gpus} GPUs must OOM (paper Fig. 10 note)"
        );
    }
    // Dynamic store runs everywhere.
    for gpus in [1usize, 2, 4, 8, 16] {
        let out = evaluate_config(
            &m,
            &w,
            &t,
            dp_placement(gpus),
            samples,
            IngestMode::DynamicStore,
            1,
        );
        assert!(
            out.steady_total().is_some(),
            "dynamic store must run at {gpus} GPUs"
        );
    }

    // Ratios at the anchors.
    let naive1 = evaluate_config(&m, &w, &t, dp_placement(1), samples, IngestMode::NoStore, 1)
        .steady_total()
        .unwrap();
    let dyn1 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(1),
        samples,
        IngestMode::DynamicStore,
        1,
    )
    .steady_total()
    .unwrap();
    let r1 = naive1 / dyn1;
    assert!(
        (6.0..9.5).contains(&r1),
        "1-GPU store benefit {r1:.2} vs paper 7.73x"
    );

    let naive16 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(16),
        samples,
        IngestMode::NoStore,
        1,
    )
    .steady_total()
    .unwrap();
    let dyn16 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(16),
        samples,
        IngestMode::DynamicStore,
        1,
    )
    .steady_total()
    .unwrap();
    let pre16 = evaluate_config(
        &m,
        &w,
        &t,
        dp_placement(16),
        samples,
        IngestMode::Preloaded,
        1,
    )
    .steady_total()
    .unwrap();
    assert!(
        pre16 < dyn16 && dyn16 < naive16,
        "ordering preload < dynamic < naive"
    );
    let pre_vs_dyn = dyn16 / pre16;
    assert!(
        (1.02..1.3).contains(&pre_vs_dyn),
        "preload advantage {pre_vs_dyn:.2} vs paper 1.10x"
    );
    // The benefit shrinks with scale (7.73x at 1 GPU -> ~1.3-2x at 16).
    assert!(
        naive16 / pre16 < r1,
        "store benefit must shrink with data parallelism"
    );
}

#[test]
fn fig11_shape_superlinear_with_preload_regression() {
    let (m, w, t) = setup();
    let pts = paper_sweep(&m, &w, &t);
    assert_eq!(
        pts.iter().map(|p| p.trainers).collect::<Vec<_>>(),
        vec![1, 8, 16, 32, 64]
    );
    let base = pts[0].epoch_time;
    for p in &pts[1..] {
        let eff = (base / p.epoch_time) / p.trainers as f64;
        assert!(
            eff > 1.0,
            "K={} efficiency {eff:.3} must be superlinear (paper: 109%)",
            p.trainers
        );
        assert!(
            eff < 1.25,
            "K={} efficiency {eff:.3} implausibly high",
            p.trainers
        );
    }
    let speed64 = base / pts[4].epoch_time;
    assert!(
        (60.0..80.0).contains(&speed64),
        "64-trainer speedup {speed64:.1} vs paper 70.2x"
    );
    // Preload: improves from 1 trainer, regresses at 64 vs 32.
    assert!(pts[1].preload_time < pts[0].preload_time);
    assert!(
        pts[4].preload_time > pts[3].preload_time,
        "paper's 64-trainer preload regression"
    );
}

#[test]
fn figs12_13_shape_population_training_wins() {
    use ltfb::core::{run_k_independent, run_ltfb_serial, LtfbConfig, PartitionScheme};
    // Miniature but real training; region silos (the hard case).
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 512;
    cfg.val_samples = 96;
    cfg.tournament_samples = 48;
    cfg.steps = 150;
    cfg.ae_steps = 150;
    cfg.exchange_interval = 25;
    cfg.eval_interval = 150;
    cfg.partition = PartitionScheme::ByRegion;
    let ltfb = run_ltfb_serial(&cfg);
    let kind = run_k_independent(&cfg);
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(
        avg(&ltfb.final_val) < avg(&kind.final_val),
        "LTFB population ({:.4}) must beat K-independent ({:.4}) on region silos",
        avg(&ltfb.final_val),
        avg(&kind.final_val)
    );
    assert!(ltfb.adoptions > 0, "tournaments must move generators");
}
