//! Golden-seed trajectory: training over the tiered (mmap shard → hot
//! tier) store must be **bit-identical** to training over the in-memory
//! reference store — serially and under 4-rank data parallelism. The
//! in-memory store is the bit-identity reference; any divergence in the
//! shard codec, the hot tier, or the tiered exchange shows up here as a
//! differing loss word.

use ltfb::comm::run_world;
use ltfb::datastore::{node_to_sample, DataStore, PopulateMode};
use ltfb::gan::{batch_from_samples, CycleGan, CycleGanConfig, StepLosses};
use ltfb::jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, Sample};

const N: u64 = 48;
const PER_FILE: usize = 12;
const MB: usize = 8;
const SEED: u64 = 1234;
const EPOCHS: u64 = 2;

fn make_dataset(tag: &str) -> (CycleGanConfig, DatasetSpec) {
    let cfg = CycleGanConfig::small(4);
    let spec = DatasetSpec::new(temp_dataset_dir(tag), cfg.jag, N, PER_FILE);
    spec.generate_all().unwrap();
    spec.generate_all_shards().unwrap();
    (cfg, spec)
}

/// Exact bit pattern of every loss term of a step — the trajectory word.
fn loss_bits(l: &StepLosses) -> [u32; 5] {
    [
        l.d_loss.to_bits(),
        l.adv.to_bits(),
        l.fidelity.to_bits(),
        l.cycle.to_bits(),
        l.recon.to_bits(),
    ]
}

/// Train `EPOCHS` epochs of the golden-seed run over `store`, returning
/// the full per-step loss trajectory as bit patterns. `sync` is the
/// gradient synchroniser (identity for serial, allreduce for DP).
fn run_trajectory(
    cfg: &CycleGanConfig,
    store: &mut DataStore,
    comm: Option<&ltfb::comm::Comm>,
) -> Vec<[u32; 5]> {
    let mut gan = CycleGan::new(*cfg, SEED);
    let mut traj = Vec::new();
    for epoch in 0..EPOCHS {
        let plan = store.epoch_plan(epoch);
        for step in 0..plan.steps() {
            let got = store.fetch_step(&plan, step, epoch).unwrap();
            let samples: Vec<Sample> = got
                .iter()
                .map(|(_, n)| node_to_sample(n).expect("node schema intact"))
                .collect();
            let refs: Vec<&Sample> = samples.iter().collect();
            let (x, y) = batch_from_samples(cfg, &refs);
            let l = match comm {
                Some(c) => ltfb::core::dp_train_step(&mut gan, &x, &y, c),
                None => gan.train_step(&x, &y),
            };
            traj.push(loss_bits(&l));
        }
    }
    traj
}

#[test]
fn serial_tiered_training_is_bit_identical_to_in_memory() {
    let (cfg, spec) = make_dataset("golden-serial");
    let spec2 = spec.clone();
    run_world(1, move |comm| {
        let ids: Vec<u64> = (0..N).collect();
        let mut mem = DataStore::new(
            comm.dup(),
            spec2.clone(),
            ids.clone(),
            PopulateMode::Preload,
            MB,
            SEED,
            None,
        )
        .unwrap();
        // Budget below the partition: the run must hit the mmap tier.
        let budget = 10 * spec2.cfg.sample_bytes() as u64;
        let mut tier =
            DataStore::new_tiered(comm, spec2.clone(), ids, MB, SEED, budget, 1).unwrap();
        let a = run_trajectory(&cfg, &mut mem, None);
        let b = run_trajectory(&cfg, &mut tier, None);
        assert_eq!(a.len(), b.len(), "step counts diverge");
        for (step, (wa, wb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(wa, wb, "loss bits diverge at step {step}");
        }
        let s = tier.tier_stats().unwrap();
        assert!(s.evicted > 0, "budget was meant to force evictions");
    });
    cleanup_dataset_dir(&spec.dir);
}

#[test]
fn four_rank_dp_tiered_training_is_bit_identical_to_in_memory() {
    let (cfg, spec) = make_dataset("golden-dp4");
    let spec2 = spec.clone();
    let trajectories = run_world(4, move |comm| {
        let ids: Vec<u64> = (0..N).collect();
        let mut mem = DataStore::new(
            comm.dup(),
            spec2.clone(),
            ids.clone(),
            PopulateMode::Preload,
            MB,
            SEED,
            None,
        )
        .unwrap();
        let budget = 6 * spec2.cfg.sample_bytes() as u64;
        let mut tier =
            DataStore::new_tiered(comm.dup(), spec2.clone(), ids, MB, SEED, budget, 1).unwrap();
        let a = run_trajectory(&cfg, &mut mem, Some(&comm));
        let b = run_trajectory(&cfg, &mut tier, Some(&comm));
        assert_eq!(a, b, "DP loss trajectory diverges on rank {}", comm.rank());
        a.len()
    });
    // Losses are shard-local (computed before the allreduce), so ranks
    // report different values — but every rank must have stepped through
    // the same schedule, and each matched its own in-memory reference.
    assert!(trajectories.iter().all(|&n| n == trajectories[0] && n > 0));
    cleanup_dataset_dir(&spec.dir);
}
