//! Full-stack integration: workflow engine -> JAG dataset on disk ->
//! distributed data store -> CycleGAN training, across every crate in the
//! workspace.

use ltfb::comm::run_world;
use ltfb::datastore::{node_to_sample, DataStore, PopulateMode};
use ltfb::gan::{batch_from_samples, CycleGan, CycleGanConfig};
use ltfb::jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, Sample};
use ltfb::workflow::{run_workflow, WorkflowSpec};

#[test]
fn workflow_generates_store_feeds_gan_trains() {
    // 1. Campaign: generate the dataset through the workflow engine.
    let dir = temp_dataset_dir("fullstack");
    let cfg = CycleGanConfig::small(4);
    let spec = DatasetSpec::new(dir.clone(), cfg.jag, 240, 40);
    let files: Vec<u64> = (0..spec.n_files()).collect();
    let (results, stats) = run_workflow(
        &WorkflowSpec {
            workers: 3,
            batch_size: 2,
            ..Default::default()
        },
        &files,
        |&f| spec.generate_file(f).map_err(|e| e.to_string()),
    );
    assert_eq!(stats.tasks_succeeded, spec.n_files());
    assert!(results.iter().all(Result::is_ok));
    assert!(spec.is_generated());

    // 2. Trainer: 3 ranks, preloaded store, real training on delivered
    //    batches; loss must fall.
    let spec2 = spec.clone();
    let outcomes = run_world(3, move |comm| {
        let ids: Vec<u64> = (0..spec2.n_samples).collect();
        let mut store =
            DataStore::new(comm, spec2.clone(), ids, PopulateMode::Preload, 24, 5, None)
                .expect("fits");
        let mut gan = CycleGan::new(cfg, 3);
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..4u64 {
            let plan = store.epoch_plan(epoch);
            for step in 0..plan.steps() {
                let got = store.fetch_step(&plan, step, epoch).unwrap();
                let samples: Vec<Sample> = got
                    .iter()
                    .map(|(_, n)| node_to_sample(n).expect("node schema intact"))
                    .collect();
                let refs: Vec<&Sample> = samples.iter().collect();
                let (x, y) = batch_from_samples(&cfg, &refs);
                if epoch == 0 {
                    gan.pretrain_autoencoder_step(&y);
                } else {
                    let l = gan.train_step(&x, &y);
                    let v = l.fidelity + l.cycle;
                    first.get_or_insert(v);
                    last = v;
                }
            }
        }
        let s = store.stats();
        (first.unwrap(), last, s.fs_file_reads, s.fs_sample_reads)
    });

    for (first, last, file_reads, sample_reads) in outcomes {
        assert!(last < first, "training did not improve: {first} -> {last}");
        assert!(file_reads >= 1, "preload must have read files");
        assert_eq!(sample_reads, 0, "preload mode never random-reads");
    }
    cleanup_dataset_dir(&dir);
}

#[test]
fn corrupt_file_detected_through_the_stack() {
    // A flipped byte in a bundle file must surface as a store error, not
    // silently corrupt training data.
    let dir = temp_dataset_dir("fullstack-corrupt");
    let cfg = CycleGanConfig::small(4);
    let spec = DatasetSpec::new(dir.clone(), cfg.jag, 60, 20);
    spec.generate_all().unwrap();
    // Corrupt the middle file's payload.
    let victim = spec.file_path(1);
    let mut raw = std::fs::read(&victim).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&victim, &raw).unwrap();

    let spec2 = spec.clone();
    run_world(2, move |comm| {
        let ids: Vec<u64> = (0..spec2.n_samples).collect();
        let r = DataStore::new(comm, spec2.clone(), ids, PopulateMode::Preload, 16, 5, None);
        // Exactly the rank assigned file 1 sees the checksum failure; the
        // other rank may succeed constructing (it never opens file 1).
        if let Err(e) = r {
            let msg = e.to_string();
            assert!(
                msg.contains("crc") || msg.contains("corrupt"),
                "unexpected error: {msg}"
            );
        }
    });
    cleanup_dataset_dir(&dir);
}

#[test]
fn end_to_end_determinism_across_full_runs() {
    use ltfb::core::{run_ltfb_serial, LtfbConfig};
    let mut cfg = LtfbConfig::small(2);
    cfg.train_samples = 128;
    cfg.val_samples = 32;
    cfg.tournament_samples = 16;
    cfg.steps = 20;
    cfg.ae_steps = 20;
    cfg.exchange_interval = 10;
    let a = run_ltfb_serial(&cfg);
    let b = run_ltfb_serial(&cfg);
    assert_eq!(a.final_val, b.final_val);
    for (ha, hb) in a.histories.iter().zip(&b.histories) {
        assert_eq!(ha.points(), hb.points());
    }
}
