//! Serve quickstart: train a small LTFB population, checkpoint the
//! tournament winner, stand up the batched inference server on it, and
//! push 1000 mixed forward/inverse queries through.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use ltfb::core::{run_ltfb_serial_with_models, LtfbConfig};
use ltfb::serve::{run_load, BatchPolicy, LoadGenConfig, LoadMode, ModelRegistry, Server};
use std::sync::Arc;

fn main() {
    // 1. Train briefly: 4 trainers, tournaments every 25 steps.
    let mut cfg = LtfbConfig::small(4);
    cfg.steps = 100;
    cfg.ae_steps = 100;
    cfg.eval_interval = 50;
    println!(
        "training: {} trainers x {} GAN steps (tournaments every {})...",
        cfg.n_trainers, cfg.steps, cfg.exchange_interval
    );
    let (out, trainers) = run_ltfb_serial_with_models(&cfg);
    let (winner, loss) = out.best();
    println!("winner: trainer {winner} @ validation loss {loss:.4}\n");

    // 2. Checkpoint the winner in the surrogate serving format.
    let dir = std::env::temp_dir().join(format!("ltfb-serve-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("winner.ltsv");
    ltfb::core::checkpoint::save_surrogate(&ckpt, &trainers[winner].gan, 1)
        .expect("save surrogate checkpoint");
    println!("checkpointed winner to {}", ckpt.display());

    // 3. Serve it: micro-batching across 2 workers, small response cache.
    let registry = Arc::new(
        ModelRegistry::from_checkpoint(&ckpt, &cfg.gan).expect("load surrogate checkpoint"),
    );
    let server = Server::start(
        Arc::clone(&registry),
        BatchPolicy {
            cache_capacity: 256,
            ..BatchPolicy::default()
        },
    );
    let (x_dim, y_dim) = {
        let m = registry.current();
        (m.x_dim(), m.y_dim())
    };
    println!(
        "serving model version {} (x_dim={x_dim}, y_dim={y_dim})\n",
        registry.version()
    );

    // 4. 1000 mixed queries from 8 closed-loop clients: 75% forward
    //    (design parameters -> predicted diagnostics), 25% inverse.
    let load = LoadGenConfig {
        clients: 8,
        requests_per_client: 125,
        inverse_fraction: 0.25,
        mode: LoadMode::Closed,
        seed: 2019,
        co_baseline: false,
    };
    let report = run_load(&server.client(), &load, x_dim, y_dim);

    // A single ad-hoc query through the same client handle.
    let x = vec![0.42f32; x_dim];
    let y = server.client().forward(&x).expect("forward query");
    println!(
        "point query: x={x:?} -> {} outputs, first scalars {:?}",
        y.len(),
        &y[..3]
    );

    // 5. Latency/throughput summary from the server's telemetry.
    let stats = server.shutdown();
    println!(
        "\nserved {} requests ({} forward, {} inverse) in {:.2}s",
        stats.completed, stats.forward, stats.inverse, stats.elapsed_secs
    );
    println!(
        "throughput: {:.0} req/s (client-side {:.0} req/s)",
        stats.throughput_rps,
        report.throughput_rps()
    );
    println!(
        "latency: mean {:.0}us  p50 {:.0}us  p95 {:.0}us  p99 {:.0}us  max {:.0}us",
        stats.latency_mean_us,
        stats.latency_p50_us,
        stats.latency_p95_us,
        stats.latency_p99_us,
        stats.latency_max_us
    );
    println!(
        "batching: mean {:.2} rows/GEMM, max {}; cache hits {}",
        stats.mean_batch, stats.max_batch, stats.cache_hits
    );
    std::fs::remove_dir_all(&dir).ok();
}
