//! Quickstart: train a small LTFB population on the synthetic ICF
//! problem and watch the tournament improve the population.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ltfb::prelude::*;

fn main() {
    // Four trainers, each owning a quarter of a 1024-sample synthetic JAG
    // dataset; tournaments every 25 steps.
    let mut cfg = LtfbConfig::small(4);
    cfg.steps = 200;
    cfg.ae_steps = 200;
    cfg.eval_interval = 50;

    println!(
        "LTFB quickstart: {} trainers x {} samples each, {} GAN steps, tournaments every {} steps",
        cfg.n_trainers,
        cfg.partition_len(),
        cfg.steps,
        cfg.exchange_interval
    );
    println!(
        "CycleGAN: {} latent dims, mini-batch {}\n",
        cfg.gan.latent, cfg.mb
    );

    let out = ltfb::core::run_ltfb_serial(&cfg);

    println!("validation-loss trajectories (global validation set):");
    for (t, hist) in out.histories.iter().enumerate() {
        let line: Vec<String> = hist
            .points()
            .iter()
            .map(|(s, l)| format!("{s}:{l:.3}"))
            .collect();
        println!(
            "  trainer {t} (won {} tournaments): {}",
            out.wins[t],
            line.join("  ")
        );
    }

    let (winner, loss) = out.best();
    println!("\ngenerator adoptions across the run: {}", out.adoptions);
    println!("best model: trainer {winner} with validation loss {loss:.4}");

    // Use the winner the way a domain scientist would: predict the
    // observable bundle for a new design point.
    let (outcome2, mut trainers) = ltfb::core::run_ltfb_serial_with_models(&cfg);
    let winner = &mut trainers[outcome2.best().0];
    let x = Matrix::row_vector(&[0.8, 0.1, 0.5, 0.5, 0.5]); // strong, symmetric drive
    let pred = winner.gan.predict(&x);
    println!(
        "\nsurrogate prediction for drive=0.8, low asymmetry: log-yield ~ {:.3} (scalar 0)",
        pred[(0, 0)]
    );
    let truth = JagSimulator::new(cfg.gan.jag).simulate([0.8, 0.1, 0.5, 0.5, 0.5]);
    println!(
        "ground truth from the JAG substitute:            {:.3}",
        truth.scalars[0]
    );
}
