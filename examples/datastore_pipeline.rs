//! The full data path of the paper, end to end: generate a bundle-file
//! dataset, stand up a 4-rank trainer with the distributed in-memory data
//! store, and feed CycleGAN training from the store — demonstrating the
//! "no file-system reads after the first epoch" property while a real
//! model trains on the delivered mini-batches.
//!
//! ```sh
//! cargo run --release --example datastore_pipeline
//! ```

use ltfb::comm::run_world;
use ltfb::datastore::{node_to_sample, DataStore, PopulateMode};
use ltfb::gan::{batch_from_samples, CycleGan, CycleGanConfig};
use ltfb::jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, Sample};

fn main() {
    let dir = temp_dataset_dir("pipeline-example");
    let cfg = CycleGanConfig::small(8);
    let spec = DatasetSpec::new(dir.clone(), cfg.jag, 2_000, 250);
    println!(
        "generating {} samples in {} bundle files...",
        spec.n_samples,
        spec.n_files()
    );
    spec.generate_all().expect("dataset generation");

    println!("running a 4-rank trainer with the preloaded data store...\n");
    let spec2 = spec.clone();
    let reports = run_world(4, move |comm| {
        let rank = comm.rank();
        let ids: Vec<u64> = (0..spec2.n_samples).collect();
        let mut store = DataStore::new(
            comm,
            spec2.clone(),
            ids,
            PopulateMode::Preload,
            64, // trainer-wide mini-batch; each rank consumes 16
            42,
            None,
        )
        .expect("store fits in memory");

        // Each rank trains its own replica on the samples the store
        // delivers (weight sync between replicas is exercised in the nn
        // crate; here we demonstrate the data path).
        let mut gan = CycleGan::new(cfg, 7);
        let mut step_losses = Vec::new();
        for epoch in 0..3u64 {
            let plan = store.epoch_plan(epoch);
            for step in 0..plan.steps() {
                let delivered = store.fetch_step(&plan, step, epoch).expect("exchange ok");
                let samples: Vec<Sample> = delivered
                    .iter()
                    .map(|(_, node)| node_to_sample(node).expect("delivered node schema intact"))
                    .collect();
                let refs: Vec<&Sample> = samples.iter().collect();
                let (x, y) = batch_from_samples(&cfg, &refs);
                if epoch == 0 {
                    gan.pretrain_autoencoder_step(&y);
                } else {
                    let l = gan.train_step(&x, &y);
                    step_losses.push(l.fidelity + l.cycle);
                }
            }
        }
        let stats = store.stats();
        let first: f32 = step_losses[..8.min(step_losses.len())].iter().sum::<f32>() / 8.0;
        let last: f32 = step_losses[step_losses.len().saturating_sub(8)..]
            .iter()
            .sum::<f32>()
            / 8.0;
        (rank, stats, store.owned_count(), first, last)
    });

    for (rank, stats, owned, first, last) in &reports {
        println!(
            "rank {rank}: owns {owned:>4} samples | file reads: {} whole-file, {} random | \
             shuffled in: {} samples / {} KiB | gen loss {first:.3} -> {last:.3}",
            stats.fs_file_reads,
            stats.fs_sample_reads,
            stats.shuffled_samples,
            stats.shuffled_bytes / 1024,
        );
    }
    let total_file_reads: u64 = reports.iter().map(|(_, s, ..)| s.fs_file_reads).sum();
    println!(
        "\nacross 3 epochs the trainer opened each of the {} files exactly once \
         (total {total_file_reads} whole-file reads) — epochs 1-2 ran entirely from memory.",
        spec.n_files()
    );
    cleanup_dataset_dir(&dir);
}
