//! Ensemble dataset generation with the Merlin-substitute workflow
//! engine: run a JAG "simulation campaign" that samples the 5-D design
//! space with a low-discrepancy design, simulates each bundle of 1,000
//! samples as one batched task, and packages results as bundle files —
//! Section II-C of the paper at laptop scale.
//!
//! ```sh
//! cargo run --release --example ensemble_generation
//! ```

use ltfb::jag::{cleanup_dataset_dir, temp_dataset_dir, DatasetSpec, JagConfig};
use ltfb::workflow::{run_workflow, WorkflowSpec};
use std::time::Duration;

fn main() {
    let dir = temp_dataset_dir("ensemble-example");
    let spec = DatasetSpec::new(dir.clone(), JagConfig::small(16), 20_000, 1000);
    println!(
        "campaign: {} samples -> {} bundle files of {} ({} each)",
        spec.n_samples,
        spec.n_files(),
        spec.samples_per_file,
        human(spec.samples_per_file * spec.cfg.sample_bytes()),
    );

    // Each task = generate one bundle file (1,000 JAG runs + packaging).
    let files: Vec<u64> = (0..spec.n_files()).collect();

    // First: the naive workflow — one task per dispatch, with a simulated
    // scheduler overhead per dispatch (the problem Merlin exists to fix).
    let naive = WorkflowSpec {
        workers: 4,
        batch_size: 1,
        max_retries: 1,
        dispatch_overhead: Duration::from_millis(30),
    };
    let (results, stats_naive) = run_workflow(&naive, &files, |&f| {
        spec.generate_file(f).map_err(|e| e.to_string())
    });
    assert!(results.iter().all(Result::is_ok));
    println!(
        "\nnaive scheduling : {:>8.2?}  ({} dispatches, {:.0} tasks/dispatch)",
        stats_naive.elapsed,
        stats_naive.batches_dispatched,
        stats_naive.tasks_per_dispatch()
    );

    // Then: batched dispatch, amortising the scheduler overhead.
    let batched = WorkflowSpec {
        batch_size: 5,
        ..naive
    };
    let (results, stats_batched) = run_workflow(&batched, &files, |&f| {
        spec.generate_file(f).map_err(|e| e.to_string())
    });
    assert!(results.iter().all(Result::is_ok));
    println!(
        "batched dispatch : {:>8.2?}  ({} dispatches, {:.0} tasks/dispatch)",
        stats_batched.elapsed,
        stats_batched.batches_dispatched,
        stats_batched.tasks_per_dispatch()
    );
    println!(
        "batching speedup : {:.2}x",
        stats_naive.elapsed.as_secs_f64() / stats_batched.elapsed.as_secs_f64()
    );

    // Verify the campaign output is readable and consistent.
    let mut reader = spec.open_file(3).expect("bundle readable");
    let all = reader.read_all().expect("bundle intact");
    println!(
        "\nspot check bundle 3: {} samples, first scalar of sample 0 = {:.4}",
        all.len(),
        all[0].scalars[0]
    );
    println!("dataset at {} (removing)", dir.display());
    cleanup_dataset_dir(&dir);
}

fn human(bytes: usize) -> String {
    if bytes > 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    }
}
