//! Around-the-loop usage of the trained surrogate (Section II-A): train
//! with LTFB, then (1) sweep the laser drive to locate the ignition
//! cliff with the fast forward model, and (2) invert observed outputs
//! back to plausible input parameters with the inverse model — the two
//! workflows the paper says domain scientists want the surrogate for.
//!
//! ```sh
//! cargo run --release --example surrogate_inversion
//! ```

use ltfb::core::{run_ltfb_serial_with_models, LtfbConfig};
use ltfb::jag::JagSimulator;
use ltfb::prelude::Matrix;

fn main() {
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 2048;
    cfg.steps = 400;
    cfg.ae_steps = 400;
    cfg.eval_interval = 100;
    println!(
        "training the surrogate with LTFB (K=4, {} steps)...\n",
        cfg.steps
    );
    let (out, mut trainers) = run_ltfb_serial_with_models(&cfg);
    let (best, loss) = out.best();
    println!("deploying trainer {best} (validation loss {loss:.4})\n");
    let surrogate = &mut trainers[best];
    let sim = JagSimulator::new(cfg.gan.jag);

    // --- Experiment optimisation: sweep the drive, read predicted yield.
    println!("drive sweep at low asymmetry (scalar 0 = normalised log yield):");
    println!("{:>7}  {:>10}  {:>10}", "drive", "surrogate", "JAG truth");
    let mut rows = Vec::new();
    for i in 0..9 {
        let drive = 0.1 + 0.1 * i as f32;
        rows.push([drive, 0.1, 0.5, 0.5, 0.5]);
    }
    let x = Matrix::from_fn(rows.len(), 5, |r, c| rows[r][c]);
    let pred = surrogate.gan.predict(&x);
    for (r, p) in rows.iter().enumerate() {
        let truth = sim.simulate(*p).scalars[0];
        println!("{:>7.2}  {:>10.3}  {:>10.3}", p[0], pred[(r, 0)], truth);
    }

    // --- Model inversion: recover inputs from observed outputs.
    println!("\ninverse model: recover design parameters from observations");
    let secret = [0.72f32, 0.15, 0.35, 0.60, 0.45];
    let observed = sim.simulate(secret);
    let y = Matrix::row_vector(&observed.output_vec());
    let recovered = surrogate.gan.invert(&y);
    println!("  true parameters     : {secret:?}");
    println!(
        "  recovered parameters: [{}]",
        recovered
            .row(0)
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let err: f32 = recovered
        .row(0)
        .iter()
        .zip(&secret)
        .map(|(r, t)| (r - t).abs())
        .sum::<f32>()
        / 5.0;
    println!("  mean absolute parameter error: {err:.3}");

    // --- Cycle consistency in action: push the recovery back through the
    // forward model and compare observables.
    let re_pred = surrogate.gan.predict(&recovered);
    let mae: f32 = re_pred
        .row(0)
        .iter()
        .zip(y.row(0))
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / y.cols() as f32;
    println!("  re-simulated observable MAE (cycle consistency): {mae:.4}");
}
