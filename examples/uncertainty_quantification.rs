//! Statistical UQ and efficient sampling with the LTFB population
//! (Section II-A's remaining use cases): treat the trained population as
//! a deep ensemble, read its disagreement as epistemic uncertainty, and
//! pick the next simulations where the surrogate is least sure.
//!
//! ```sh
//! cargo run --release --example uncertainty_quantification
//! ```

use ltfb::core::{
    adaptive_sample, optimize_design, run_ltfb_serial_with_models, LtfbConfig, PopulationEnsemble,
};
use ltfb::prelude::Matrix;

fn main() {
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 2048;
    cfg.steps = 400;
    cfg.ae_steps = 400;
    cfg.eval_interval = 200;
    println!(
        "training a population of {} surrogates with LTFB...\n",
        cfg.n_trainers
    );
    let (out, mut trainers) = run_ltfb_serial_with_models(&cfg);
    println!(
        "final validation losses: {:?}\n",
        out.final_val
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
    );

    // --- Experiment optimisation with the best member.
    let (best_id, _) = out.best();
    let optimum = optimize_design(&mut trainers[best_id], 0, 256);
    println!(
        "surrogate-optimal design (max log-yield): [{}] -> predicted {:.3}",
        optimum
            .params
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
        optimum.predicted
    );

    // --- Ensemble UQ across the design cube.
    let mut ensemble = PopulationEnsemble::new(trainers.iter_mut().collect());
    println!("\nensemble uncertainty along the drive axis (asym/modes mid-range):");
    println!("{:>7}  {:>10}  {:>10}", "drive", "mean_yld", "± std");
    let probes: Vec<[f32; 5]> = (0..7)
        .map(|i| [0.05 + 0.15 * i as f32, 0.2, 0.5, 0.5, 0.5])
        .collect();
    let mut x = Matrix::zeros(probes.len(), 5);
    for (r, p) in probes.iter().enumerate() {
        x.row_mut(r).copy_from_slice(p);
    }
    let pred = ensemble.predict(&x);
    for (r, p) in probes.iter().enumerate() {
        println!(
            "{:>7.2}  {:>10.3}  {:>10.3}",
            p[0],
            pred.mean[(r, 0)],
            pred.std[(r, 0)]
        );
    }

    // --- Efficient sampling: where should the next JAG runs go?
    let next = adaptive_sample(&mut ensemble, 500_000, 256, 5);
    println!("\n5 highest-disagreement design points (next simulations to run):");
    for p in &next {
        println!(
            "  [{}]",
            p.iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("\n(the population you already trained for speed doubles as the UQ");
    println!(" ensemble — a free by-product of tournament training)");
}
