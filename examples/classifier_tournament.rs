//! LTFB for *traditional* networks: tournament training of an ICF-outcome
//! classifier (yield-quartile prediction) — the original Jacobs et al.
//! 2017 algorithm this paper extends to GANs. Whole models are exchanged
//! (no discriminator to keep local).
//!
//! ```sh
//! cargo run --release --example classifier_tournament
//! ```

use ltfb::core::{run_classifier_population, LtfbConfig};

fn main() {
    let mut cfg = LtfbConfig::small(4);
    cfg.train_samples = 2048;
    cfg.val_samples = 512;
    cfg.tournament_samples = 96;
    cfg.steps = 600;
    cfg.exchange_interval = 50;
    cfg.eval_interval = 150;

    println!(
        "classifying implosion outcomes into 4 yield quartiles; {} trainers on region silos\n",
        cfg.n_trainers
    );

    let ltfb = run_classifier_population(&cfg, true);
    let kind = run_classifier_population(&cfg, false);

    println!("validation cross-entropy per trainer (LTFB with tournaments):");
    for (t, h) in ltfb.histories.iter().enumerate() {
        let line: Vec<String> = h
            .points()
            .iter()
            .map(|(s, l)| format!("{s}:{l:.3}"))
            .collect();
        println!("  trainer {t}: {}", line.join("  "));
    }
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    println!("\n                     LTFB      K-independent");
    println!(
        "final CE (avg)     {:>7.4}    {:>7.4}",
        avg(&ltfb.final_ce),
        avg(&kind.final_ce)
    );
    println!(
        "final CE (best)    {:>7.4}    {:>7.4}",
        ltfb.best().1,
        kind.best().1
    );
    println!(
        "accuracy (avg)     {:>6.1}%    {:>6.1}%",
        100.0 * avg(&ltfb.final_accuracy),
        100.0 * avg(&kind.final_accuracy)
    );
    println!("model adoptions    {:>7}", ltfb.adoptions);
    println!(
        "\nthe tournament lets every trainer benefit from whichever silo currently\n\
         produces the best classifier — the same mechanism the paper applies to GANs."
    );
}
