//! `ltfb-cli` — command-line front end for the reproduction.
//!
//! ```text
//! ltfb-cli train    [--trainers K] [--steps N] [--seed S] [--distributed]
//!                   [--lr-spread F] [--by-index] [--kindep]
//!                   [--fault SPEC] [--ingest] [--store mmap[:<dir>]]
//!                   [--metrics [PATH]]
//! ltfb-cli classify [--trainers K] [--steps N] [--seed S]
//! ltfb-cli simulate <fig9|fig10|fig11>
//! ltfb-cli generate --dir PATH [--samples N] [--per-file M]
//! ltfb-cli serve-bench [--clients C] [--requests N] [--max-batch B] [--workers W]
//!                      [--open-rate RPS] [--inverse-frac F] [--cache N] [--img-size P]
//!                      [--checkpoint PATH] [--quant int8] [--csv PATH] [--json PATH]
//!                      [--metrics [PATH]]
//!                      [--shards N] [--slo-p99-us T] [--spill-depth D] [--shed-depth D]
//!                      [--no-adaptive] [--tail-alpha A] [--diurnal-amp F]
//!                      [--hot-keys N] [--zipf S] [--sweep-secs T]
//! ltfb-cli help
//! ```
//!
//! `--metrics` exports a unified `ltfb-obs` report (comm traffic, datastore
//! I/O and shuffle volume, tournament outcomes / per-round adoption rates,
//! serving latency) as JSON under the results directory.
//!
//! Argument parsing is hand-rolled (the reproduction keeps its dependency
//! set to the numeric/concurrency essentials).

use ltfb::comm::FaultPlan;
use ltfb::core::{
    record_run_outcome, run_classifier_population, run_k_independent, run_ltfb_distributed,
    run_ltfb_distributed_ft, run_ltfb_distributed_ft_obs, run_ltfb_distributed_obs,
    run_ltfb_serial, run_ltfb_serial_obs, run_ltfb_two_level, run_ltfb_two_level_obs,
    run_ltfb_with_failures, LtfbConfig, PartitionScheme,
};
use ltfb::hpcsim::{
    dp_placement, evaluate_config, paper_sweep, IngestMode, MachineSpec, TrainingModel,
    WorkloadSpec,
};
use ltfb::jag::{DatasetSpec, JagConfig};
use ltfb::obs::Registry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "train" => train(&flags),
        "classify" => classify(&flags),
        "simulate" => simulate(&flags),
        "generate" => generate(&flags),
        "serve-bench" => serve_bench(&flags),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag bag: `--key value` pairs, bare flags, and positionals.
struct Flags {
    kv: Vec<(String, String)>,
    bare: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut kv = Vec::new();
        let mut bare = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
                if takes_value {
                    kv.push((key.to_string(), args[i + 1].clone()));
                    i += 2;
                } else {
                    kv.push((key.to_string(), String::new()));
                    i += 1;
                }
            } else {
                bare.push(a.clone());
                i += 1;
            }
        }
        Flags { kv, bare }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.kv
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.kv.iter().any(|(k, _)| k == key)
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Destination of a `--metrics [PATH]` export: the explicit PATH, or
/// `<results dir>/<default_name>` for the bare flag (the results dir
/// honours `LTFB_RESULTS_DIR`, like the bench binaries).
fn metrics_path(flags: &Flags, default_name: &str) -> PathBuf {
    match flags.get_str("metrics") {
        Some(p) if !p.is_empty() => PathBuf::from(p),
        _ => {
            let dir = std::env::var("LTFB_RESULTS_DIR").unwrap_or_else(|_| "results".into());
            PathBuf::from(dir).join(default_name)
        }
    }
}

fn write_metrics(registry: &Registry, path: &Path) {
    match registry.write_report(path) {
        Ok(()) => println!("wrote metrics {}", path.display()),
        Err(e) => eprintln!("cannot write metrics {}: {e}", path.display()),
    }
}

/// Store-backed ingest demo phase: a tiny 2-rank dynamic-mode ingest
/// over a throwaway dataset, epochs 0-1, driven through the
/// double-buffering [`Prefetcher`] so a `--metrics` run exports real
/// `datastore.rN.shuffled_bytes` *and* `train.prefetch_*` overlap
/// counters alongside the training metrics.
/// Runs the same work with or without a registry, so the metrics-overhead
/// smoke compares identical runs that differ only in recording.
fn ingest_demo(seed: u64, metrics: Option<&Registry>) {
    use ltfb::comm::{run_world, run_world_obs};
    use ltfb::datastore::{DataStore, PopulateMode, Prefetcher};
    use ltfb::jag::{cleanup_dataset_dir, temp_dataset_dir};

    const RANKS: usize = 2;
    let dir = temp_dataset_dir(&format!("cli-ingest-{seed}"));
    let spec = DatasetSpec::new(dir.clone(), JagConfig::small(4), 64, 8);
    if let Err(e) = spec.generate_all() {
        eprintln!("ingest demo: cannot generate dataset: {e}");
        return;
    }
    let reg = metrics.cloned();
    let body = move |comm: ltfb::comm::Comm| {
        let ids: Vec<u64> = (0..spec.n_samples).collect();
        let mut store = DataStore::new(
            comm,
            spec.clone(),
            ids,
            PopulateMode::Dynamic,
            8,
            seed,
            None,
        )
        .expect("tiny ingest partition always fits");
        let mut pf = Prefetcher::new();
        if let Some(r) = &reg {
            store.attach_obs(r);
            pf.attach_obs(r);
        }
        for epoch in 0..2 {
            pf.fetch_epoch(&mut store, epoch).expect("ingest epoch");
        }
        store.stats()
    };
    let stats = match metrics {
        Some(r) => run_world_obs(RANKS, r, body),
        None => run_world(RANKS, body),
    };
    let (reads, shuffled, bytes) = stats.iter().fold((0u64, 0u64, 0u64), |a, s| {
        (
            a.0 + s.fs_sample_reads,
            a.1 + s.shuffled_samples,
            a.2 + s.shuffled_bytes,
        )
    });
    println!(
        "ingest demo: {RANKS} ranks, {reads} epoch-0 sample reads, \
         {shuffled} samples / {bytes} B shuffled in epoch 1"
    );
    cleanup_dataset_dir(&dir);
}

/// Tiered-store demo phase (`--store mmap[:<dir>]`): a 2-rank trainer
/// runs the same golden-seed epochs twice — once over the in-memory
/// reference store, once over the tiered mmap-shard store with a hot-tier
/// budget below the partition — and prints a greppable
/// `bit_identical=<bool>` verdict plus the tier hit rate. A streaming
/// shard written through the workflow engine's [`StreamingIngest`] is
/// adopted at an epoch boundary mid-run, so a `--metrics` export carries
/// `store.rN.tier_*`, `store.rN.bytes_mapped`, `ingest.samples/bytes`
/// and `ingest.epoch_growth` alongside the training metrics.
fn store_demo(arg: &str, seed: u64, metrics: Option<&Registry>) -> bool {
    use ltfb::comm::{run_world, run_world_obs};
    use ltfb::datastore::{node_to_sample, DataStore, PopulateMode};
    use ltfb::gan::{batch_from_samples, CycleGan, CycleGanConfig, StepLosses};
    use ltfb::jag::{cleanup_dataset_dir, jag_schema, sample_payload, temp_dataset_dir, Sample};
    use ltfb::workflow::{StreamingIngest, WorkflowSpec};

    const RANKS: usize = 2;
    const N: u64 = 48;
    const EPOCHS: u64 = 3;
    let (dir, throwaway) = match arg.strip_prefix("mmap") {
        Some("") => (temp_dataset_dir(&format!("cli-store-{seed}")), true),
        Some(rest) => match rest.strip_prefix(':') {
            Some(d) if !d.is_empty() => (PathBuf::from(d), false),
            _ => {
                eprintln!("bad --store spec `{arg}`: use mmap or mmap:<dir>");
                return false;
            }
        },
        None => {
            eprintln!("bad --store spec `{arg}`: use mmap or mmap:<dir>");
            return false;
        }
    };
    let cfg = CycleGanConfig::small(4);
    let spec = DatasetSpec::new(dir.clone(), cfg.jag, N, 8);
    if let Err(e) = spec.generate_all() {
        eprintln!("store demo: cannot generate dataset: {e}");
        return false;
    }
    if let Err(e) = spec.generate_all_shards() {
        eprintln!("store demo: cannot generate shards: {e}");
        return false;
    }
    // Streaming side: the workflow engine generates four fresh samples
    // into an appendable shard the trainer adopts at an epoch boundary.
    let ingest_path = dir.join("ingest.ltbs");
    let sim = ltfb::jag::JagSimulator::new(spec.cfg);
    let ingested = (|| -> Result<u64, ltfb::bundle::CheckpointError> {
        let mut ing = StreamingIngest::create(&ingest_path, jag_schema(&spec.cfg))?;
        if let Some(r) = metrics {
            ing.attach_obs(r);
        }
        let tasks: Vec<u64> = (N..N + 4).collect();
        let (failures, _) = ing.generate_round(
            &WorkflowSpec {
                workers: 2,
                batch_size: 2,
                ..Default::default()
            },
            &tasks,
            |&id| Ok((id, sample_payload(&sim.simulate(spec.params_of(id))))),
        )?;
        if !failures.is_empty() {
            eprintln!("store demo: {} ingest tasks failed", failures.len());
        }
        Ok(ing.samples())
    })();
    let ingested = match ingested {
        Ok(n) => n,
        Err(e) => {
            eprintln!("store demo: ingest failed: {e}");
            return false;
        }
    };
    let reg = metrics.cloned();
    let spec2 = spec.clone();
    let ingest2 = ingest_path.clone();
    let loss_bits = |l: &StepLosses| {
        [
            l.d_loss.to_bits(),
            l.adv.to_bits(),
            l.fidelity.to_bits(),
            l.cycle.to_bits(),
            l.recon.to_bits(),
        ]
    };
    let body = move |comm: ltfb::comm::Comm| {
        let ids: Vec<u64> = (0..N).collect();
        let run = |mut store: DataStore| {
            if let Some(r) = &reg {
                store.attach_obs(r);
            }
            let mut gan = CycleGan::new(cfg, seed);
            let mut traj = Vec::new();
            for epoch in 0..EPOCHS {
                let plan = store.epoch_plan(epoch);
                for step in 0..plan.steps() {
                    let got = store.fetch_step(&plan, step, epoch).expect("fetch");
                    let samples: Vec<Sample> = got
                        .iter()
                        .map(|(_, n)| node_to_sample(n).expect("schema intact"))
                        .collect();
                    let refs: Vec<&Sample> = samples.iter().collect();
                    let (x, y) = batch_from_samples(&cfg, &refs);
                    traj.push(loss_bits(&gan.train_step(&x, &y)));
                }
            }
            (traj, store)
        };
        // Budget holds the whole per-rank working set: epoch 0 misses
        // once per sample, the warm epochs hit — the smoke test pins a
        // hit-rate floor on exactly this shape.
        let budget = (N + 8) * spec2.cfg.sample_bytes() as u64;
        let (mem_traj, _) = run(DataStore::new(
            comm.dup(),
            spec2.clone(),
            ids.clone(),
            PopulateMode::Preload,
            8,
            seed,
            None,
        )
        .expect("demo partition fits"));
        let (tier_traj, mut tier_store) =
            run(
                DataStore::new_tiered(comm, spec2.clone(), ids, 8, seed, budget, 1)
                    .expect("tiered store opens"),
            );
        // Streaming ingest: adopt the published shard at the epoch
        // boundary and run one more epoch over the grown partition.
        tier_store
            .attach_ingest(&ingest2)
            .expect("ingest shard attaches");
        let adopted = tier_store.refresh_ingest().expect("ingest refresh");
        let consumed: usize = {
            let plan = tier_store.epoch_plan(EPOCHS);
            (0..plan.steps())
                .map(|s| {
                    tier_store
                        .fetch_step(&plan, s, EPOCHS)
                        .expect("ingest epoch fetch")
                        .len()
                })
                .sum()
        };
        (
            mem_traj == tier_traj,
            adopted,
            consumed,
            tier_store.tier_stats(),
        )
    };
    let outcomes = match metrics {
        Some(r) => run_world_obs(RANKS, r, body),
        None => run_world(RANKS, body),
    };
    let identical = outcomes.iter().all(|(same, _, _, _)| *same);
    let adopted = outcomes.first().map_or(0, |(_, a, _, _)| *a);
    let consumed: usize = outcomes.iter().map(|(_, _, c, _)| c).sum();
    let (hits, misses, mapped) = outcomes.iter().fold((0u64, 0u64, 0u64), |a, (_, _, _, s)| {
        let s = s.as_ref().expect("tiered run has stats");
        (a.0 + s.hits, a.1 + s.misses, a.2 + s.bytes_mapped)
    });
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "store demo: {RANKS} ranks, {EPOCHS}+1 epochs, {ingested} samples ingested / \
         {adopted} adopted ({consumed} consumed post-adoption), \
         bit_identical={identical} tier_hit_rate={hit_rate:.2} bytes_mapped={mapped}"
    );
    if throwaway {
        cleanup_dataset_dir(&dir);
    }
    identical
}

/// Data-parallel overlap demo phase: a 2-replica pair drives
/// backward-overlapped training steps (`dp_train_step_overlapped` —
/// bucketed gradients over the nonblocking chunked ring allreduce), so a
/// `--metrics` run exports live `comm.rN.allreduce_chunk_inflight` and
/// `comm.rN.bucket_inflight` peaks alongside the training metrics —
/// direct evidence that subchunk send `k+1` overlaps reduce `k` and that
/// buckets enter the engine while backward is still running. Like
/// `ingest_demo`, the same work runs with or without a registry so the
/// metrics-overhead smoke compares identical runs.
fn dp_demo(seed: u64, metrics: Option<&Registry>) {
    use ltfb::comm::{run_world, run_world_obs};
    use ltfb::core::{dp_train_step_overlapped, DpOverlap};
    use ltfb::gan::{batch_from_samples, CycleGan, CycleGanConfig};
    use ltfb::jag::{r2_point, JagSimulator, Sample};
    use ltfb::nn::Workspace;

    const RANKS: usize = 2;
    const MB: usize = 16;
    const STEPS: usize = 8;
    let body = move |comm: ltfb::comm::Comm| {
        let cfg = CycleGanConfig::small(4);
        let sim = JagSimulator::new(cfg.jag);
        let samples: Vec<Sample> = (0..(2 * MB) as u64)
            .map(|i| sim.simulate(r2_point(seed.wrapping_add(i))))
            .collect();
        let batches: Vec<_> = samples
            .chunks(MB)
            .map(|chunk| {
                let refs: Vec<&Sample> = chunk.iter().collect();
                batch_from_samples(&cfg, &refs)
            })
            .collect();
        let shard = MB / RANKS;
        let (lo, hi) = (comm.rank() * shard, (comm.rank() + 1) * shard);
        let mut gan = CycleGan::new(cfg, seed);
        let mut ws = Workspace::new();
        let mut ov = DpOverlap::new();
        for step in 0..STEPS {
            let (x, y) = &batches[step % batches.len()];
            let (xs, ys) = (x.slice_rows(lo, hi), y.slice_rows(lo, hi));
            dp_train_step_overlapped(&mut gan, &xs, &ys, &comm, &mut ws, &mut ov);
        }
        gan.generator_fingerprint()
    };
    let fps = match metrics {
        Some(r) => run_world_obs(RANKS, r, body),
        None => run_world(RANKS, body),
    };
    let consistent = fps.windows(2).all(|w| w[0] == w[1]);
    println!("dp demo: {RANKS} replicas, {STEPS} overlapped-allreduce steps, replicas consistent: {consistent}");
}

fn build_cfg(flags: &Flags) -> LtfbConfig {
    let k = flags.get("trainers", 4usize);
    let mut cfg = LtfbConfig::small(k.max(1));
    cfg.steps = flags.get("steps", 200u64);
    cfg.ae_steps = flags.get("ae-steps", cfg.steps);
    cfg.seed = flags.get("seed", 2019u64);
    cfg.train_samples = flags.get("samples", 1024u64);
    cfg.exchange_interval = flags.get("exchange", 25u64);
    cfg.eval_interval = flags.get("eval", 50u64);
    cfg.lr_spread = flags.get("lr-spread", 1.0f32);
    if flags.has("by-index") {
        cfg.partition = PartitionScheme::ByIndex;
    }
    cfg
}

fn train(flags: &Flags) -> ExitCode {
    let cfg = build_cfg(flags);
    println!(
        "LTFB: K={} steps={} seed={} partition={:?} lr_spread={}",
        cfg.n_trainers, cfg.steps, cfg.seed, cfg.partition, cfg.lr_spread
    );
    let fault = match flags.get_str("fault") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("bad --fault spec `{spec}`: {e}\n");
                usage();
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::none(),
    };
    let metrics = flags.has("metrics").then(Registry::new);
    let replicas = flags.get("replicas", 1usize);
    if !fault.is_empty() && (replicas > 1 || flags.has("kindep")) {
        eprintln!("--fault applies to the serial and --distributed LTFB drivers only");
        return ExitCode::FAILURE;
    }
    if replicas > 1 {
        println!("(two-level: {replicas} data-parallel replicas per trainer)");
        let out = match &metrics {
            Some(reg) => run_ltfb_two_level_obs(&cfg, replicas, reg),
            None => run_ltfb_two_level(&cfg, replicas),
        };
        for (t, h) in out.histories.iter().enumerate() {
            let pts: Vec<String> = h
                .points()
                .iter()
                .map(|(s, l)| format!("{s}:{l:.3}"))
                .collect();
            println!("trainer {t}: {}", pts.join("  "));
        }
        let (best, loss) = out.best();
        println!(
            "adoptions: {}  best: trainer {best} @ {loss:.4}  replicas consistent: {}",
            out.adoptions, out.replicas_consistent
        );
        if let Some(reg) = &metrics {
            write_metrics(reg, &metrics_path(flags, "ltfb_metrics.json"));
        }
        return ExitCode::SUCCESS;
    }
    let out = if flags.has("kindep") {
        println!("(K-independent baseline: tournaments disabled)");
        let out = run_k_independent(&cfg);
        if let Some(reg) = &metrics {
            record_run_outcome(reg, &out);
        }
        out
    } else if flags.has("distributed") {
        println!("(distributed driver: one rank per trainer)");
        if fault.is_empty() {
            match &metrics {
                Some(reg) => run_ltfb_distributed_obs(&cfg, reg),
                None => run_ltfb_distributed(&cfg),
            }
        } else {
            println!(
                "(fault plan: {} kill(s), degrading to the survivor pool)",
                fault.kill_count()
            );
            match &metrics {
                Some(reg) => run_ltfb_distributed_ft_obs(&cfg, &fault, reg),
                None => run_ltfb_distributed_ft(&cfg, &fault),
            }
        }
    } else if !fault.is_empty() {
        // The serial driver models fail-stop kills only; scripted delays
        // and message drops need the distributed driver's real clocks.
        let kills: Vec<(usize, u64)> = (0..cfg.n_trainers)
            .filter_map(|r| fault.kill_step(r).map(|s| (r, s)))
            .collect();
        if kills.len() < fault.events.len() {
            eprintln!("(serial driver: only kill events apply; use --distributed for delay/drop)");
        }
        println!(
            "(fault plan: {} kill(s), survivors keep training)",
            kills.len()
        );
        let out = run_ltfb_with_failures(&cfg, &kills);
        if let Some(reg) = &metrics {
            record_run_outcome(reg, &out);
        }
        out
    } else {
        match &metrics {
            Some(reg) => run_ltfb_serial_obs(&cfg, reg),
            None => run_ltfb_serial(&cfg),
        }
    };
    if flags.has("ingest") {
        ingest_demo(cfg.seed, metrics.as_ref());
        dp_demo(cfg.seed, metrics.as_ref());
    }
    if let Some(spec) = flags.get_str("store") {
        if !store_demo(spec, cfg.seed, metrics.as_ref()) {
            return ExitCode::FAILURE;
        }
    }
    for (t, h) in out.histories.iter().enumerate() {
        let pts: Vec<String> = h
            .points()
            .iter()
            .map(|(s, l)| format!("{s}:{l:.3}"))
            .collect();
        println!("trainer {t}: {}", pts.join("  "));
    }
    let (best, loss) = out.best();
    println!(
        "adoptions: {}  best: trainer {best} @ {loss:.4}",
        out.adoptions
    );
    if let Some(reg) = &metrics {
        write_metrics(reg, &metrics_path(flags, "ltfb_metrics.json"));
    }
    ExitCode::SUCCESS
}

fn classify(flags: &Flags) -> ExitCode {
    let cfg = build_cfg(flags);
    println!("classifier LTFB: K={} steps={}", cfg.n_trainers, cfg.steps);
    let out = run_classifier_population(&cfg, !flags.has("kindep"));
    for (t, (ce, acc)) in out.final_ce.iter().zip(&out.final_accuracy).enumerate() {
        println!(
            "trainer {t}: cross-entropy {ce:.4}, accuracy {:.1}%",
            acc * 100.0
        );
    }
    println!("adoptions: {}", out.adoptions);
    ExitCode::SUCCESS
}

fn simulate(flags: &Flags) -> ExitCode {
    let m = MachineSpec::lassen();
    let w = WorkloadSpec::icf_cyclegan();
    let t = TrainingModel::default();
    match flags.bare.first().map(String::as_str) {
        Some("fig9") => {
            for gpus in [1usize, 2, 4, 8, 16] {
                let out = evaluate_config(
                    &m,
                    &w,
                    &t,
                    dp_placement(gpus),
                    1_000_000,
                    IngestMode::NoStore,
                    1,
                );
                println!(
                    "{gpus:>3} GPUs: {:>7.0} s/epoch",
                    out.steady_total().unwrap()
                );
            }
        }
        Some("fig10") => {
            for mode in [
                IngestMode::NoStore,
                IngestMode::DynamicStore,
                IngestMode::Preloaded,
            ] {
                let out = evaluate_config(&m, &w, &t, dp_placement(16), 1_000_000, mode, 1);
                match out.steady_total() {
                    Some(s) => println!("{mode:?}: {s:.0} s/epoch steady"),
                    None => println!("{mode:?}: OOM"),
                }
            }
        }
        Some("fig11") => {
            let pts = paper_sweep(&m, &w, &t);
            let base = pts[0].epoch_time;
            for p in &pts {
                println!(
                    "{:>2} trainers ({:>4} GPUs): {:>7.1} s/epoch  speedup {:>5.1}x  preload {:>6.1} s",
                    p.trainers,
                    p.gpus,
                    p.epoch_time,
                    base / p.epoch_time,
                    p.preload_time
                );
            }
        }
        _ => {
            eprintln!("simulate needs one of: fig9 fig10 fig11");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn generate(flags: &Flags) -> ExitCode {
    let Some(dir) = flags.get_str("dir") else {
        eprintln!("generate requires --dir PATH");
        return ExitCode::FAILURE;
    };
    let samples = flags.get("samples", 10_000u64);
    let per_file = flags.get("per-file", 1000usize);
    let img = flags.get("img-size", 16usize);
    let spec = DatasetSpec::new(dir, JagConfig::small(img), samples, per_file);
    println!(
        "generating {} samples ({} files x {}, {} B/sample) into {}",
        spec.n_samples,
        spec.n_files(),
        spec.samples_per_file,
        spec.cfg.sample_bytes(),
        spec.dir.display()
    );
    match spec.generate_all() {
        Ok(()) => {
            println!("done");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Benchmark the sharded serving fleet: measure closed-loop capacity,
/// then sweep open-loop heavy-tailed diurnal Zipf traffic at 0.5×/1×/2×
/// capacity and record the goodput-under-overload curve, coordinated-
/// omission-corrected percentiles, and shed counts. Writes
/// `results/serve_fleet.csv` plus a `BENCH_serve.json` the CI smoke
/// (`scripts/serve_smoke.sh`) gates against.
fn serve_fleet_bench(flags: &Flags) -> ExitCode {
    use ltfb::gan::{CycleGan, CycleGanConfig};
    use ltfb::serve::{
        run_load, run_traffic, BatchPolicy, Fleet, FleetConfig, LoadGenConfig, LoadMode,
        LoadReport, ModelRegistry, SloPolicy, TrafficModel,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let shards = flags.get("shards", 2usize);
    let clients = flags.get("clients", 8usize);
    let requests = flags.get("requests", 400usize);
    let img = flags.get("img-size", 8usize);
    let seed = flags.get("seed", 2019u64);
    let sweep_secs = flags.get("sweep-secs", 1.0f64);
    let policy = BatchPolicy {
        max_batch: flags.get("max-batch", 32usize),
        flush_deadline: Duration::from_micros(flags.get("flush-us", 50u64)),
        queue_cap: flags.get("queue-cap", 1024usize),
        workers: flags.get("workers", 2usize),
        // Fleet traffic is Zipf-skewed, so the cache defaults ON here
        // (plain serve-bench keeps it off for a pure batching number).
        cache_capacity: flags.get("cache", 256usize),
        cache_quantum: flags.get("cache-quantum", 1.0e-3f32),
        ..BatchPolicy::default()
    };
    let slo = SloPolicy {
        p99_target_us: flags.get("slo-p99-us", 5_000.0f64),
        spill_depth: flags.get("spill-depth", 16usize),
        shed_depth: flags.get("shed-depth", 128usize),
        adaptive: !flags.has("no-adaptive"),
        ..SloPolicy::default()
    };
    for (what, v, min) in [
        ("--shards", shards, 1usize),
        ("--clients", clients, 1),
        ("--requests", requests, 1),
        ("--img-size", img, 4),
        ("--max-batch", policy.max_batch, 1),
        ("--workers", policy.workers, 1),
        ("--shed-depth", slo.shed_depth, 1),
    ] {
        if v < min {
            eprintln!("serve-bench: {what} must be at least {min} (got {v})");
            return ExitCode::FAILURE;
        }
    }
    if !sweep_secs.is_finite() || sweep_secs <= 0.0 {
        eprintln!("serve-bench: --sweep-secs must be positive");
        return ExitCode::FAILURE;
    }

    let gan_cfg = CycleGanConfig::small(img);
    let cfg = FleetConfig {
        shards,
        policy,
        slo,
    };
    let make_fleet = |metrics: Option<&Registry>| -> Fleet {
        // Every shard starts from the same seed, so replicas are
        // identical — exactly the invariant publish fan-out maintains.
        let regs: Vec<Arc<ModelRegistry>> = (0..shards)
            .map(|_| Arc::new(ModelRegistry::new(CycleGan::new(gan_cfg, seed), 1)))
            .collect();
        match metrics {
            Some(m) => Fleet::start_with_obs(regs, cfg, m),
            None => Fleet::start(regs, cfg),
        }
    };
    let (x_dim, y_dim) = (gan_cfg.x_dim(), gan_cfg.y_dim());
    let tm_base = TrafficModel {
        diurnal_amp: flags.get("diurnal-amp", 0.3f64),
        tail_alpha: flags.get("tail-alpha", 1.5f64),
        hot_keys: flags.get("hot-keys", 256usize),
        zipf_exponent: flags.get("zipf", 1.1f64),
        inverse_fraction: flags.get("inverse-frac", 0.25f64),
        seed,
        ..TrafficModel::default()
    };

    println!(
        "serve-bench (fleet): {shards} shards, {clients} clients, y_dim={}, \
         slo p99 {:.0}us, shed depth {}",
        gan_cfg.y_dim(),
        cfg.slo.p99_target_us,
        cfg.slo.shed_depth,
    );

    let describe = |label: &str, offered: f64, r: &LoadReport| {
        println!(
            "{label:>9}: offered {offered:>7.0} rps  goodput {:>7.0} rps  \
             p50 {:>6.0}us  p99 {:>7.0}us  p99.9 {:>7.0}us  shed {}  rejected {}",
            r.goodput_rps(),
            r.lat_p50_us,
            r.lat_p99_us,
            r.lat_p999_us,
            r.shed,
            r.rejected,
        );
    };

    // Capacity probe: closed-loop saturation throughput of the fleet.
    let fleet = make_fleet(None);
    let load = LoadGenConfig {
        clients,
        requests_per_client: requests,
        inverse_fraction: tm_base.inverse_fraction,
        mode: LoadMode::Closed,
        seed,
        co_baseline: false,
    };
    let cap_report = run_load(&fleet.client(), &load, x_dim, y_dim);
    let _ = fleet.shutdown();
    let capacity = cap_report.throughput_rps();
    if capacity <= 0.0 {
        eprintln!("serve-bench: capacity probe completed no requests");
        return ExitCode::FAILURE;
    }
    describe("capacity", capacity, &cap_report);

    // Overload sweep: open-loop heavy-tailed diurnal Zipf traffic at
    // 0.5×, 1× and 2× the measured capacity. The 2× point is where
    // admission control earns its keep — the metrics registry (if any)
    // watches that run so the causal trace records real shed episodes.
    let metrics = flags.has("metrics").then(Registry::new);
    let mults = [0.5f64, 1.0, 2.0];
    let mut sweep: Vec<(f64, f64, LoadReport, u64, u64, u64)> = Vec::new();
    for &mult in &mults {
        let rate = capacity * mult;
        let total = ((rate * sweep_secs) as usize).clamp(200, 100_000);
        let obs = (mult == 2.0).then_some(metrics.as_ref()).flatten();
        let fleet = make_fleet(obs);
        let tm = TrafficModel {
            base_rate: rate,
            ..tm_base
        };
        let report = run_traffic(&fleet.client(), &tm, clients, total, x_dim, y_dim);
        let stats = fleet.shutdown();
        describe(
            match mult {
                m if m < 1.0 => "0.5x",
                m if m > 1.0 => "2x",
                _ => "1x",
            },
            rate,
            &report,
        );
        sweep.push((mult, rate, report, stats.routed, stats.spills, stats.sheds));
    }
    let at_2x = &sweep[sweep.len() - 1].2;
    let goodput_frac = at_2x.goodput_rps() / capacity;
    println!(
        "goodput under 2x overload: {:.0}/{:.0} rps = {:.2} of capacity \
         ({} shed); corrected p99 {:.0}us vs send-clock p99 {:.0}us",
        at_2x.goodput_rps(),
        capacity,
        goodput_frac,
        at_2x.shed,
        at_2x.lat_p99_us,
        at_2x.send_lat_p99_us,
    );

    // results/serve_fleet.csv: the goodput-under-overload curve.
    let dir = std::env::var("LTFB_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let csv_path = flags
        .get_str("csv")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(&dir).join("serve_fleet.csv"));
    let write_csv = || -> std::io::Result<()> {
        if let Some(parent) = csv_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        use std::io::Write;
        let mut f = std::fs::File::create(&csv_path)?;
        writeln!(
            f,
            "label,offered_rps,goodput_rps,p50_us,p99_us,p999_us,\
             submitted,completed,shed,rejected,routed,spills"
        )?;
        let mut row = |label: &str, offered: f64, r: &LoadReport, routed: u64, spills: u64| {
            writeln!(
                f,
                "{label},{offered:.1},{:.1},{:.1},{:.1},{:.1},{},{},{},{},{routed},{spills}",
                r.goodput_rps(),
                r.lat_p50_us,
                r.lat_p99_us,
                r.lat_p999_us,
                r.submitted,
                r.completed,
                r.shed,
                r.rejected,
            )
        };
        row("capacity", capacity, &cap_report, 0, 0)?;
        for (mult, rate, r, routed, spills, _) in &sweep {
            row(&format!("open_{mult}x"), *rate, r, *routed, *spills)?;
        }
        Ok(())
    };
    match write_csv() {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", csv_path.display()),
    }

    // BENCH_serve.json: the committed numbers serve_smoke.sh gates on.
    let json_path = flags
        .get_str("json")
        .map(String::from)
        .or_else(|| std::env::var("LTFB_SERVE_JSON").ok())
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"serve_fleet_bench\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"shards\": {shards}, \"clients\": {clients}, \"workers\": {}, \
         \"max_batch\": {}, \"cache\": {}, \"spill_depth\": {}, \"shed_depth\": {}, \
         \"slo_p99_us\": {:.1}, \"adaptive\": {}, \"seed\": {seed}}},\n",
        cfg.policy.workers,
        cfg.policy.max_batch,
        cfg.policy.cache_capacity,
        cfg.slo.spill_depth,
        cfg.slo.shed_depth,
        cfg.slo.p99_target_us,
        cfg.slo.adaptive,
    ));
    j.push_str(&format!("  \"capacity_rps\": {capacity:.1},\n"));
    for (mult, rate, r, routed, spills, sheds) in &sweep {
        j.push_str(&format!(
            "  \"open_{mult}x\": {{\"offered_rps\": {rate:.1}, \"goodput_rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"shed\": {}, \
             \"routed\": {routed}, \"spills\": {spills}, \"router_sheds\": {sheds}}},\n",
            r.goodput_rps(),
            r.lat_p50_us,
            r.lat_p99_us,
            r.lat_p999_us,
            r.shed,
        ));
    }
    j.push_str(&format!(
        "  \"goodput_frac_at_2x\": {goodput_frac:.3},\n  \"shed_at_2x\": {},\n",
        at_2x.shed
    ));
    j.push_str(&format!(
        "  \"co_corrected_p99_us\": {:.1},\n  \"co_send_clock_p99_us\": {:.1}\n}}\n",
        at_2x.lat_p99_us, at_2x.send_lat_p99_us
    ));
    match std::fs::write(&json_path, j) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("cannot write {json_path}: {e}"),
    }

    if let Some(reg) = &metrics {
        write_metrics(reg, &metrics_path(flags, "serve_fleet_metrics.json"));
    }
    ExitCode::SUCCESS
}

/// Benchmark the serving engine: drive the same load through a
/// micro-batching server and a forced batch-size-1 server and report the
/// throughput/latency difference.
fn serve_bench(flags: &Flags) -> ExitCode {
    use ltfb::gan::{CycleGan, CycleGanConfig};
    use ltfb::serve::{
        check_quantized, run_load, BatchPolicy, LoadGenConfig, LoadMode, ModelRegistry, QuantMode,
        ServeStats, Server,
    };
    use std::sync::Arc;
    use std::time::Duration;

    if flags.has("shards") {
        return serve_fleet_bench(flags);
    }

    let quant_mode = match flags.get_str("quant") {
        None | Some("f32") => QuantMode::F32,
        Some("int8") => QuantMode::Int8,
        Some(other) => {
            eprintln!("serve-bench: unknown --quant mode '{other}' (expected int8 or f32)");
            return ExitCode::FAILURE;
        }
    };

    let clients = flags.get("clients", 8usize);
    let requests = flags.get("requests", 500usize);
    let img = flags.get("img-size", 8usize);
    let policy = BatchPolicy {
        max_batch: flags.get("max-batch", 32usize),
        flush_deadline: Duration::from_micros(flags.get("flush-us", 50u64)),
        queue_cap: flags.get("queue-cap", 1024usize),
        workers: flags.get("workers", 2usize),
        cache_capacity: flags.get("cache", 0usize),
        cache_quantum: flags.get("cache-quantum", 1.0e-3f32),
        ..BatchPolicy::default()
    };
    for (what, v, min) in [
        ("--clients", clients, 1usize),
        ("--requests", requests, 1),
        ("--img-size", img, 4),
        ("--max-batch", policy.max_batch, 1),
        ("--workers", policy.workers, 1),
        ("--queue-cap", policy.queue_cap, 1),
    ] {
        if v < min {
            eprintln!("serve-bench: {what} must be at least {min} (got {v})");
            return ExitCode::FAILURE;
        }
    }
    let gan_cfg = CycleGanConfig::small(img);
    let load = LoadGenConfig {
        clients,
        requests_per_client: requests,
        inverse_fraction: flags.get("inverse-frac", 0.25f64),
        mode: match flags.get_str("open-rate") {
            Some(r) => LoadMode::Open {
                rate_per_sec: r.parse().unwrap_or_else(|_| {
                    eprintln!("bad --open-rate {r}, using 10000");
                    10_000.0
                }),
            },
            None => LoadMode::Closed,
        },
        seed: flags.get("seed", 2019u64),
        co_baseline: false,
    };

    let make_gan = || -> Option<(CycleGan, u64)> {
        match flags.get_str("checkpoint") {
            Some(path) => {
                match ltfb::core::checkpoint::load_surrogate(std::path::Path::new(path), &gan_cfg) {
                    Ok((gan, version)) => {
                        println!("serving checkpoint {path} (version {version})");
                        Some((gan, version))
                    }
                    Err(e) => {
                        eprintln!("cannot load checkpoint {path}: {e}");
                        None
                    }
                }
            }
            None => Some((CycleGan::new(gan_cfg, flags.get("seed", 2019u64)), 1)),
        }
    };
    let build_registry = |mode: QuantMode| -> Option<Arc<ModelRegistry>> {
        let (gan, version) = make_gan()?;
        let reg = ModelRegistry::with_mode(gan, version, mode);
        if mode == QuantMode::Int8 && !reg.current().is_quantized() {
            eprintln!("serve-bench: int8 quantization degraded to f32 (see registry gate)");
        }
        Some(Arc::new(reg))
    };

    // Accuracy probe: under --quant int8, re-run the registry's own
    // publication gate out loud so the bench records that the served
    // path honours its analytic error bound.
    if quant_mode == QuantMode::Int8 {
        let Some((gan, version)) = make_gan() else {
            return ExitCode::FAILURE;
        };
        match gan.quantize_int8() {
            Ok(q) => match check_quantized(&gan, &q, version) {
                Ok(()) => println!("int8 accuracy probe: within analytic error bound"),
                Err(reason) => {
                    eprintln!("int8 accuracy probe FAILED: {reason}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("int8 quantization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The batched arm records into the shared registry; the unbatched
    // baseline arm does not, so the export describes the headline config.
    let metrics = flags.has("metrics").then(Registry::new);
    let run_one = |label: &str,
                   policy: BatchPolicy,
                   obs: Option<&Registry>,
                   mode: QuantMode|
     -> Option<ServeStats> {
        let registry = build_registry(mode)?;
        if let Some(m) = obs {
            // Stamp registry lifecycle events onto the causal trace so
            // `ltfb-analyze trace serve_metrics.json` can audit the run.
            registry.attach_obs(m);
        }
        let server = match obs {
            Some(m) => Server::start_with_obs(registry, policy, m),
            None => Server::start(registry, policy),
        };
        let (x_dim, y_dim) = {
            let m = server.registry().current();
            (m.x_dim(), m.y_dim())
        };
        let report = run_load(&server.client(), &load, x_dim, y_dim);
        let stats = server.shutdown();
        println!(
            "{label:>10}: {:.0} req/s  p50 {:.0}us  p95 {:.0}us  p99 {:.0}us  \
             mean batch {:.2}  rejected {}",
            report.throughput_rps(),
            stats.latency_p50_us,
            stats.latency_p95_us,
            stats.latency_p99_us,
            stats.mean_batch,
            report.rejected,
        );
        Some(stats)
    };

    println!(
        "serve-bench: {clients} clients x {requests} reqs, {} mode, y_dim={}",
        match load.mode {
            LoadMode::Closed => "closed-loop".to_string(),
            LoadMode::Open { rate_per_sec } => format!("open-loop @ {rate_per_sec} req/s"),
        },
        gan_cfg.y_dim(),
    );
    let batched_label = match quant_mode {
        QuantMode::F32 => "batched",
        QuantMode::Int8 => "int8",
    };
    let Some(batched) = run_one(batched_label, policy, metrics.as_ref(), quant_mode) else {
        return ExitCode::FAILURE;
    };
    // Under --quant int8 an extra f32 arm with the same batching policy
    // isolates the numeric-path speedup from the batching speedup.
    let f32_batched = if quant_mode == QuantMode::Int8 {
        let Some(stats) = run_one("f32", policy, None, QuantMode::F32) else {
            return ExitCode::FAILURE;
        };
        Some(stats)
    } else {
        None
    };
    let Some(unbatched) = run_one(
        "unbatched",
        BatchPolicy {
            workers: policy.workers,
            ..BatchPolicy::sequential()
        },
        None,
        QuantMode::F32,
    ) else {
        return ExitCode::FAILURE;
    };
    if unbatched.throughput_rps > 0.0 {
        println!(
            "micro-batching speedup: {:.2}x throughput",
            batched.throughput_rps / unbatched.throughput_rps
        );
    }
    if let Some(f32_arm) = &f32_batched {
        if f32_arm.throughput_rps > 0.0 {
            println!(
                "int8 speedup vs f32 (same batching): {:.2}x throughput",
                batched.throughput_rps / f32_arm.throughput_rps
            );
        }
    }

    if let Some(path) = flags.get_str("csv") {
        let path = std::path::Path::new(path);
        let write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            use std::io::Write;
            let mut f = std::fs::File::create(path)?;
            writeln!(f, "{}", ServeStats::csv_header())?;
            writeln!(f, "{}", batched.csv_row(batched_label))?;
            if let Some(f32_arm) = &f32_batched {
                writeln!(f, "{}", f32_arm.csv_row("f32"))?;
            }
            writeln!(f, "{}", unbatched.csv_row("unbatched"))?;
            Ok(())
        };
        match write() {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    if let Some(path) = flags.get_str("json") {
        match batched.write_json(std::path::Path::new(path)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if let Some(reg) = &metrics {
        write_metrics(reg, &metrics_path(flags, "serve_metrics.json"));
    }
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!(
        "ltfb-cli — LTFB tournament training reproduction\n\n\
         commands:\n  \
         train    [--trainers K] [--steps N] [--samples N] [--seed S] [--exchange N]\n           \
         [--lr-spread F] [--by-index] [--distributed] [--replicas R] [--kindep]\n           \
         [--fault SPEC] [--ingest] [--store mmap[:<dir>]] [--metrics [PATH]]\n  \
         classify [--trainers K] [--steps N] [--kindep]\n  \
         simulate <fig9|fig10|fig11>\n  \
         generate --dir PATH [--samples N] [--per-file M] [--img-size P]\n  \
         serve-bench [--clients C] [--requests N] [--max-batch B] [--workers W]\n              \
         [--flush-us U] [--open-rate RPS] [--inverse-frac F] [--cache N]\n              \
         [--img-size P] [--checkpoint PATH] [--quant int8] [--csv PATH]\n              \
         [--json PATH] [--metrics [PATH]]\n              \
         [--shards N] [--slo-p99-us T] [--spill-depth D] [--shed-depth D]\n              \
         [--no-adaptive] [--tail-alpha A] [--diurnal-amp F] [--hot-keys N]\n              \
         [--zipf S] [--sweep-secs T]\n  \
         help\n\n\
         --shards N runs the sharded serving fleet: closed-loop capacity probe,\n\
         then an open-loop heavy-tailed Zipf overload sweep (0.5x/1x/2x capacity)\n\
         with SLO admission control; writes results/serve_fleet.csv and\n\
         BENCH_serve.json (or $LTFB_SERVE_JSON / --json PATH).\n\
         --fault injects failures, e.g. \"kill:2@15\" (trainer 2 dies at step 15),\n\
         \"delay:1@5:2000us\" (straggler), \"drop:0@10\" (skip that exchange);\n\
         comma-separate events. Survivors re-pair and finish the run.\n\
         --metrics without PATH writes to <results dir>/ltfb_metrics.json or\n\
         serve_metrics.json\n\
         (results dir honours LTFB_RESULTS_DIR); --ingest adds 2-rank data-store\n\
         ingest (prefetch double-buffering) and fused-allreduce DP demo phases so\n\
         datastore shuffle/prefetch and gradient-overlap metrics land in the export.\n\
         --store mmap[:<dir>] adds a tiered-store demo: trains over mmap shards +\n\
         hot tier, checks bit-identity against the in-memory store, and adopts a\n\
         streaming-ingest shard mid-run (store.rN.tier_* / ingest.* metrics)."
    );
}
