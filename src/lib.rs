//! # ltfb
//!
//! A Rust reproduction of *"Parallelizing Training of Deep Generative
//! Models on Massive Scientific Datasets"* (Jacobs et al., CLUSTER 2019):
//! the **LTFB** tournament training algorithm, the LBANN-style training
//! stack it lives in, the distributed in-memory data store, and a
//! calibrated performance model of the Lassen supercomputer for the
//! paper's timing experiments.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tensor`]    | `ltfb-tensor`    | dense f32 kernels (Hydrogen substitute) |
//! | [`comm`]      | `ltfb-comm`      | thread-backed simulated MPI (Aluminum substitute) |
//! | [`hpcsim`]    | `ltfb-hpcsim`    | discrete-event Lassen/GPFS model (Figs. 9-11) |
//! | [`bundle`]    | `ltfb-bundle`    | self-describing mmap bundle shards + streaming append |
//! | [`jag`]       | `ltfb-jag`       | synthetic ICF simulator + bundle files (JAG/HDF5 substitute) |
//! | [`workflow`]  | `ltfb-workflow`  | ensemble workflow engine (Merlin substitute) |
//! | [`nn`]        | `ltfb-nn`        | layers/models/optimizers/data-parallel SGD (LBANN core) |
//! | [`datastore`] | `ltfb-datastore` | distributed in-memory data store |
//! | [`gan`]       | `ltfb-gan`       | the CycleGAN ICF surrogate (Fig. 2) |
//! | [`core`]      | `ltfb-core`      | LTFB tournaments + K-independent baseline |
//! | [`serve`]     | `ltfb-serve`     | batched surrogate inference serving |
//! | [`obs`]       | `ltfb-obs`       | cross-cutting metrics registry + event trace |
//!
//! ## Quickstart
//!
//! ```no_run
//! use ltfb::core::{run_ltfb_serial, LtfbConfig};
//!
//! let cfg = LtfbConfig::small(4); // 4 trainers
//! let out = run_ltfb_serial(&cfg);
//! let (winner, loss) = out.best();
//! println!("winner: trainer {winner}, validation loss {loss:.4}");
//! ```

#![forbid(unsafe_code)]

pub use ltfb_bundle as bundle;
pub use ltfb_comm as comm;
pub use ltfb_core as core;
pub use ltfb_datastore as datastore;
pub use ltfb_gan as gan;
pub use ltfb_hpcsim as hpcsim;
pub use ltfb_jag as jag;
pub use ltfb_nn as nn;
pub use ltfb_obs as obs;
pub use ltfb_serve as serve;
pub use ltfb_tensor as tensor;
pub use ltfb_workflow as workflow;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        run_k_independent, run_ltfb_distributed, run_ltfb_serial, LtfbConfig, PartitionScheme,
        TournamentMetric, Trainer,
    };
    pub use crate::gan::{CycleGan, CycleGanConfig};
    pub use crate::jag::{DatasetSpec, JagConfig, JagSimulator};
    pub use crate::serve::{BatchPolicy, ModelRegistry, Server};
    pub use crate::tensor::Matrix;
}
